"""EXP-A1 -- the orientation lowers message complexity (Sections 1.3-1.4).

Regenerates the motivation numbers: depth-first traversal, broadcast and ring
leader election with and without the sense of direction.  The shapes to
reproduce are (a) traversal with SoD costs exactly 2(n-1) messages versus
Theta(m) without it, and (b) oriented (unidirectional) ring election beats the
bidirectional campaign of the unoriented ring.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_a1_message_complexity


def test_orientation_reduces_messages(benchmark):
    result = benchmark.pedantic(
        lambda: exp_a1_message_complexity(sizes=(8, 16, 24, 32, 48), extra_edge_probability=0.3, seed=6),
        rounds=1,
        iterations=1,
    )
    rows, savings = result["rows"], result["savings"]
    report(
        "EXP-A1: messages with vs without the sense of direction",
        rows,
        benchmark,
        traversal_ratio_mean=round(savings["traversal_ratio_mean"], 2),
        broadcast_ratio_mean=round(savings["broadcast_ratio_mean"], 2),
        election_ratio_mean=round(savings["election_ratio_mean"], 2),
    )
    for row in rows:
        assert row["traversal_msgs_oriented"] == 2 * (row["n"] - 1)
        assert row["traversal_msgs_unoriented"] >= row["edges"]
        assert row["broadcast_msgs_oriented"] <= row["broadcast_msgs_unoriented"]
        assert row["election_msgs_oriented"] < row["election_msgs_unoriented"]
    assert savings["traversal_ratio_mean"] > 1.5
    assert savings["election_ratio_mean"] > 1.5
