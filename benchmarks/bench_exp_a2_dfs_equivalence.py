"""EXP-A2 -- STNO over a DFS spanning tree names processors like DFTNO (Chapter 5).

The conclusion observes that if the spanning tree maintained for STNO is the
DFS tree of the graph (with matching port orders), the two protocols assign
the same names.  This benchmark runs both protocols to stabilization on random
networks and compares the resulting names with each other and with the
reference DFS preorder.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_a2_dfs_equivalence


def test_stno_on_dfs_tree_matches_dftno(benchmark):
    result = benchmark.pedantic(
        lambda: exp_a2_dfs_equivalence(sizes=(6, 10, 14, 18), trials=2, seed=7),
        rounds=1,
        iterations=1,
    )
    report(
        "EXP-A2: DFTNO names vs STNO-over-DFS-tree names",
        result["rows"],
        benchmark,
        all_identical=result["all_identical"],
    )
    assert result["all_identical"]
    assert all(row["dftno_matches_preorder"] for row in result["rows"])
    assert all(row["stno_dfs_matches_preorder"] for row in result["rows"])
