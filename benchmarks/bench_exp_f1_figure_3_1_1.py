"""EXP-F1 -- the DFTNO node-labeling walkthrough of Figure 3.1.1.

Replays the first token wave on the exact 5-processor rooted network of the
figure and checks that the naming events reproduce the narrative: r=0, b=1,
d=2, c=3, a=4, with the counter following the assigned names.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_f1_figure_3_1_1


def test_figure_3_1_1_naming_walkthrough(benchmark):
    result = benchmark.pedantic(exp_f1_figure_3_1_1, rounds=1, iterations=1)
    report(
        "EXP-F1: Figure 3.1.1 -- DFTNO naming events (first wave)",
        result["events"],
        benchmark,
        final_names=result["final_names"],
        matches_figure=result["matches_figure"],
    )
    assert result["matches_figure"]
    assigned = {event["thesis_label"]: event["assigned_name"] for event in result["events"]}
    assert assigned == {"r": 0, "b": 1, "d": 2, "c": 3, "a": 4}
    # The token visits the processors in the figure's order.
    order = [event["thesis_label"] for event in sorted(result["events"], key=lambda e: e["step"])]
    assert order == ["r", "b", "d", "c", "a"]
    # The counter at each naming step equals the name just assigned.
    assert all(event["max_counter"] == event["assigned_name"] for event in result["events"])
