"""EXP-F2 -- the STNO weight/naming walkthrough of Figure 4.1.1.

Replays STNO (from an arbitrary initial state) on the exact 5-processor tree
of the figure and checks the two phases the figure draws: subtree weights
(leaves 1, internal node 3, root 5) and the top-down interval naming
(root 0, internal child 1, its leaves 2 and 3, the remaining leaf 4).
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_f2_figure_4_1_1


def test_figure_4_1_1_weights_and_names(benchmark):
    result = benchmark.pedantic(exp_f2_figure_4_1_1, rounds=1, iterations=1)
    report(
        "EXP-F2: Figure 4.1.1 -- STNO weights and names",
        result["rows"],
        benchmark,
        matches_figure=result["matches_figure"],
    )
    assert result["matches_figure"]
    for row in result["rows"]:
        assert row["measured_weight"] == row["expected_weight"]
        assert row["measured_name"] == row["expected_name"]
