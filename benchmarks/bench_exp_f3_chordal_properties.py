"""EXP-F3 -- chordal sense of direction properties (Figure 2.2.1 / Section 2.2).

Checks, on the Figure 2.2.1 example and a spread of topology families, that
the produced labelings satisfy the two defining properties of a chordal sense
of direction: local orientation (locally distinct labels) and edge symmetry
(the two endpoint labels are inverses modulo N).
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_f3_chordal_properties


def test_chordal_properties_hold_across_topologies(benchmark):
    result = benchmark.pedantic(
        lambda: exp_f3_chordal_properties(sizes=(5, 8, 13, 21, 34)), rounds=1, iterations=1
    )
    report(
        "EXP-F3: chordal sense of direction validity",
        result["rows"],
        benchmark,
        all_valid=result["all_valid"],
    )
    assert result["all_valid"]
    assert all(row["locally_oriented"] for row in result["rows"])
    assert all(row["edge_symmetric"] for row in result["rows"])
