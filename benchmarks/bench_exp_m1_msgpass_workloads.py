"""EXP-M1 -- message savings per workload through the unified API.

Runs every ``msgpass`` workload (broadcast, DFS traversal, ring leader
election) as declarative :class:`repro.api.RunSpec` tasks via the campaign
engine's workload axis, and checks the shape EXP-A1 motivates: the
orientation saves messages on every workload, and traversal with the sense
of direction costs exactly ``2(n-1)`` messages.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_m1_msgpass_workloads


def test_every_workload_saves_messages(benchmark):
    result = benchmark.pedantic(
        lambda: exp_m1_msgpass_workloads(sizes=(8, 16, 24), trials=2, seed=13),
        rounds=1,
        iterations=1,
    )
    report(
        "EXP-M1: orientation savings per msgpass workload (unified API)",
        result["rows"],
        benchmark,
        all_converged=result["all_converged"],
        all_workloads_save=result["all_workloads_save"],
    )
    assert result["all_converged"]
    assert result["all_workloads_save"]
    for sample in result["samples"]:
        if sample["workload"] == "traversal":
            assert sample["messages_oriented"] == 2 * (sample["n"] - 1)
