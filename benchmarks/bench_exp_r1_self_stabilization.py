"""EXP-R1 -- convergence and closure from arbitrary configurations (Definition 2.1.2).

Runs every protocol stack from many random arbitrary configurations and
reports the convergence rate and the distribution of stabilization rounds.
The claim being reproduced is binary -- every run must converge -- plus the
round counts give the empirical constants behind the O(n)/O(h) theorems.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_r1_self_stabilization


def test_every_protocol_converges_from_arbitrary_states(benchmark):
    result = benchmark.pedantic(
        lambda: exp_r1_self_stabilization(trials=8, size=12, seed=8),
        rounds=1,
        iterations=1,
    )
    report(
        "EXP-R1: convergence from arbitrary configurations (n = 12, 8 trials each)",
        result["rows"],
        benchmark,
        all_converged=result["all_converged"],
    )
    assert result["all_converged"]
    for row in result["rows"]:
        assert row["convergence_rate"] == 1.0
        assert row["rounds_to_stabilize_mean"] > 0
