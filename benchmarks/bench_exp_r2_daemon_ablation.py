"""EXP-R2 -- daemon ablation (Chapter 5 daemon assumptions).

DFTNO is stated for a weakly fair daemon and STNO for an unfair daemon; both
must stabilize under every standard scheduler.  This benchmark measures the
stabilization cost of both protocols under the central, distributed,
synchronous and (weakly fair) adversarial daemons.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_r2_daemon_ablation


def test_both_protocols_stabilize_under_every_daemon(benchmark):
    result = benchmark.pedantic(
        lambda: exp_r2_daemon_ablation(size=14, trials=2, seed=9),
        rounds=1,
        iterations=1,
    )
    report(
        "EXP-R2: stabilization under different daemons (n = 14)",
        result["rows"],
        benchmark,
        all_converged=result["all_converged"],
    )
    assert result["all_converged"]
    # The synchronous daemon packs many moves per step, so it needs the fewest steps.
    by_daemon = {(row["daemon"], row["protocol"]): row for row in result["rows"]}
    for protocol in ("dftno", "stno-bfs"):
        assert (
            by_daemon[("synchronous", protocol)]["steps_mean"]
            <= by_daemon[("central", protocol)]["steps_mean"]
        )
