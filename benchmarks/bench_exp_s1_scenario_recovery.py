"""EXP-S1 -- recovery from composed fault scenarios (Definition 2.1.2, operational).

Runs the ``cascade`` library scenario -- escalating corruption bursts with a
mid-run adversarial daemon switch -- over both protocol stacks and two
daemons through the campaign engine's ``scenario`` task type, and reports the
per-event recovery aggregates.  The claim being reproduced is the recovery
half of self-stabilization: every injected fault is followed by
re-stabilization, and closure holds between faults.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_s1_scenario_recovery


def test_every_scenario_event_recovers(benchmark):
    result = benchmark.pedantic(
        lambda: exp_s1_scenario_recovery(size=10, trials=2, seed=11, scenario="cascade"),
        rounds=1,
        iterations=1,
    )
    report(
        "EXP-S1: per-event recovery under the cascade scenario (n = 10, 2 trials)",
        result["rows"],
        benchmark,
        scenario=result["scenario"],
        all_recovered=result["all_recovered"],
    )
    assert result["all_recovered"]
    for row in result["rows"]:
        assert row["events_applied"] > 0
        assert row["closure_violations"] == 0
        assert row["recovery_steps_mean"] >= 0
