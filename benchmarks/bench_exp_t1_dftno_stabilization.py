"""EXP-T1 -- DFTNO stabilizes in O(n) steps after the token layer (Section 3.2.3).

Regenerates the stabilization-versus-size series on two topology families and
fits a line to the overlay stabilization steps; the thesis's claim corresponds
to a positive slope with a good linear fit, and to the overlay cost staying a
small multiple of ``n``.

This benchmark drives the campaign engine directly: each series is a
declarative :class:`repro.campaign.Grid`, executed by :func:`run_grid` and
aggregated with :func:`campaign_summary` -- the same path
``python -m repro.campaign run`` takes.
"""

from __future__ import annotations

from bench_utils import report

from repro.campaign import Grid, campaign_summary, run_grid

SIZES = (8, 16, 24, 32, 48)


def _sweep(family: str, seed: int, jobs: int = 1) -> dict[str, object]:
    grid = Grid(
        sizes=SIZES,
        protocols=("dftno",),
        families=(family,),
        trials=2,
        seed=seed,
        after_substrate=True,
    )
    result = run_grid(grid, jobs=jobs)
    return campaign_summary(result.rows, key_name="n", fit_metric="overlay_steps_mean")


def test_dftno_stabilization_scales_linearly_on_random_networks(benchmark):
    result = benchmark.pedantic(
        lambda: _sweep("random_connected", seed=1, jobs=2),
        rounds=1,
        iterations=1,
    )
    rows, fit = result["rows"], result["fit"]
    report(
        "EXP-T1: DFTNO stabilization vs n (random connected networks, campaign engine)",
        rows,
        benchmark,
        fitted_slope=round(fit["slope"], 3),
        fitted_r_squared=round(fit["r_squared"], 3),
    )
    assert all(row["converged"] == row["trials"] for row in rows)
    assert fit["slope"] > 0
    assert fit["r_squared"] > 0.6
    # O(n): the overlay steps stay within a small constant factor of n.
    for row in rows:
        assert row["overlay_steps_mean"] <= 12 * row["n"]


def test_dftno_stabilization_scales_linearly_on_rings(benchmark):
    result = benchmark.pedantic(
        lambda: _sweep("ring", seed=2),
        rounds=1,
        iterations=1,
    )
    rows, fit = result["rows"], result["fit"]
    report(
        "EXP-T1: DFTNO stabilization vs n (rings, campaign engine)",
        rows,
        benchmark,
        fitted_slope=round(fit["slope"], 3),
        fitted_r_squared=round(fit["r_squared"], 3),
    )
    assert fit["slope"] > 0
    assert rows[-1]["overlay_steps_mean"] > rows[0]["overlay_steps_mean"]
