"""EXP-T2 -- STNO stabilizes in O(h) rounds after the tree layer (Section 4.2.3).

Regenerates the stabilization-versus-height series at fixed ``n`` on
height-controlled trees: the overlay rounds must grow with the height and stay
a small multiple of it, while being essentially independent of ``n``.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_t2_stno_stabilization


def test_stno_stabilization_scales_with_tree_height(benchmark):
    result = benchmark.pedantic(
        lambda: exp_t2_stno_stabilization(n=36, heights=(2, 5, 10, 18, 28, 35), trials=2, seed=3),
        rounds=1,
        iterations=1,
    )
    rows, fit = result["rows"], result["fit"]
    report(
        "EXP-T2: STNO stabilization vs spanning-tree height (n = 36)",
        rows,
        benchmark,
        fitted_slope=round(fit["slope"], 3),
        fitted_r_squared=round(fit["r_squared"], 3),
    )
    assert all(row["converged"] == row["trials"] for row in rows)
    assert fit["slope"] > 0
    assert fit["r_squared"] > 0.6
    assert rows[-1]["overlay_rounds_mean"] > rows[0]["overlay_rounds_mean"]
    for row in rows:
        assert row["overlay_rounds_mean"] <= 6 * row["height"] + 8


def test_stno_rounds_depend_on_height_not_size(benchmark):
    def run():
        shallow_large = exp_t2_stno_stabilization(n=48, heights=(3,), trials=2, seed=4)
        deep_small = exp_t2_stno_stabilization(n=16, heights=(15,), trials=2, seed=5)
        return shallow_large["rows"][0], deep_small["rows"][0]

    shallow, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "EXP-T2 (control): height, not size, drives STNO's stabilization",
        [
            {"case": "n=48, h=3", **{k: v for k, v in shallow.items() if k != "height"}},
            {"case": "n=16, h=15", **{k: v for k, v in deep.items() if k != "height"}},
        ],
        benchmark,
    )
    # The deep-but-small tree needs more rounds than the shallow-but-large one.
    assert deep["overlay_rounds_mean"] > shallow["overlay_rounds_mean"]
