"""EXP-T3 -- space usage against the O(Delta * log N) bound (Sections 3.2.3, 4.2.3, Chapter 5).

Regenerates the space comparison the conclusion makes: both orientation layers
cost Theta(Delta * log N) bits per processor; DFTNO's token substrate needs
only O(log N) bits while STNO's tree substrate carries extra structure.
"""

from __future__ import annotations

from bench_utils import report

from repro.analysis.experiments import exp_t3_space
from repro.analysis.reporting import linear_fit
from repro.analysis.space import orientation_space_row
from repro.graphs import generators


def test_space_table_across_topologies(benchmark):
    result = benchmark.pedantic(lambda: exp_t3_space(sizes=(8, 16, 32, 64, 128)), rounds=1, iterations=1)
    rows = result["rows"]
    report("EXP-T3: bits of locally shared memory per processor", rows, benchmark)
    for row in rows:
        # The orientation layers track the Delta*logN bound within a constant.
        assert row["dftno_overlay_max_bits"] <= 2 * row["bound_delta_log_n"]
        assert row["stno_overlay_max_bits"] <= 3 * row["bound_delta_log_n"]
        # Chapter 5: DFTNO's substrate is the cheaper of the two stacks on
        # degree-bounded topologies (it needs no per-child bookkeeping).
        assert row["dftno_substrate_max_bits"] <= row["stno_overlay_max_bits"] + row["stno_substrate_max_bits"]


def test_overlay_bits_grow_logarithmically_with_n(benchmark):
    def run():
        rows = [orientation_space_row(generators.ring(n)) for n in (8, 16, 32, 64, 128, 256)]
        fit = linear_fit([row["log_n_bits"] for row in rows], [row["dftno_overlay_max_bits"] for row in rows])
        return rows, fit

    rows, fit = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "EXP-T3 (rings): overlay bits vs log2 N",
        rows,
        benchmark,
        bits_per_log_n=round(fit["slope"], 2),
        fit_r_squared=round(fit["r_squared"], 3),
    )
    # On rings Delta = 2, so the overlay cost should be ~ (Delta + 2) bits per log N.
    assert fit["r_squared"] > 0.98
    assert 2 <= fit["slope"] <= 6


def test_overlay_bits_grow_linearly_with_degree(benchmark):
    def run():
        rows = [orientation_space_row(generators.star(n)) for n in (8, 16, 32, 64)]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EXP-T3 (stars): overlay bits at the hub vs Delta", rows, benchmark)
    for previous, current in zip(rows, rows[1:]):
        assert current["dftno_overlay_max_bits"] > previous["dftno_overlay_max_bits"]
        assert current["max_degree"] == 2 * previous["max_degree"] + 1
