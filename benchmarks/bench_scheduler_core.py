"""Micro-benchmark of the scheduler core: incremental enabled-set vs full scan.

The incremental core (PR 4) keeps a persistent enabled-set and re-evaluates
guards only around the nodes a step changed; the historical core rescans all
``n`` processors' guards every step.  This benchmark times both cores on the
same BFS spanning-tree stabilization (central daemon, fixed seeds, identical
executions -- the step counts are asserted equal) at n in {50, 200, 500} and
writes the measurements to ``BENCH_scheduler.json`` so the performance
trajectory of the runtime finally has recorded data.

Run as a script (what ``scripts/smoke.sh`` and CI do)::

    PYTHONPATH=src python benchmarks/bench_scheduler_core.py            # full
    PYTHONPATH=src python benchmarks/bench_scheduler_core.py --quick    # CI/smoke
    PYTHONPATH=src python benchmarks/bench_scheduler_core.py --out path.json

or through pytest (``pytest benchmarks/bench_scheduler_core.py -s``), which
executes the full variant and asserts the acceptance threshold: at n=500 the
incremental core must be at least 3x faster than the full scan.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.graphs import generators
from repro.runtime.daemon import CentralDaemon
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree

#: Sizes of the full sweep; the quick variant (CI, smoke) trims the tail.
FULL_SIZES = (50, 200, 500)
QUICK_SIZES = (50, 120)

#: The acceptance threshold at the largest full-sweep size.
REQUIRED_SPEEDUP = 3.0
REQUIRED_AT_N = 500

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


def _time_stabilization(n: int, incremental: bool, seed: int = 7) -> dict[str, object]:
    """Time one BFS-tree stabilization run on the requested scheduler core."""
    network = generators.random_connected(n, seed=1)
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=CentralDaemon(),
        seed=seed,
        incremental=incremental,
    )
    started = time.perf_counter()
    result = scheduler.run_until_legitimate(max_steps=8 * n)
    elapsed = time.perf_counter() - started
    return {
        "n": n,
        "core": "incremental" if incremental else "fullscan",
        "steps": result.steps,
        "converged": result.converged,
        "seconds": round(elapsed, 4),
        "steps_per_second": round(result.steps / elapsed, 1) if elapsed > 0 else None,
    }


def run_bench(sizes=FULL_SIZES, emit=print) -> dict[str, object]:
    """Run the sweep and return the artifact payload (also emitted per row)."""
    rows: list[dict[str, object]] = []
    speedups: dict[int, float] = {}
    for n in sizes:
        fullscan = _time_stabilization(n, incremental=False)
        incremental = _time_stabilization(n, incremental=True)
        # Identical executions or the comparison is meaningless.
        assert incremental["steps"] == fullscan["steps"], (n, incremental, fullscan)
        assert incremental["converged"] == fullscan["converged"]
        speedup = fullscan["seconds"] / incremental["seconds"] if incremental["seconds"] else None
        speedups[n] = speedup
        rows.extend((fullscan, incremental))
        emit(
            f"n={n}: fullscan {fullscan['seconds']:.3f}s, "
            f"incremental {incremental['seconds']:.3f}s "
            f"({incremental['steps']} steps) -> speedup {speedup:.2f}x"
        )
    return {
        "benchmark": "scheduler_core",
        "workload": "BFS spanning-tree stabilization, central daemon, seed 7",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "sizes": list(sizes),
        "rows": rows,
        "speedup_by_n": {str(n): round(s, 2) for n, s in speedups.items() if s},
        "required_speedup": REQUIRED_SPEEDUP,
        "required_at_n": REQUIRED_AT_N,
    }


def write_artifact(payload: dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")


def check_threshold(payload: dict[str, object]) -> bool:
    """Whether the acceptance threshold applies to this sweep and holds.

    Quick sweeps that never reach ``REQUIRED_AT_N`` are exempt (their small
    sizes bound the possible win); a full sweep must clear it.
    """
    speedup = payload["speedup_by_n"].get(str(REQUIRED_AT_N))
    if speedup is None:
        return True
    return speedup >= REQUIRED_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"trimmed sweep {QUICK_SIZES} for CI / smoke (threshold not applicable)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_ARTIFACT,
        metavar="PATH",
        help=f"artifact path (default {DEFAULT_ARTIFACT.name} in the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(QUICK_SIZES if args.quick else FULL_SIZES)
    write_artifact(payload, args.out)
    print(f"wrote {args.out}")
    if not check_threshold(payload):
        print(
            f"FAILED: incremental speedup at n={REQUIRED_AT_N} below "
            f"{REQUIRED_SPEEDUP}x: {payload['speedup_by_n']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_incremental_core_speedup(tmp_path):
    """Pytest entry point: full sweep, artifact written, threshold asserted."""
    payload = run_bench()
    write_artifact(payload, tmp_path / "BENCH_scheduler.json")
    assert check_threshold(payload), payload["speedup_by_n"]
    # The incremental core must win at every size, not just the largest.
    for n, speedup in payload["speedup_by_n"].items():
        assert speedup > 1.0, (n, speedup)


if __name__ == "__main__":
    sys.exit(main())
