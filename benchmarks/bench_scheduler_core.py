"""Micro-benchmark of the scheduler core: incremental enabled-set vs full scan.

The incremental core (PR 4) keeps a persistent enabled-set and re-evaluates
guards only around the nodes a step changed; the historical core rescans all
``n`` processors' guards every step.  This benchmark times both cores on the
same BFS spanning-tree stabilization (central daemon, fixed seeds, identical
executions -- the step counts are asserted equal) at n in {50, 200, 500} and
writes the measurements to ``BENCH_scheduler.json`` so the performance
trajectory of the runtime finally has recorded data.

Run as a script (what ``scripts/smoke.sh`` and CI do)::

    PYTHONPATH=src python benchmarks/bench_scheduler_core.py            # full
    PYTHONPATH=src python benchmarks/bench_scheduler_core.py --quick    # CI/smoke
    PYTHONPATH=src python benchmarks/bench_scheduler_core.py --out path.json

or through pytest (``pytest benchmarks/bench_scheduler_core.py -s``), which
executes the full variant and asserts the acceptance threshold: at n=500 the
incremental core must be at least 3x faster than the full scan.

Every sweep also measures the observability layer on the same workload: the
cost of the *disabled* instrumentation path (the ``if timed:`` branch checks
the hot loops keep when running with :data:`~repro.obs.NULL_INSTRUMENTATION`,
asserted <= 3% of the uninstrumented wall time) and the phase coverage of the
*enabled* path (the per-phase timers must account for >= 90% of measured step
wall time).  The execution flight recorder is measured the same way: a
recorded run must execute identically and cost <= 5% of the unrecorded step
wall (best of three paired attempts; the noise is one-sided).  Results land
in the artifact under ``instrumentation`` / ``recorder`` and every invocation
appends one line to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.graphs import generators
from repro.obs import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    phase_seconds,
    summary_counter,
)
from repro.runtime.daemon import CentralDaemon
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_utils import append_history  # noqa: E402

#: Sizes of the full sweep; the quick variant (CI, smoke) trims the tail.
FULL_SIZES = (50, 200, 500)
QUICK_SIZES = (50, 120)

#: The acceptance threshold at the largest full-sweep size.
REQUIRED_SPEEDUP = 3.0
REQUIRED_AT_N = 500

#: The disabled instrumentation path (null registry, hoisted ``if timed:``
#: checks) may cost at most this fraction of the uninstrumented wall time.
MAX_DISABLED_OVERHEAD = 0.03
#: The flight recorder (attached, appending its causal event log) may cost at
#: most this fraction of the unrecorded step wall time.
MAX_RECORDER_OVERHEAD = 0.05
#: With instrumentation on, the per-phase timers must account for at least
#: this fraction of the measured step wall time.
MIN_PHASE_COVERAGE = 0.90
#: Branch checks one scheduler step performs when instrumentation is off,
#: rounded up (step segments + enabled-set refresh + round bookkeeping).
CHECKS_PER_STEP = 16

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


def _time_stabilization(
    n: int, incremental: bool, seed: int = 7, instrumentation=None, observers=()
) -> dict[str, object]:
    """Time one BFS-tree stabilization run on the requested scheduler core."""
    network = generators.random_connected(n, seed=1)
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=CentralDaemon(),
        seed=seed,
        incremental=incremental,
        instrumentation=instrumentation,
        observers=observers,
    )
    started = time.perf_counter()
    result = scheduler.run_until_legitimate(max_steps=8 * n)
    elapsed = time.perf_counter() - started
    return {
        "n": n,
        "core": "incremental" if incremental else "fullscan",
        "steps": result.steps,
        "converged": result.converged,
        "seconds": round(elapsed, 4),
        "steps_per_second": round(result.steps / elapsed, 1) if elapsed > 0 else None,
    }


def _disabled_path_cost(steps: int, checks_per_step: int = CHECKS_PER_STEP) -> float:
    """Wall time the null-instrumentation branch checks add across ``steps``.

    This is the *whole* per-step price of the disabled path: the hot loops
    hoist ``timed = instr.enabled`` once and every timing site is an
    ``if timed:`` branch, so replaying that exact check sequence isolates the
    overhead without differencing two noisy macro timings.
    """
    instr = NULL_INSTRUMENTATION
    started = time.perf_counter()
    for _ in range(steps * checks_per_step):
        if instr.enabled:
            raise AssertionError("null instrumentation reported enabled")
    return time.perf_counter() - started


def _measure_instrumentation_once(n: int, seed: int) -> dict[str, object]:
    off = _time_stabilization(n, incremental=True, seed=seed)
    instrumentation = Instrumentation()
    on = _time_stabilization(
        n, incremental=True, seed=seed, instrumentation=instrumentation
    )
    # Instrumentation must never perturb the execution itself.
    assert on["steps"] == off["steps"], (n, on, off)
    assert on["converged"] == off["converged"]
    summary = instrumentation.summary()
    step_wall = summary_counter(summary, "step_seconds")
    coverage = phase_seconds(summary) / step_wall if step_wall else None
    disabled_cost = _disabled_path_cost(int(off["steps"]))
    off_seconds = float(off["seconds"]) or 1e-9
    return {
        "n": n,
        "steps": off["steps"],
        "seconds_off": off["seconds"],
        "seconds_on": on["seconds"],
        "enabled_overhead": round(float(on["seconds"]) / off_seconds - 1.0, 4),
        "disabled_overhead": round(disabled_cost / off_seconds, 6),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "phase_coverage": round(coverage, 4) if coverage is not None else None,
        "min_phase_coverage": MIN_PHASE_COVERAGE,
        # Raw per-phase seconds: what scripts/check_perf.py normalizes by the
        # step count + machine calibration to gate phase-time regressions.
        "phases": {
            name: round(stats["seconds"], 6)
            for name, stats in summary.get("phases", {}).items()
        },
    }


def measure_instrumentation(n: int, seed: int = 7, attempts: int = 3) -> dict[str, object]:
    """Measure the observability layer on the incremental core at size ``n``.

    Returns the disabled-path overhead fraction (branch-check cost relative
    to the uninstrumented run) and the enabled-path phase coverage (summed
    phase timers over measured step wall time), alongside both wall clocks.

    Both measurements are one-sidedly noisy -- CPU contention can only
    deflate coverage and inflate the overhead estimate, never the reverse --
    so this takes the best of up to ``attempts`` runs, stopping early once
    the thresholds hold.
    """
    best: dict[str, object] | None = None
    for _ in range(max(1, attempts)):
        measure = _measure_instrumentation_once(n, seed)
        if best is None or (
            (measure["phase_coverage"] or 0) > (best["phase_coverage"] or 0)
        ):
            best = dict(best or measure)
            best["phase_coverage"] = measure["phase_coverage"]
            for key in ("seconds_off", "seconds_on", "enabled_overhead", "steps", "phases"):
                best[key] = measure[key]
        best["disabled_overhead"] = min(
            best["disabled_overhead"], measure["disabled_overhead"]
        )
        if check_instrumentation(best):
            break
    return best


def check_instrumentation(measure: dict[str, object]) -> bool:
    """Whether the observability-layer thresholds hold for ``measure``."""
    if measure["disabled_overhead"] > MAX_DISABLED_OVERHEAD:
        return False
    coverage = measure["phase_coverage"]
    return coverage is None or coverage >= MIN_PHASE_COVERAGE


def measure_telemetry(n: int, seed: int = 7) -> dict[str, object]:
    """Cost of the protocol-health observers on the same workload.

    Telemetry and the health watchdog ride the observer stream only, so a
    run *without* them pays nothing beyond the already-asserted disabled
    instrumentation path -- that is the ``<= 3%`` budget, and it holds by
    construction.  What this measures is the *enabled* price (sampling,
    guard-heat accumulation, fingerprinting), and what it asserts is the
    invariant that actually matters: the monitored run executes the exact
    same steps and reaches the same verdict as the bare one.
    """
    from repro.obs import ConvergenceTelemetryObserver, HealthMonitor

    off = _time_stabilization(n, incremental=True, seed=seed)
    telemetry = ConvergenceTelemetryObserver()
    health = HealthMonitor()
    on = _time_stabilization(
        n, incremental=True, seed=seed, observers=(telemetry, health)
    )
    assert on["steps"] == off["steps"], (n, on, off)
    assert on["converged"] == off["converged"]
    assert telemetry.steps == off["steps"], (telemetry.steps, off["steps"])
    assert health.healthy, health.anomalies
    off_seconds = float(off["seconds"]) or 1e-9
    return {
        "n": n,
        "steps": off["steps"],
        "seconds_off": off["seconds"],
        "seconds_on": on["seconds"],
        "enabled_overhead": round(float(on["seconds"]) / off_seconds - 1.0, 4),
        "samples": len(telemetry.samples),
        "identical_steps": True,
    }


def _measure_recorder_once(n: int, seed: int) -> dict[str, object]:
    import os
    import tempfile

    from repro.obs import FlightRecorder

    off = _time_stabilization(n, incremental=True, seed=seed)
    handle, path = tempfile.mkstemp(suffix=".flight.jsonl")
    os.close(handle)
    os.unlink(path)  # the recorder refuses nothing, but start clean
    recorder = FlightRecorder(path)
    try:
        on = _time_stabilization(
            n, incremental=True, seed=seed, observers=(recorder,)
        )
    finally:
        recorder.close()
    # Recording must never perturb the execution itself.
    assert on["steps"] == off["steps"], (n, on, off)
    assert on["converged"] == off["converged"]
    with open(path, "r", encoding="utf-8") as stream:
        entries = sum(1 for _ in stream)
    log_bytes = os.path.getsize(path)
    os.unlink(path)
    off_seconds = float(off["seconds"]) or 1e-9
    return {
        "n": n,
        "steps": off["steps"],
        "seconds_off": off["seconds"],
        "seconds_on": on["seconds"],
        "recorder_overhead": round(float(on["seconds"]) / off_seconds - 1.0, 4),
        "max_recorder_overhead": MAX_RECORDER_OVERHEAD,
        "log_entries": entries,
        "log_bytes": log_bytes,
        "identical_steps": True,
    }


def measure_recorder(n: int, seed: int = 7, attempts: int = 3) -> dict[str, object]:
    """Measure the flight recorder on the incremental core at size ``n``.

    Same harness as :func:`measure_instrumentation`: overhead noise is
    one-sided (contention can only inflate the recorded run relative to the
    bare one, never deflate it), so this keeps the best of up to ``attempts``
    paired runs, stopping early once the budget holds.  A small warm-up run
    first absorbs one-time costs (hashlib/json first use, file creation) that
    would otherwise be billed to the first attempt.
    """
    from repro.obs import FlightRecorder  # noqa: F401  (import is the warm-up's point)

    _measure_recorder_once(min(n, 30), seed)  # warm-up, discarded
    best: dict[str, object] | None = None
    for _ in range(max(1, attempts)):
        measure = _measure_recorder_once(n, seed)
        if best is None or measure["recorder_overhead"] < best["recorder_overhead"]:
            best = measure
        if check_recorder(best):
            break
    return best


def check_recorder(measure: dict[str, object]) -> bool:
    """Whether the flight-recorder overhead budget holds for ``measure``."""
    return measure["recorder_overhead"] <= measure["max_recorder_overhead"]


def run_bench(sizes=FULL_SIZES, emit=print) -> dict[str, object]:
    """Run the sweep and return the artifact payload (also emitted per row)."""
    rows: list[dict[str, object]] = []
    speedups: dict[int, float] = {}
    for n in sizes:
        fullscan = _time_stabilization(n, incremental=False)
        incremental = _time_stabilization(n, incremental=True)
        # Identical executions or the comparison is meaningless.
        assert incremental["steps"] == fullscan["steps"], (n, incremental, fullscan)
        assert incremental["converged"] == fullscan["converged"]
        speedup = fullscan["seconds"] / incremental["seconds"] if incremental["seconds"] else None
        speedups[n] = speedup
        rows.extend((fullscan, incremental))
        emit(
            f"n={n}: fullscan {fullscan['seconds']:.3f}s, "
            f"incremental {incremental['seconds']:.3f}s "
            f"({incremental['steps']} steps) -> speedup {speedup:.2f}x"
        )
    instrumentation = measure_instrumentation(max(sizes))
    emit(
        f"instrumentation at n={instrumentation['n']}: disabled-path overhead "
        f"{100 * instrumentation['disabled_overhead']:.3f}% "
        f"(max {100 * MAX_DISABLED_OVERHEAD:.0f}%), phase coverage "
        f"{100 * (instrumentation['phase_coverage'] or 0):.1f}% "
        f"(min {100 * MIN_PHASE_COVERAGE:.0f}%)"
    )
    telemetry = measure_telemetry(max(sizes))
    emit(
        f"telemetry at n={telemetry['n']}: identical execution "
        f"({telemetry['steps']} steps), {telemetry['samples']} samples, "
        f"enabled overhead {100 * telemetry['enabled_overhead']:.1f}%"
    )
    recorder = measure_recorder(max(sizes))
    emit(
        f"flight recorder at n={recorder['n']}: identical execution "
        f"({recorder['steps']} steps, {recorder['log_entries']} log entries), "
        f"overhead {100 * recorder['recorder_overhead']:.2f}% "
        f"(max {100 * MAX_RECORDER_OVERHEAD:.0f}%)"
    )
    return {
        "benchmark": "scheduler_core",
        "workload": "BFS spanning-tree stabilization, central daemon, seed 7",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "instrumentation": instrumentation,
        "telemetry": telemetry,
        "recorder": recorder,
        "sizes": list(sizes),
        "rows": rows,
        "speedup_by_n": {str(n): round(s, 2) for n, s in speedups.items() if s},
        "required_speedup": REQUIRED_SPEEDUP,
        "required_at_n": REQUIRED_AT_N,
    }


def write_artifact(payload: dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")


def check_threshold(payload: dict[str, object]) -> bool:
    """Whether the acceptance threshold applies to this sweep and holds.

    Quick sweeps that never reach ``REQUIRED_AT_N`` are exempt (their small
    sizes bound the possible win); a full sweep must clear it.
    """
    speedup = payload["speedup_by_n"].get(str(REQUIRED_AT_N))
    if speedup is None:
        return True
    return speedup >= REQUIRED_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"trimmed sweep {QUICK_SIZES} for CI / smoke (threshold not applicable)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_ARTIFACT,
        metavar="PATH",
        help=f"artifact path (default {DEFAULT_ARTIFACT.name} in the repo root)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="PATH",
        help="perf-trajectory JSONL to append to "
        "(default BENCH_history.jsonl in the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(QUICK_SIZES if args.quick else FULL_SIZES)
    write_artifact(payload, args.out)
    print(f"wrote {args.out}")
    history = append_history(payload, args.history)
    print(f"appended {history}")
    failed = False
    if not check_threshold(payload):
        print(
            f"FAILED: incremental speedup at n={REQUIRED_AT_N} below "
            f"{REQUIRED_SPEEDUP}x: {payload['speedup_by_n']}",
            file=sys.stderr,
        )
        failed = True
    if not check_instrumentation(payload["instrumentation"]):
        print(
            f"FAILED: instrumentation thresholds violated: "
            f"{payload['instrumentation']}",
            file=sys.stderr,
        )
        failed = True
    if not check_recorder(payload["recorder"]):
        print(
            f"FAILED: flight-recorder overhead over budget: {payload['recorder']}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def test_incremental_core_speedup(tmp_path):
    """Pytest entry point: full sweep, artifact written, threshold asserted."""
    payload = run_bench()
    write_artifact(payload, tmp_path / "BENCH_scheduler.json")
    assert check_threshold(payload), payload["speedup_by_n"]
    # The incremental core must win at every size, not just the largest.
    for n, speedup in payload["speedup_by_n"].items():
        assert speedup > 1.0, (n, speedup)
    assert check_instrumentation(payload["instrumentation"]), payload["instrumentation"]
    assert check_recorder(payload["recorder"]), payload["recorder"]


if __name__ == "__main__":
    sys.exit(main())
