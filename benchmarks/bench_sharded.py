"""Throughput benchmark of the sharded multi-process engine vs the
single-process incremental core.

The workload is the step loop the engines disagree about: the full DFTNO
stack under the synchronous daemon from an arbitrary configuration -- the
chaotic stabilization phase, where most processors stay enabled and every
step evaluates and executes guards across the whole network.  Both engines
run the *identical* execution (asserted: same step count, same final
configuration), so the wall-clock ratio isolates what sharding buys.

Measurements land in ``BENCH_sharded.json``: wall-clock for n in
{200, 500, 1000} at k in {1, 2, 4} (plus the single-process baseline), with
steps/second and speedups.  The acceptance threshold -- >1.5x over the
single-process incremental core at n=1000, k=4 -- applies only to the full
sweep on a machine with at least 4 CPUs: sharding spends real IPC to buy
parallel guard evaluation, so on a 1-CPU box the engine is *expected* to
lose, and the artifact records exactly that (``threshold``:
``not applicable``) instead of lying.

Run as a script (what ``scripts/smoke.sh`` and CI do)::

    PYTHONPATH=src python benchmarks/bench_sharded.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick    # CI / smoke
    PYTHONPATH=src python benchmarks/bench_sharded.py --out path.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime.daemon import SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.shard import ShardedScheduler, default_mode

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_utils import append_history  # noqa: E402

#: (n, timed steps) of the full sweep; steps shrink as per-step cost grows.
FULL_SIZES = ((200, 120), (500, 48), (1000, 24))
QUICK_SIZES = ((80, 40),)

FULL_SHARDS = (1, 2, 4)
QUICK_SHARDS = (1, 2)

#: (n, timed steps) of the fused-round A/B measurement: the same sharded
#: workload stepped once with the fused single-round-trip protocol (the
#: synchronous-daemon fast path) and once with it disabled, interleaved and
#: repeated so machine noise cancels out of the ratio.
FUSED_AB = (200, 120)
FUSED_AB_SHARDS = 2
FUSED_AB_REPEATS = 5
QUICK_FUSED_AB = (80, 40)
QUICK_FUSED_AB_REPEATS = 2

REQUIRED_SPEEDUP = 1.5
REQUIRED_AT = (1000, 4)  # (n, shards)
#: Fewer CPUs than shards cannot parallelize; the threshold needs all four.
REQUIRED_CPUS = 4

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def _build(n: int, shards: int | None):
    network = generators.random_connected(n, seed=1)
    if shards is None:
        return Scheduler(
            network, build_dftno(), daemon=SynchronousDaemon(), seed=7
        )
    return ShardedScheduler(
        network,
        build_dftno(),
        daemon=SynchronousDaemon(),
        seed=7,
        shards=shards,
        mode="fork",
    )


def _time_steps(n: int, steps: int, shards: int | None) -> dict[str, object]:
    """Time ``steps`` scheduler steps; return the row plus the final config."""
    scheduler = _build(n, shards)
    try:
        scheduler.enabled_nodes()  # setup: initial full guard scan / shard load
        started = time.perf_counter()
        executed = 0
        for _ in range(steps):
            if scheduler.step() is None:
                break
            executed += 1
        elapsed = time.perf_counter() - started
        return {
            "n": n,
            "engine": "single-process" if shards is None else f"sharded-k{shards}",
            "shards": shards,
            "steps": executed,
            "seconds": round(elapsed, 4),
            "steps_per_second": round(executed / elapsed, 2) if elapsed > 0 else None,
            "_final": scheduler.configuration.copy(),
        }
    finally:
        closer = getattr(scheduler, "close", None)
        if closer is not None:
            closer()


def _time_fused_ab(
    n: int, steps: int, shards: int, repeats: int, emit=print
) -> dict[str, object]:
    """A/B the fused single-round-trip protocol against the classic two-trip.

    Runs are interleaved (fused, classic, fused, ...) and the best wall-clock
    of each arm is compared, so slow drifts of the machine cancel out of the
    ratio.  This is the direct measurement of what round batching buys: both
    arms run the identical sharded execution (same engine, same seed), so
    the ratio isolates the removed round-trips and the locally-committed
    interior writes.
    """
    network = generators.random_connected(n, seed=1)

    def one(fused: bool) -> float:
        scheduler = ShardedScheduler(
            network,
            build_dftno(),
            daemon=SynchronousDaemon(),
            seed=7,
            shards=shards,
            mode=default_mode(),
            fused_rounds=fused,
        )
        try:
            scheduler.enabled_nodes()
            started = time.perf_counter()
            for _ in range(steps):
                if scheduler.step() is None:
                    break
            return time.perf_counter() - started
        finally:
            scheduler.close()

    fused_times, classic_times = [], []
    for _ in range(repeats):
        fused_times.append(one(True))
        classic_times.append(one(False))
    fused_best, classic_best = min(fused_times), min(classic_times)
    gain = classic_best / fused_best if fused_best > 0 else None
    row = {
        "n": n,
        "shards": shards,
        "steps": steps,
        "repeats": repeats,
        "fused_seconds": round(fused_best, 4),
        "classic_seconds": round(classic_best, 4),
        "fused_round_gain": gain and round(gain, 3),
    }
    emit(
        f"fused-round A/B n={n} k={shards}: fused {fused_best:.3f}s vs "
        f"classic {classic_best:.3f}s -> {gain:.2f}x"
    )
    return row


def run_bench(
    sizes=FULL_SIZES,
    shard_counts=FULL_SHARDS,
    emit=print,
    fused_ab=FUSED_AB,
    fused_ab_repeats=FUSED_AB_REPEATS,
) -> dict[str, object]:
    """Run the sweep and return the artifact payload (also emitted per row)."""
    rows: list[dict[str, object]] = []
    speedups: dict[str, float] = {}
    for n, steps in sizes:
        baseline = _time_steps(n, steps, shards=None)
        reference_final = baseline.pop("_final")
        rows.append(baseline)
        emit(
            f"n={n}: single-process {baseline['seconds']:.3f}s "
            f"({baseline['steps']} steps)"
        )
        for shards in shard_counts:
            row = _time_steps(n, steps, shards=shards)
            final = row.pop("_final")
            # Identical executions or the comparison is meaningless.
            assert row["steps"] == baseline["steps"], (n, shards, row, baseline)
            assert final == reference_final, f"sharded k={shards} diverged at n={n}"
            speedup = (
                baseline["seconds"] / row["seconds"] if row["seconds"] else None
            )
            if speedup is not None:
                speedups[f"n{n}-k{shards}"] = round(speedup, 2)
            row["speedup_vs_single_process"] = speedup and round(speedup, 2)
            rows.append(row)
            emit(
                f"n={n}: sharded k={shards} {row['seconds']:.3f}s "
                f"-> speedup {speedup:.2f}x"
            )
    fused_ab_row = _time_fused_ab(
        fused_ab[0], fused_ab[1], FUSED_AB_SHARDS, fused_ab_repeats, emit=emit
    )
    cpus = os.cpu_count() or 1
    required_key = f"n{REQUIRED_AT[0]}-k{REQUIRED_AT[1]}"
    measured = speedups.get(required_key)
    if measured is None:
        threshold = {"status": "not applicable", "reason": "quick sweep"}
    elif cpus < REQUIRED_CPUS:
        threshold = {
            "status": "not applicable",
            "reason": f"{cpus} CPU(s); sharding needs >= {REQUIRED_CPUS} to parallelize",
            "measured": measured,
        }
    else:
        threshold = {
            "status": "pass" if measured >= REQUIRED_SPEEDUP else "FAIL",
            "measured": measured,
        }
    return {
        "benchmark": "sharded_engine",
        "workload": "DFTNO chaotic-phase step throughput, synchronous daemon, seed 7",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpus": cpus,
        "sizes": [list(pair) for pair in sizes],
        "shard_counts": list(shard_counts),
        "rows": rows,
        "speedups": speedups,
        "fused_round_ab": fused_ab_row,
        "required_speedup": REQUIRED_SPEEDUP,
        "required_at": {"n": REQUIRED_AT[0], "shards": REQUIRED_AT[1]},
        "threshold": threshold,
    }


def write_artifact(payload: dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"trimmed sweep {QUICK_SIZES} x k{QUICK_SHARDS} for CI / smoke "
        "(threshold not applicable)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_ARTIFACT,
        metavar="PATH",
        help=f"artifact path (default {DEFAULT_ARTIFACT.name} in the repo root)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="PATH",
        help="perf-trajectory JSONL to append to "
        "(default BENCH_history.jsonl in the repo root)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        payload = run_bench(
            QUICK_SIZES,
            QUICK_SHARDS,
            fused_ab=QUICK_FUSED_AB,
            fused_ab_repeats=QUICK_FUSED_AB_REPEATS,
        )
    else:
        payload = run_bench()
    write_artifact(payload, args.out)
    print(f"wrote {args.out}")
    history = append_history(payload, args.history)
    print(f"appended {history}")
    if payload["threshold"]["status"] == "FAIL":
        print(
            f"FAILED: sharded speedup at n={REQUIRED_AT[0]}, k={REQUIRED_AT[1]} "
            f"below {REQUIRED_SPEEDUP}x: {payload['speedups']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
