"""Shared helpers for the benchmark harness (imported by every bench module)."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.analysis.reporting import format_table


def report(title: str, rows: Sequence[Mapping[str, Any]], benchmark=None, **summary: Any) -> None:
    """Print the regenerated table and attach it to the benchmark record."""
    print()
    print(format_table(list(rows), title=title))
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if benchmark is not None:
        benchmark.extra_info["rows"] = [dict(row) for row in rows]
        for key, value in summary.items():
            benchmark.extra_info[key] = value
