"""Shared helpers for the benchmark harness (imported by every bench module)."""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.reporting import format_table

#: The perf trajectory: every benchmark invocation appends one JSONL line
#: here (CI uploads it as an artifact), so snapshots accumulate into a
#: queryable history instead of each run overwriting the last.
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"

#: Iterations of the calibration loop (see :func:`machine_calibration`).
CALIBRATION_ITERATIONS = 200_000


def machine_calibration(iterations: int = CALIBRATION_ITERATIONS, repeats: int = 3) -> float:
    """Wall seconds for a fixed pure-Python loop on *this* machine, best of 3.

    Every history line carries this number so trajectory comparisons
    (``scripts/check_perf.py``) can normalize absolute phase times recorded
    on different machines: ``seconds / calibration`` is a machine-neutral
    "calibration units" measure.  The loop is dict/int bound -- the same mix
    the scheduler hot path is made of -- and takes ~10-40ms, so stamping it
    on each bench line costs nothing.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        counters: dict[int, int] = {}
        started = time.perf_counter()
        for i in range(iterations):
            key = i & 63
            counters[key] = counters.get(key, 0) + 1
        best = min(best, time.perf_counter() - started)
    return best


def report(title: str, rows: Sequence[Mapping[str, Any]], benchmark=None, **summary: Any) -> None:
    """Print the regenerated table and attach it to the benchmark record."""
    print()
    print(format_table(list(rows), title=title))
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if benchmark is not None:
        benchmark.extra_info["rows"] = [dict(row) for row in rows]
        for key, value in summary.items():
            benchmark.extra_info[key] = value


def append_history(payload: Mapping[str, Any], path: Path | str | None = None) -> Path:
    """Append one benchmark payload to the ``BENCH_history.jsonl`` trajectory.

    One compact JSON object per line, stamped with a timezone-explicit UTC
    ``recorded_at``; the artifact files (``BENCH_*.json``) keep the pretty
    latest-run view, the history keeps every run.
    """
    target = Path(path) if path is not None else DEFAULT_HISTORY
    line = dict(payload)
    line.setdefault(
        "recorded_at", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    line.setdefault("calibration_seconds", round(machine_calibration(), 6))
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, separators=(",", ":"), default=str) + "\n")
    return target
