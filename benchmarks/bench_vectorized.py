"""Throughput benchmark of the vectorized synchronous engine vs per-node dispatch.

The workload is the one the vectorized engine exists for: BFS spanning-tree
stabilization under the synchronous daemon, run to termination from the
all-wrong initial configuration.  Every round evaluates guards and executes
actions across the whole network, so the per-node engine pays a Python-level
dispatch per processor per round while ``scheduler-vectorized`` computes the
same rounds as whole-column numpy kernels over the struct-of-arrays view.

Both engines run the *identical* execution -- asserted: same step count,
same convergence verdict, same final configuration -- so the wall-clock
ratio isolates what batch kernels buy.  Measurements land in
``BENCH_vectorized.json`` for n in {1000, 5000, 20000} with rounds/second
and speedups, plus ``fast_steps`` as proof the fast path actually engaged
(a silently-disengaged fast path would otherwise report an honest but
meaningless 1.0x).  The acceptance threshold -- >= 5x over per-node dispatch
at n=5000 -- applies to the full sweep with numpy present; without numpy the
vectorized engine cannot run and the artifact records exactly that
(``threshold``: ``not applicable``) instead of lying.

Run as a script (what ``scripts/smoke.sh`` and CI do)::

    PYTHONPATH=src python benchmarks/bench_vectorized.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_vectorized.py --quick    # CI / smoke
    PYTHONPATH=src python benchmarks/bench_vectorized.py --out path.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.graphs import generators
from repro.runtime.arrayview import HAVE_NUMPY
from repro.runtime.daemon import SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.runtime.vectorized import VectorizedScheduler
from repro.substrates.spanning_tree import BFSSpanningTree

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_utils import append_history  # noqa: E402

#: Network sizes of the full sweep; the quick variant (CI, smoke) is one
#: small size -- it checks the harness and the equivalence assertions, not
#: the speedup (threshold not applicable).
FULL_SIZES = (1000, 5000, 20000)
QUICK_SIZES = (300,)

REQUIRED_SPEEDUP = 5.0
REQUIRED_AT_N = 5000

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"


def _time_stabilization(n: int, vectorized: bool) -> dict[str, object]:
    """Time one BFS stabilization stepped to termination; return row + final config.

    The loop steps until no processor is enabled rather than calling
    ``run_until_legitimate``: BFS spanning-tree is silent (terminal means
    legitimate), and the per-round O(n) legitimacy predicate is the same
    Python loop for both engines -- a shared additive cost that would dilute
    the ratio this benchmark exists to measure.
    """
    network = generators.random_connected(n, seed=1)
    cls = VectorizedScheduler if vectorized else Scheduler
    scheduler = cls(network, BFSSpanningTree(), daemon=SynchronousDaemon(), seed=7)
    started = time.perf_counter()
    steps = 0
    while scheduler.step() is not None:
        steps += 1
        if steps > 8 * n:  # pragma: no cover - termination is the invariant
            raise AssertionError(f"n={n}: no termination within {8 * n} rounds")
    elapsed = time.perf_counter() - started
    row = {
        "n": n,
        "engine": "scheduler-vectorized" if vectorized else "scheduler",
        "steps": steps,
        "converged": True,
        "seconds": round(elapsed, 4),
        "rounds_per_second": round(steps / elapsed, 2) if elapsed > 0 else None,
        "_final": scheduler.configuration.copy(),
    }
    if vectorized:
        row["fast_steps"] = scheduler.fast_steps
    return row


def run_bench(sizes=FULL_SIZES, emit=print) -> dict[str, object]:
    """Run the sweep and return the artifact payload (also emitted per row)."""
    if not HAVE_NUMPY:
        emit("numpy not installed; vectorized engine unavailable")
        return {
            "benchmark": "vectorized_engine",
            "workload": "BFS spanning-tree stabilization, synchronous daemon, seed 7",
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "sizes": list(sizes),
            "rows": [],
            "speedups": {},
            "required_speedup": REQUIRED_SPEEDUP,
            "required_at_n": REQUIRED_AT_N,
            "threshold": {
                "status": "not applicable",
                "reason": "numpy not installed (pip install .[vectorized])",
            },
        }
    rows: list[dict[str, object]] = []
    speedups: dict[str, float] = {}
    for n in sizes:
        base = _time_stabilization(n, vectorized=False)
        reference_final = base.pop("_final")
        rows.append(base)
        emit(
            f"n={n}: per-node {base['seconds']:.3f}s "
            f"({base['steps']} rounds, {base['rounds_per_second']} rounds/s)"
        )
        fast = _time_stabilization(n, vectorized=True)
        final = fast.pop("_final")
        # Identical executions or the comparison is meaningless.
        assert fast["steps"] == base["steps"], (n, fast, base)
        assert fast["converged"] == base["converged"], (n, fast, base)
        assert final == reference_final, f"vectorized diverged at n={n}"
        # The fast path must actually have run, not silently fallen back.
        assert fast["fast_steps"] == fast["steps"], (n, fast)
        speedup = base["seconds"] / fast["seconds"] if fast["seconds"] else None
        if speedup is not None:
            speedups[f"n{n}"] = round(speedup, 2)
        fast["speedup_vs_per_node"] = speedup and round(speedup, 2)
        rows.append(fast)
        emit(
            f"n={n}: vectorized {fast['seconds']:.3f}s "
            f"({fast['rounds_per_second']} rounds/s) -> speedup {speedup:.2f}x"
        )
    measured = speedups.get(f"n{REQUIRED_AT_N}")
    if measured is None:
        threshold = {"status": "not applicable", "reason": "quick sweep"}
    else:
        threshold = {
            "status": "pass" if measured >= REQUIRED_SPEEDUP else "FAIL",
            "measured": measured,
        }
    return {
        "benchmark": "vectorized_engine",
        "workload": "BFS spanning-tree stabilization, synchronous daemon, seed 7",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sizes": list(sizes),
        "rows": rows,
        "speedups": speedups,
        "required_speedup": REQUIRED_SPEEDUP,
        "required_at_n": REQUIRED_AT_N,
        "threshold": threshold,
    }


def write_artifact(payload: dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"trimmed sweep {QUICK_SIZES} for CI / smoke (threshold not applicable)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_ARTIFACT,
        metavar="PATH",
        help=f"artifact path (default {DEFAULT_ARTIFACT.name} in the repo root)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="PATH",
        help="perf-trajectory JSONL to append to "
        "(default BENCH_history.jsonl in the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(QUICK_SIZES if args.quick else FULL_SIZES)
    write_artifact(payload, args.out)
    print(f"wrote {args.out}")
    history = append_history(payload, args.history)
    print(f"appended {history}")
    if payload["threshold"]["status"] == "FAIL":
        print(
            f"FAILED: vectorized speedup at n={REQUIRED_AT_N} below "
            f"{REQUIRED_SPEEDUP}x: {payload['speedups']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
