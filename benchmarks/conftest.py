"""Pytest configuration for the benchmark harness.

Every module in this directory regenerates one experiment of DESIGN.md (a
table or a figure of the thesis), checks the *shape* of the result (who wins,
how the quantity scales) and attaches the full rows to the pytest-benchmark
report via ``extra_info`` so they can be copied into EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated tables on the terminal.
"""
