#!/usr/bin/env python3
"""Compare DFTNO and STNO head to head, as Chapter 5 of the thesis does.

Run with::

    python examples/compare_dftno_stno.py

The conclusion of the thesis compares the two protocols along three axes and
makes one structural observation; this example reproduces all four points on
live runs:

* stabilization time -- O(n) steps for DFTNO after the token layer versus
  O(h) rounds for STNO after the tree layer;
* space -- the same O(Delta log N) orientation layer, but DFTNO's substrate
  needs only O(log N) bits while STNO's tree substrate stores its structure;
* daemon assumptions -- both are exercised under central, distributed,
  synchronous and adversarial daemons;
* the DFS observation -- STNO run over a *DFS* spanning tree produces exactly
  the names DFTNO produces.
"""

from __future__ import annotations

from repro import generators, make_daemon, orient_with_dftno, orient_with_stno, space_summary
from repro.analysis.reporting import format_table
from repro.campaign import Grid, aggregate_rows, run_grid


def main() -> None:
    network = generators.random_connected(18, extra_edge_probability=0.2, seed=21)
    print(f"Network: {network.name} (n={network.n}, m={network.num_edges()}, "
          f"Delta={network.max_degree})\n")

    # ------------------------------------------------------------------
    # Stabilization time (measured relative to the substrate, like the
    # theorems), regenerated through the campaign engine: one declarative
    # grid over the three protocols, executed on two worker processes.
    # ------------------------------------------------------------------
    grid = Grid(sizes=(18,), protocols=("dftno", "stno-bfs", "stno-dfs"), trials=2, seed=21)
    result = run_grid(grid, jobs=2)
    rows = aggregate_rows(
        result.rows,
        by="protocol",
        metrics=(
            ("substrate_steps", "substrate steps"),
            ("overlay_steps", "overlay steps"),
            ("overlay_rounds", "overlay rounds"),
            ("full_steps", "total steps"),
        ),
    )
    print(format_table(rows, title="Stabilization from an arbitrary configuration "
                                   f"({result.total} campaign tasks, 2 workers)"))
    print()

    # ------------------------------------------------------------------
    # Space usage per processor
    # ------------------------------------------------------------------
    dftno_result = orient_with_dftno(network, seed=4)
    stno_result = orient_with_stno(network, tree="bfs", seed=5)
    space_rows = []
    for result in (dftno_result, stno_result):
        summary = space_summary(result.protocol, network)
        per_layer = summary["per_layer"]
        space_rows.append(
            {
                "protocol": result.protocol.name,
                "max bits/processor": summary["max_bits_per_node"],
                "layer breakdown": ", ".join(
                    f"{name}={info['max_bits_per_node']}" for name, info in per_layer.items()
                ),
            }
        )
    print(format_table(space_rows, title="Space (bits of locally shared memory)"))
    print()

    # ------------------------------------------------------------------
    # Daemon ablation
    # ------------------------------------------------------------------
    daemon_rows = []
    for kind in ("central", "distributed", "synchronous", "adversarial"):
        dftno_run = orient_with_dftno(network, daemon=make_daemon(kind), seed=6)
        stno_run = orient_with_stno(network, daemon=make_daemon(kind), seed=7)
        daemon_rows.append(
            {
                "daemon": kind,
                "dftno steps": dftno_run.stabilization_steps,
                "stno steps": stno_run.stabilization_steps,
            }
        )
    print(format_table(daemon_rows, title="Stabilization steps under different daemons"))
    print()

    # ------------------------------------------------------------------
    # The Chapter 5 observation: STNO on a DFS tree names like DFTNO
    # ------------------------------------------------------------------
    stno_dfs = orient_with_stno(network, tree="dfs", seed=8)
    same = stno_dfs.orientation.names == dftno_result.orientation.names
    print("STNO over the DFS spanning tree produces "
          f"{'exactly the same' if same else 'different'} names as DFTNO "
          f"(expected: the same).")


if __name__ == "__main__":
    main()
