#!/usr/bin/env python3
"""Fault recovery demo: watch a stabilized orientation survive corruption bursts.

Run with::

    python examples/fault_recovery_demo.py

The script orients a network with DFTNO, then repeatedly corrupts the shared
variables of a random subset of processors while the system keeps running, and
reports how many steps/rounds each recovery took.  This is the operational
meaning of self-stabilization (Definition 2.1.2): no matter what a transient
fault leaves behind, the protocol converges back to a legitimate configuration
without any external intervention.
"""

from __future__ import annotations

import random

from repro import DistributedDaemon, Scheduler, generators
from repro.core.dftno import build_dftno
from repro.core.specification import OrientationSpecification
from repro.runtime.faults import corrupt_configuration


def main() -> None:
    network = generators.random_connected(12, extra_edge_probability=0.2, seed=7)
    protocol = build_dftno()
    specification = OrientationSpecification()
    rng = random.Random(123)

    scheduler = Scheduler(network, protocol, daemon=DistributedDaemon(), seed=99)
    print(f"Network: {network.name}; protocol: {protocol.name}")

    # Initial convergence from a fully arbitrary configuration.
    result = scheduler.run_until_legitimate(max_steps=50_000)
    print(f"initial convergence: {result.first_legitimate_step} steps, "
          f"{result.first_legitimate_round} rounds")

    for burst in range(1, 6):
        node_fraction = rng.choice([0.25, 0.5, 1.0])
        corrupted = corrupt_configuration(
            scheduler.configuration,
            protocol,
            network,
            node_fraction=node_fraction,
            variable_fraction=1.0,
            rng=rng,
        )
        scheduler.set_configuration(corrupted)
        still_legitimate = specification.holds(network, scheduler.configuration)

        before_steps = scheduler.steps_executed
        before_rounds = scheduler.rounds_completed
        recovery = scheduler.run_until_legitimate(max_steps=before_steps + 50_000)
        print(
            f"burst {burst}: corrupted {int(node_fraction * 100):3d}% of processors "
            f"(orientation {'still intact' if still_legitimate else 'broken'}); "
            f"recovered in {recovery.first_legitimate_step - before_steps} steps, "
            f"{recovery.first_legitimate_round - before_rounds} rounds"
        )

    orientation = specification.extract(network, scheduler.configuration)
    orientation.require_valid(network)
    print("\nFinal orientation is valid again:")
    print(orientation.format(network))


if __name__ == "__main__":
    main()
