#!/usr/bin/env python3
"""Fault-recovery scenarios: the declarative successor of fault_recovery_demo.

Run with::

    python examples/fault_recovery_scenarios.py

Three stops on the tour:

1. run a *library* scenario (``cascade``) against DFTNO and read the
   per-event recovery report -- steps to re-stabilize, how many processors
   each fault disturbed, closure between faults;
2. compose a *custom* scenario from the event vocabulary (corruption bursts,
   crash/rejoin, link add/remove, daemon switches) and run it against STNO;
3. sweep a scenario over protocols x daemons through the campaign engine's
   ``scenario`` task type -- the same grids, stores and resume machinery the
   stabilization experiments use.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.campaign import Grid, run_grid
from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.graphs import generators
from repro.runtime.daemon import make_daemon
from repro.scenarios import (
    CorruptionBurst,
    CrashRejoin,
    DaemonSwitch,
    LinkChange,
    Scenario,
    ScenarioRunner,
    TimedEvent,
    build_scenario,
    scenario_names,
)


def run_library_scenario() -> None:
    print(f"Library scenarios: {', '.join(scenario_names())}\n")
    network = generators.random_connected(10, extra_edge_probability=0.25, seed=17)
    report = ScenarioRunner(
        network,
        build_dftno(),
        build_scenario("cascade"),
        daemon=make_daemon("distributed"),
        seed=42,
    ).run()
    print(f"cascade on {report.network} with {report.protocol}:")
    print(f"  initial stabilization: {report.initial_steps} steps")
    print(format_table(report.event_rows(), title="per-event recovery"))
    print(f"  all events recovered: {report.converged}\n")


def run_custom_scenario() -> None:
    # A scenario is just named, timed events; targets (which leaf, which
    # link) are resolved at run time from the run's seed, so the same object
    # works on every network.
    rough_day = Scenario(
        name="rough_day",
        events=(
            TimedEvent(CorruptionBurst(node_fraction=0.3, variable_fraction=0.5), delay_steps=20),
            TimedEvent(CrashRejoin(target="leaf", downtime_steps=12), delay_steps=10),
            TimedEvent(DaemonSwitch(daemon="adversarial")),
            TimedEvent(LinkChange(mode="add"), delay_steps=10),
            TimedEvent(CrashRejoin(target="root", downtime_steps=12), delay_steps=10),
        ),
        description="burst, leaf crash, adversarial daemon, new link, root crash",
    )
    network = generators.random_connected(10, extra_edge_probability=0.25, seed=23)
    report = ScenarioRunner(
        network, build_stno(tree="bfs"), rough_day, daemon=make_daemon("central"), seed=7
    ).run()
    print(f"{rough_day.name} on {network.name} with {report.protocol}:")
    print(format_table(report.event_rows(), title="per-event recovery"))
    print(f"  all events recovered: {report.converged}\n")


def sweep_scenarios() -> None:
    grid = Grid(
        sizes=(8,),
        protocols=("dftno", "stno-bfs"),
        daemons=("central", "distributed"),
        trials=1,
        seed=5,
        task_type="scenario",
        scenarios=("single_burst", "churn"),
        pair_networks=True,
    )
    result = run_grid(grid)
    rows = [
        {
            "protocol": row["protocol"],
            "daemon": row["daemon"],
            "scenario": row["scenario"],
            "events": row["events_applied"],
            "recovered": row["events_recovered"],
            "recovery_steps": row["recovery_steps"],
        }
        for row in result.rows
    ]
    print(format_table(rows, title="campaign sweep (task_type=scenario)"))
    print(f"  {result.converged}/{result.total} cells fully recovered")


def main() -> None:
    run_library_scenario()
    run_custom_scenario()
    sweep_scenarios()


if __name__ == "__main__":
    main()
