#!/usr/bin/env python3
"""What the orientation buys: message complexity with and without it.

Run with::

    python examples/message_complexity_study.py

Sections 1.3-1.4 of the thesis motivate network orientation by its effect on
the message complexity of classic distributed computations (citing Santoro's
and Tel's results).  This example measures that effect directly on the
synchronous message-passing simulator, on orientations produced by the
self-stabilizing protocols themselves:

* depth-first traversal of an arbitrary network: with the sense of direction
  the token only traverses tree links (~2(n-1) messages) instead of probing
  every link (~Theta(m));
* broadcast: the orientation lets a processor skip links whose far end is
  already known to be informed;
* leader election on a ring: the orientation turns the ring into a directed
  cycle, enabling unidirectional Chang-Roberts instead of bidirectional
  campaigning.
"""

from __future__ import annotations

from repro import generators, orient_with_dftno
from repro.analysis.reporting import format_table
from repro.api import NetworkSpec, RunSpec, run
from repro.sod.traversal import (
    broadcast_with_sod,
    broadcast_without_sod,
    dfs_traversal_with_sod,
    dfs_traversal_without_sod,
)


def main() -> None:
    rows = []
    for n in (10, 16, 24, 32):
        network = generators.random_connected(n, extra_edge_probability=0.35, seed=n)
        # Use an orientation computed by the self-stabilizing protocol itself.
        orientation = orient_with_dftno(network, seed=n).orientation

        plain_traversal = dfs_traversal_without_sod(network)
        sod_traversal = dfs_traversal_with_sod(network, orientation)
        plain_broadcast = broadcast_without_sod(network)
        sod_broadcast = broadcast_with_sod(network, orientation)

        rows.append(
            {
                "n": n,
                "links": network.num_edges(),
                "traversal w/o SoD": plain_traversal.messages,
                "traversal w/ SoD": sod_traversal.messages,
                "broadcast w/o SoD": plain_broadcast.messages,
                "broadcast w/ SoD": sod_broadcast.messages,
            }
        )
    print(format_table(rows, title="Traversal and broadcast messages (arbitrary networks)"))
    print()

    # The election comparison through the unified API: one declarative spec
    # per ring size, executed by the engine-agnostic repro.api.run().
    election_rows = []
    for n in (8, 16, 32, 64):
        result = run(
            RunSpec(
                engine="msgpass",
                workload="election",
                network=NetworkSpec(family="ring", size=n),
            )
        )
        election_rows.append(
            {
                "ring size": n,
                "election w/o orientation": result.row["messages_unoriented"],
                "election w/ orientation": result.row["messages_oriented"],
                "ratio": result.row["message_savings"],
            }
        )
    print(format_table(election_rows, title="Ring leader election messages"))


if __name__ == "__main__":
    main()
