#!/usr/bin/env python3
"""Quickstart: orient a small arbitrary rooted network with both protocols.

Run with::

    python examples/quickstart.py

The script builds a random connected rooted network, starts both DFTNO and
STNO from *arbitrary* (corrupted) configurations, waits for them to
self-stabilize, and prints the resulting chordal orientation together with the
stabilization statistics the thesis's theorems are about.
"""

from __future__ import annotations

from repro import generators, orient_with_dftno, orient_with_stno, space_summary


def main() -> None:
    network = generators.random_connected(10, extra_edge_probability=0.25, seed=42)
    print(f"Network: {network.name} with {network.n} processors, {network.num_edges()} links, "
          f"root = processor {network.root}\n")

    # ------------------------------------------------------------------
    # DFTNO: orientation by depth-first token circulation (Chapter 3)
    # ------------------------------------------------------------------
    dftno = orient_with_dftno(network, seed=1, confirm_steps=50)
    print("DFTNO (depth-first token circulation)")
    print(f"  stabilized after {dftno.stabilization_steps} steps "
          f"({dftno.stabilization_rounds} rounds) from an arbitrary initial state")
    print(dftno.orientation.format(network))
    print()

    # ------------------------------------------------------------------
    # STNO: orientation over a spanning tree (Chapter 4)
    # ------------------------------------------------------------------
    stno = orient_with_stno(network, tree="bfs", seed=2, confirm_steps=50)
    print("STNO (spanning-tree based)")
    print(f"  stabilized after {stno.stabilization_steps} steps "
          f"({stno.stabilization_rounds} rounds) from an arbitrary initial state")
    print(stno.orientation.format(network))
    print()

    # ------------------------------------------------------------------
    # Both orientations are valid chordal senses of direction; they may
    # differ in the names they choose (DFS preorder vs BFS-tree preorder).
    # ------------------------------------------------------------------
    assert dftno.orientation.is_valid(network)
    assert stno.orientation.is_valid(network)
    print("Both orientations satisfy SP1 (unique names) and SP2 (chordal edge labels).")

    # Space usage, the other axis the thesis compares the protocols on.
    for result in (dftno, stno):
        summary = space_summary(result.protocol, network)
        print(f"  {result.protocol.name}: max {summary['max_bits_per_node']} bits/processor "
              f"(orientation + substrate)")


if __name__ == "__main__":
    main()
