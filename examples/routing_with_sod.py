#!/usr/bin/env python3
"""Routing with a chordal sense of direction.

Run with::

    python examples/routing_with_sod.py

Section 1.3 of the thesis motivates network orientation with routing: once
every processor has a globally consistent name and chordal edge labels, it can
forward packets addressed to a *name* using purely local information (the name
behind each link follows from the link label).  This example:

1. orients a random network with STNO,
2. routes packets between random pairs with the chordal router,
3. reports the hop stretch against true shortest paths, and
4. shows the same router on a ring, where the chordal naming follows the ring
   and greedy forwarding is exact in the forward direction.
"""

from __future__ import annotations

import random

from repro import generators, orient_with_stno
from repro.graphs.properties import bfs_distances
from repro.sod.routing import ChordalRouter


def main() -> None:
    network = generators.random_connected(16, extra_edge_probability=0.25, seed=3)
    result = orient_with_stno(network, tree="bfs", seed=5)
    orientation = result.orientation
    router = ChordalRouter(network, orientation)

    print(f"Oriented {network.name} with STNO in {result.stabilization_steps} steps.\n")
    print("Sample routes (addressed by destination *name*, not identifier):")
    rng = random.Random(11)
    pairs = [(rng.randrange(network.n), rng.randrange(network.n)) for _ in range(6)]
    for source, destination in pairs:
        if source == destination:
            continue
        route = router.route(source, destination)
        shortest = bfs_distances(network, source)[destination]
        print(
            f"  {source} -> {destination} (name {orientation.name_of(destination)}): "
            f"path {' -> '.join(map(str, route.path))}  "
            f"[{route.hops} hops, shortest {shortest}, "
            f"{route.greedy_hops} greedy / {route.backtrack_hops} backtracks]"
        )

    print(f"\nAverage stretch over all pairs: {router.average_stretch():.3f}")

    ring = generators.ring(12)
    ring_result = orient_with_stno(ring, tree="dfs", seed=6)
    ring_router = ChordalRouter(ring, ring_result.orientation)
    print(f"Ring of 12: average stretch {ring_router.average_stretch():.3f} "
          "(forward-direction greedy routing, no routing tables)")


if __name__ == "__main__":
    main()
