#!/usr/bin/env python3
"""The unified experiment API: one RunSpec, one run() for every engine.

Run with::

    python examples/unified_api.py

Four stops on the tour:

1. describe a stabilization run as a declarative :class:`repro.api.RunSpec`
   and execute it through :func:`repro.api.run` (the daemon-step scheduler
   engine);
2. the same entry point running a fault-injection scenario (the scenario
   engine) and a message-passing workload (the msgpass engine) -- only the
   spec changes, never the call;
3. pluggable observers: watch the execution through
   ``on_step``/``on_round``/``on_event``/``on_converged`` hooks instead of
   hard-wired instrumentation;
4. specs are plain data: serialize to a dict, rebuild, and the canonical
   hash -- the key campaign stores dedup on -- is unchanged.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.api import (
    CallbackObserver,
    NetworkSpec,
    RecoveryObserver,
    RunSpec,
    run,
)


def run_all_three_engines() -> None:
    specs = [
        RunSpec(
            engine="scheduler",
            protocol="dftno",
            network=NetworkSpec(family="random_connected", size=12, seed=3),
            daemon="distributed",
            seed=7,
        ),
        RunSpec(
            engine="scenario",
            protocol="stno-bfs",
            network=NetworkSpec(family="random_connected", size=10, seed=5),
            scenario="periodic_burst",
            seed=11,
        ),
        RunSpec(
            engine="msgpass",
            workload="election",
            network=NetworkSpec(family="ring", size=16, seed=0),
        ),
    ]
    rows = []
    for spec in specs:
        result = run(spec)
        rows.append(
            {
                "engine": spec.engine,
                "spec_hash": spec.canonical_hash,
                "converged": result.converged,
                "headline": _headline(result.row),
            }
        )
    print(format_table(rows, title="one entry point, three engines"))
    print()


def _headline(row: dict[str, object]) -> str:
    if "full_steps" in row:
        return f"stabilized in {row['full_steps']} steps"
    if "events_applied" in row:
        return f"recovered {row['events_recovered']}/{row['events_applied']} events"
    return (
        f"{row['messages_unoriented']} msgs unoriented -> "
        f"{row['messages_oriented']} oriented"
    )


def watch_with_observers() -> None:
    steps = []
    rounds = []
    step_counter = CallbackObserver(
        on_step=lambda source, record: steps.append(record.step),
        on_round=lambda source, index: rounds.append(index),
    )
    recovery = RecoveryObserver()
    spec = RunSpec(
        engine="scenario",
        protocol="dftno",
        network=NetworkSpec(family="random_connected", size=10, seed=2),
        scenario="cascade",
        seed=4,
    )
    result = run(spec, observers=[step_counter, recovery])
    print(
        f"observed {len(steps)} steps / {len(rounds)} rounds of the cascade "
        f"scenario (converged={result.converged})"
    )
    print(format_table(recovery.aggregate(), title="per-event recovery, via observer"))
    print()


def specs_are_plain_data() -> None:
    spec = RunSpec(
        engine="scheduler",
        protocol="stno-bfs",
        network=NetworkSpec(family="binary_tree", size=15, seed=1),
        daemon="central",
        seed=9,
    )
    payload = spec.to_dict()  # JSON-ready; ship it to a worker, store it, diff it
    rebuilt = RunSpec.from_dict(payload)
    assert rebuilt == spec and rebuilt.canonical_hash == spec.canonical_hash
    print(f"spec round-trips through plain data; canonical hash {spec.canonical_hash}")


def main() -> None:
    run_all_three_engines()
    watch_with_observers()
    specs_are_plain_data()


if __name__ == "__main__":
    main()
