#!/usr/bin/env python3
"""Perf regression gate: compare a quick-bench run against the trajectory.

``BENCH_history.jsonl`` accumulates one line per benchmark invocation
(appended by the benches themselves, locally via ``scripts/smoke.sh`` and in
CI); this script closes the loop by judging the *current* run against that
history with explicit thresholds::

    PYTHONPATH=src python scripts/check_perf.py                       # defaults
    PYTHONPATH=src python scripts/check_perf.py \
        --current BENCH_scheduler.json --history BENCH_history.jsonl \
        --max-ratio 2.0 --require-history                             # CI gate

Three gates, machine-robust by construction:

1. **Absolute invariants** from the current payload alone -- the disabled
   instrumentation path within its budget, phase coverage above its floor
   (both thresholds are recorded in the payload itself, so gate and bench
   cannot drift apart).
2. **Speedup trajectory** -- the incremental-vs-fullscan speedup at each
   size is a ratio of two timings on the *same* machine, hence directly
   comparable across machines.  The current speedup must stay within
   ``--max-ratio`` of the history median per size.
3. **Phase-time trajectory** -- absolute phase seconds are not comparable
   across machines, so both sides are normalized to *calibration units*:
   per-step phase seconds divided by ``calibration_seconds``, the fixed
   pure-Python loop every history line carries (see
   ``benchmarks.bench_utils.machine_calibration``).  The current run's
   normalized per-step cost of each phase must stay within ``--max-ratio``
   of the history median; phases under ``--min-share`` of total phase time
   are skipped as noise.

Medians (not means) make the gate robust to one slow outlier line -- and to
the current run's own just-appended history entry.  An empty or
non-comparable history is a loud warning but a clean exit unless
``--require-history`` is given (CI passes it: the repo commits a baseline,
so "no history" there means the gate is silently disabled -- exactly the
failure mode this flag exists to catch).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

DEFAULT_CURRENT = REPO_ROOT / "BENCH_scheduler.json"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: A phase-time regression is a normalized per-step cost more than this many
#: times the history median.
DEFAULT_MAX_RATIO = 2.0

#: Phases below this share of total phase time are noise, not signal.
DEFAULT_MIN_SHARE = 0.05


def _as_float(value: object) -> float | None:
    """``value`` as a finite float, or ``None`` when it is nothing of the sort.

    The trajectory file is append-only and shared by every benchmark, present
    and future -- a line from an unknown bench (or an older schema) may carry
    strings, nulls, nested dicts or booleans where this gate expects numbers.
    Unparseable entries must degrade to "not comparable", never to a crash.
    """
    if isinstance(value, bool):  # bool subclasses int; True is not a timing
        return None
    if isinstance(value, (int, float)):
        result = float(value)
    elif isinstance(value, str):
        try:
            result = float(value)
        except ValueError:
            return None
    else:
        return None
    return result if result == result and result not in (float("inf"), float("-inf")) else None


#: Key under which :func:`load_history` stamps each line's ``file:line``
#: provenance, so every "skipped as non-comparable" warning can name the
#: exact trajectory line that caused it.
SOURCE_KEY = "_source"


def load_history(path: Path, benchmark: str, emit=None) -> list[dict]:
    """The trajectory lines for ``benchmark``, oldest first; bad lines skipped.

    Every returned line carries its ``file:line`` origin under
    :data:`SOURCE_KEY`.  Lines that are not JSON at all are skipped with a
    warning through ``emit`` (when given) naming the offending line -- an
    append-only shared file accumulates damage silently otherwise.
    """
    if not path.exists():
        return []
    lines: list[dict] = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            line = json.loads(raw)
        except json.JSONDecodeError as exc:
            if emit is not None:
                emit(f"warning: {path.name}:{lineno}: not JSON ({exc}) -- line skipped")
            continue
        if isinstance(line, dict) and line.get("benchmark") == benchmark:
            line[SOURCE_KEY] = f"{path.name}:{lineno}"
            lines.append(line)
    return lines


def normalized_phases(payload: dict) -> dict[str, float] | None:
    """Per-phase cost in calibration units per step, or ``None`` if absent.

    Needs the ``instrumentation`` block with raw ``phases`` seconds and a
    step count, plus the machine's ``calibration_seconds`` -- older history
    lines predating either are simply not comparable.
    """
    instrumentation = payload.get("instrumentation")
    calibration = _as_float(payload.get("calibration_seconds"))
    if not isinstance(instrumentation, dict) or not calibration or calibration <= 0:
        return None
    phases = instrumentation.get("phases")
    steps = _as_float(instrumentation.get("steps"))
    if not isinstance(phases, dict) or not phases or not steps or steps <= 0:
        return None
    normalized = {}
    for name, seconds in phases.items():
        value = _as_float(seconds)
        if value is not None:
            normalized[str(name)] = value / (steps * calibration)
    return normalized or None


def noncomparable_reason(payload: dict) -> str:
    """Why :func:`normalized_phases` returned ``None`` for ``payload``.

    Mirrors that function's checks in order, so the reason names the first
    missing ingredient -- the thing to fix (or the schema vintage to blame)
    on that particular trajectory line.
    """
    instrumentation = payload.get("instrumentation")
    if not isinstance(instrumentation, dict):
        return "no instrumentation block"
    if not _as_float(payload.get("calibration_seconds")):
        return "no usable calibration_seconds"
    phases = instrumentation.get("phases")
    if not isinstance(phases, dict) or not phases:
        return "no phases dict"
    steps = _as_float(instrumentation.get("steps"))
    if not steps or steps <= 0:
        return "no usable step count"
    return "no numeric phase timings"


def check_absolute(current: dict, failures: list[str]) -> None:
    """Gate 1: the payload's own recorded thresholds must hold."""
    instrumentation = current.get("instrumentation")
    if not isinstance(instrumentation, dict):
        return
    disabled = _as_float(instrumentation.get("disabled_overhead"))
    budget = _as_float(instrumentation.get("max_disabled_overhead"))
    if disabled is not None and budget is not None and disabled > budget:
        failures.append(
            f"disabled instrumentation path costs {100 * disabled:.2f}% "
            f"of step wall (budget {100 * budget:.0f}%)"
        )
    coverage = _as_float(instrumentation.get("phase_coverage"))
    floor = _as_float(instrumentation.get("min_phase_coverage"))
    if coverage is not None and floor is not None and coverage < floor:
        failures.append(
            f"phase coverage {100 * coverage:.1f}% below floor {100 * floor:.0f}%"
        )
    recorder = current.get("recorder")
    if isinstance(recorder, dict):
        overhead = _as_float(recorder.get("recorder_overhead"))
        budget = _as_float(recorder.get("max_recorder_overhead"))
        if overhead is not None and budget is not None and overhead > budget:
            failures.append(
                f"flight recorder costs {100 * overhead:.2f}% of step wall "
                f"(budget {100 * budget:.0f}%)"
            )


def check_speedups(
    current: dict, history: list[dict], max_ratio: float, failures: list[str]
) -> int:
    """Gate 2: incremental-core speedups vs the history median per size."""
    current_speedups = current.get("speedup_by_n")
    if not isinstance(current_speedups, dict):
        return 0
    compared = 0
    # str() keys: history lines from other benches may use non-string sizes.
    for size, raw in sorted(current_speedups.items(), key=lambda item: str(item[0])):
        speedup = _as_float(raw)
        past = []
        for line in history:
            speedups = line.get("speedup_by_n")
            if isinstance(speedups, dict):
                value = _as_float(speedups.get(size))
                if value:
                    past.append(value)
        if not past or not speedup:
            continue
        compared += 1
        median = statistics.median(past)
        floor = median / max_ratio
        if speedup < floor:
            failures.append(
                f"speedup at n={size} regressed: {speedup:.2f}x vs history "
                f"median {median:.2f}x over {len(past)} runs "
                f"(floor {floor:.2f}x at max-ratio {max_ratio:g})"
            )
    return compared


def check_phases(
    current: dict,
    history: list[dict],
    max_ratio: float,
    min_share: float,
    failures: list[str],
    emit=print,
) -> int:
    """Gate 3: normalized per-step phase costs vs the history median."""
    now = normalized_phases(current)
    if now is None:
        return 0
    past_by_phase: dict[str, list[float]] = {}
    for line in history:
        normalized = normalized_phases(line)
        if normalized is None:
            # Name the exact line: "the history silently shrank" is the
            # failure mode that turns this gate off without anyone noticing.
            source = line.get(SOURCE_KEY, "history line")
            emit(
                f"  warning: {source}: not phase-comparable "
                f"({noncomparable_reason(line)}) -- skipped"
            )
            continue
        for name, value in normalized.items():
            past_by_phase.setdefault(name, []).append(value)
    total = sum(now.values()) or 1.0
    compared = 0
    for name, value in sorted(now.items()):
        share = now[name] / total
        past = past_by_phase.get(name)
        if not past:
            continue
        if share < min_share:
            emit(
                f"  phase {name}: {100 * share:.1f}% of phase time, "
                f"below --min-share {100 * min_share:.0f}% -- skipped"
            )
            continue
        compared += 1
        median = statistics.median(past)
        ratio = value / median if median else 1.0
        verdict = "ok" if ratio <= max_ratio else "REGRESSED"
        emit(
            f"  phase {name}: {value:.4f} calib-units/step vs history median "
            f"{median:.4f} over {len(past)} runs -> x{ratio:.2f} {verdict}"
        )
        if ratio > max_ratio:
            failures.append(
                f"phase {name} per-step time regressed x{ratio:.2f} "
                f"(max-ratio {max_ratio:g}) vs {len(past)}-run history median"
            )
    return compared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=DEFAULT_CURRENT,
        metavar="PATH",
        help=f"current bench artifact (default {DEFAULT_CURRENT.name})",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        metavar="PATH",
        help=f"trajectory JSONL (default {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--benchmark",
        default="scheduler_core",
        metavar="NAME",
        help="history lines to compare against (default scheduler_core)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=DEFAULT_MAX_RATIO,
        metavar="R",
        help=f"fail when a metric worsens more than Rx vs the history median "
        f"(default {DEFAULT_MAX_RATIO})",
    )
    parser.add_argument(
        "--min-share",
        type=float,
        default=DEFAULT_MIN_SHARE,
        metavar="F",
        help="skip phases under this fraction of total phase time "
        f"(default {DEFAULT_MIN_SHARE})",
    )
    parser.add_argument(
        "--require-history",
        action="store_true",
        help="fail (exit 1) when the history holds nothing comparable -- the "
        "CI mode, where an empty trajectory means the gate is silently off",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"error: current artifact {args.current} does not exist", file=sys.stderr)
        return 2
    try:
        current = json.loads(args.current.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        print(f"error: {args.current} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if "calibration_seconds" not in current:
        # Artifact files predate the calibration stamp (history lines carry
        # it); measure this machine now so gate 3 can normalize.
        from bench_utils import machine_calibration

        current["calibration_seconds"] = machine_calibration()

    history = load_history(args.history, args.benchmark, emit=print)
    print(
        f"check_perf: {args.current.name} vs {len(history)} "
        f"{args.benchmark!r} history line(s) in {args.history.name}"
    )

    failures: list[str] = []
    check_absolute(current, failures)
    compared = check_speedups(current, history, args.max_ratio, failures)
    compared += check_phases(
        current, history, args.max_ratio, args.min_share, failures
    )

    if failures:
        for failure in failures:
            print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    if compared == 0:
        message = (
            "warning: nothing comparable in the trajectory (empty history, or "
            "lines without speedups/phases/calibration) -- the regression gate "
            "did not actually gate anything"
        )
        if args.require_history:
            print(f"FAILED: {message}", file=sys.stderr)
            return 1
        print(message)
        return 0
    print(f"ok: {compared} trajectory comparison(s), no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
