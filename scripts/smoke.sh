#!/usr/bin/env bash
# End-to-end smoke: tier-1 tests plus tiny campaigns through the real CLI.
#
#   scripts/smoke.sh [extra pytest args...]
#
# Runs the full pytest suite, then a 4-task DFTNO campaign on 2 workers,
# resumes it (must skip everything), and prints the aggregated report.
# Finally exercises the scenario task type end to end: a 2-task scenario
# campaign, a merge with the stabilization store, and a status round-trip
# that must show the merged rows as stale against the scenario grid.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q "$@"

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# --- scheduler-core micro-bench (quick variant) ----------------------------
# Times the incremental enabled-set core against the historical full scan on
# small sizes and writes the BENCH_scheduler.json artifact; the full sweep
# (n up to 500, with the 3x acceptance threshold) runs in CI and on demand.
# The quick bench also asserts the observability-layer thresholds
# (disabled-path overhead <= 3%, enabled phase coverage >= 90%, telemetry
# never perturbs the execution) and appends one line to the repo's
# perf-trajectory history -- local runs feed BENCH_history.jsonl too, so the
# trajectory the check_perf gate compares against actually accumulates.
history_before="$( [ -f BENCH_history.jsonl ] && wc -l < BENCH_history.jsonl || echo 0 )"
python benchmarks/bench_scheduler_core.py --quick \
    --out "$out/BENCH_scheduler.json"
test -s "$out/BENCH_scheduler.json" || {
    echo "smoke FAILED: scheduler bench artifact missing" >&2; exit 1;
}

# --- sharded-engine micro-bench (quick variant) ----------------------------
# Times the multi-process sharded engine against the single-process
# incremental core on a small size (and asserts the executions are
# identical); the full sweep with the n=1000/k=4 speedup threshold runs in
# CI's sharded job and on demand.
python benchmarks/bench_sharded.py --quick \
    --out "$out/BENCH_sharded.json"
test -s "$out/BENCH_sharded.json" || {
    echo "smoke FAILED: sharded bench artifact missing" >&2; exit 1;
}

# --- vectorized-engine micro-bench (quick variant) -------------------------
# Times the batch-kernel synchronous engine against per-node dispatch on a
# small size (and asserts the executions are identical); the full sweep with
# the n=5000 speedup threshold runs in CI's vectorized job and on demand.
# Degrades honestly ("threshold: not applicable") when numpy is absent.
python benchmarks/bench_vectorized.py --quick \
    --out "$out/BENCH_vectorized.json"
test -s "$out/BENCH_vectorized.json" || {
    echo "smoke FAILED: vectorized bench artifact missing" >&2; exit 1;
}
history_after="$(wc -l < BENCH_history.jsonl)"
if [ "$((history_after - history_before))" -ne 3 ]; then
    echo "smoke FAILED: expected the perf history to grow by 3 lines" \
         "(was $history_before, now $history_after)" >&2
    exit 1
fi

# --- perf regression gate against the accumulated trajectory ---------------
python scripts/check_perf.py --current "$out/BENCH_scheduler.json" \
    --history BENCH_history.jsonl --require-history

python -m repro.campaign run --protocol dftno --family ring \
    --sizes 6,8 --trials 2 --jobs 2 --seed 1 --out "$out"

resume_log="$(python -m repro.campaign run --protocol dftno --family ring \
    --sizes 6,8 --trials 2 --jobs 2 --seed 1 --out "$out" --resume --quiet)"
echo "$resume_log"
case "$resume_log" in
    *"0 executed, 4 skipped"*) ;;
    *) echo "smoke FAILED: resume did not skip completed tasks" >&2; exit 1 ;;
esac

python -m repro.campaign report --out "$out"

# --- multi-machine split: --shard I/K slices re-unite via merge ------------
python -m repro.campaign run --protocol dftno --family ring \
    --sizes 6,8 --trials 2 --jobs 1 --seed 1 --out "$out/slice-a.jsonl" --shard 0/2 --quiet
python -m repro.campaign run --protocol dftno --family ring \
    --sizes 6,8 --trials 2 --jobs 1 --seed 1 --out "$out/slice-b.jsonl" --shard 1/2 --quiet
python -m repro.campaign merge "$out/slice-a.jsonl" "$out/slice-b.jsonl" \
    --out "$out/slices-merged.jsonl"
shard_status="$(python -m repro.campaign status --out "$out/slices-merged.jsonl" \
    --protocol dftno --family ring --sizes 6,8 --trials 2 --seed 1)"
echo "$shard_status"
case "$shard_status" in
    *"4 tasks, 4 completed, 0 pending, 0 stale"*) ;;
    *) echo "smoke FAILED: sharded slices did not merge back to the full grid" >&2; exit 1 ;;
esac

# --- scenario task type: run + merge + status round-trip -------------------
scen="$(mktemp -d)"
trap 'rm -rf "$out" "$scen"' EXIT

python -m repro.campaign run --task-type scenario --scenario single_burst \
    --protocol dftno --protocol stno-bfs --sizes 8 --trials 1 --seed 2 \
    --out "$scen/scenario.jsonl"

python -m repro.campaign merge "$out" "$scen/scenario.jsonl" \
    --out "$scen/merged.jsonl"

status_log="$(python -m repro.campaign status --out "$scen/merged.jsonl" \
    --task-type scenario --scenario single_burst \
    --protocol dftno --protocol stno-bfs --sizes 8 --trials 1 --seed 2)"
echo "$status_log"
case "$status_log" in
    *"2 tasks, 2 completed, 0 pending, 4 stale"*) ;;
    *) echo "smoke FAILED: merged store status mismatch" >&2; exit 1 ;;
esac

python -m repro.campaign report --out "$scen/scenario.jsonl" --key scenario \
    --metric recovery_steps_mean

# Per-event recovery aggregation over the stored scenario rows.
python -m repro.campaign report --out "$scen/scenario.jsonl" --per-event

# --- sqlite backend + msgpass workload axis through the unified API --------
python -m repro.campaign run --task-type msgpass --workload traversal \
    --workload broadcast --family complete --sizes 8 --trials 1 --seed 3 \
    --out "$scen/msgpass.sqlite"

sqlite_status="$(python -m repro.campaign status --out "$scen/msgpass.sqlite" \
    --task-type msgpass --workload traversal --workload broadcast \
    --family complete --sizes 8 --trials 1 --seed 3)"
echo "$sqlite_status"
case "$sqlite_status" in
    *"2 tasks, 2 completed, 0 pending"*) ;;
    *) echo "smoke FAILED: sqlite msgpass status mismatch" >&2; exit 1 ;;
esac

python -m repro.campaign report --out "$scen/msgpass.sqlite" --key workload

# --- observability: run --perf persists summaries, report --perf reads them
python -m repro.campaign run --protocol dftno --family ring --sizes 6 \
    --trials 1 --seed 4 --perf --out "$scen/perf.jsonl" --quiet
perf_report="$(python -m repro.campaign report --out "$scen/perf.jsonl" --perf)"
echo "$perf_report"
case "$perf_report" in
    *"guard_eval"*) ;;
    *) echo "smoke FAILED: report --perf missing phase breakdown" >&2; exit 1 ;;
esac

# --- protocol-health: telemetry + watchdog rows, live watch, health report -
# The campaign runs in the background while watch tails its store -- the
# live-dashboard-against-a-store-being-written acceptance path.
python -m repro.campaign run --protocol dftno --family ring --sizes 6,8 \
    --trials 2 --seed 5 --telemetry --health --perf \
    --out "$scen/health.jsonl" --quiet &
run_pid=$!
watch_log="$(python -m repro.campaign watch --out "$scen/health.jsonl" \
    --protocol dftno --family ring --sizes 6,8 --trials 2 --seed 5 \
    --interval 0.3 --iterations 4 --no-clear)"
wait "$run_pid"
echo "$watch_log" | tail -n 20
case "$watch_log" in
    *"campaign watch --"*) ;;
    *) echo "smoke FAILED: watch rendered no dashboard frames" >&2; exit 1 ;;
esac
health_report="$(python -m repro.campaign report --out "$scen/health.jsonl" --health)"
echo "$health_report"
case "$health_report" in
    *"4/4 rows monitored, 0 anomalous"*) ;;
    *) echo "smoke FAILED: health report mismatch (watchdog false positive?)" >&2; exit 1 ;;
esac
shard_view="$(python -m repro.campaign status --out "$scen/health.jsonl" \
    --protocol dftno --family ring --sizes 6,8 --trials 2 --seed 5 --shard /2)"
echo "$shard_view"
case "$shard_view" in
    *"per-shard status (2 slices)"*) ;;
    *) echo "smoke FAILED: status --shard missing per-shard table" >&2; exit 1 ;;
esac
# --- repro-lint: static verifier over every shipped layer, then a quick
# --- sharded race check (k=2, one substrate) -------------------------------
python -m repro.lint src/repro
lint_seeded=0
python -m repro.lint "$(dirname "$0")/../tests/lint/fixtures/guard_mutates.py" >/dev/null || lint_seeded=$?
if [ "$lint_seeded" -ne 1 ]; then
    echo "smoke FAILED: repro-lint did not flag the seeded violation (exit $lint_seeded)" >&2
    exit 1
fi
python -m repro.lint --race dftno --shards 2 --size 8 --seed 1

echo "smoke OK"
