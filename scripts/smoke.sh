#!/usr/bin/env bash
# End-to-end smoke: tier-1 tests plus a tiny campaign through the real CLI.
#
#   scripts/smoke.sh [extra pytest args...]
#
# Runs the full pytest suite, then a 4-task DFTNO campaign on 2 workers,
# resumes it (must skip everything), and prints the aggregated report.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q "$@"

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

python -m repro.campaign run --protocol dftno --family ring \
    --sizes 6,8 --trials 2 --jobs 2 --seed 1 --out "$out"

resume_log="$(python -m repro.campaign run --protocol dftno --family ring \
    --sizes 6,8 --trials 2 --jobs 2 --seed 1 --out "$out" --resume --quiet)"
echo "$resume_log"
case "$resume_log" in
    *"0 executed, 4 skipped"*) ;;
    *) echo "smoke FAILED: resume did not skip completed tasks" >&2; exit 1 ;;
esac

python -m repro.campaign report --out "$out"
echo "smoke OK"
