"""Setuptools configuration for the reproduction package.

Kept as a plain setup.py (no pyproject.toml) so that `pip install -e .` works
on offline machines where PEP 660 editable builds (which require `wheel`) are
unavailable.  The package list is discovered from `src/` and includes the
`repro.campaign` experiment-campaign subsystem; the `repro-campaign` console
script is the installed counterpart of `python -m repro.campaign`.
"""
from setuptools import find_packages, setup

setup(
    name="repro-dattagpv00",
    version="0.4.0",
    description=(
        "Reproduction of self-stabilizing network orientation protocols "
        "(DFTNO/STNO) with a unified experiment API and campaign engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
            "repro-lint=repro.lint.cli:main",
        ],
    },
)
