"""Setuptools configuration for the reproduction package.

Kept as a plain setup.py (no pyproject.toml) so that `pip install -e .` works
on offline machines where PEP 660 editable builds (which require `wheel`) are
unavailable.  The package list is discovered from `src/` and includes the
`repro.campaign` experiment-campaign subsystem; the `repro-campaign` console
script is the installed counterpart of `python -m repro.campaign`.
"""
from setuptools import find_packages, setup

setup(
    name="repro-dattagpv00",
    version="0.5.0",
    description=(
        "Reproduction of self-stabilizing network orientation protocols "
        "(DFTNO/STNO) with a unified experiment API and campaign engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The core engines are pure-Python on purpose; numpy only powers the
    # opt-in vectorized synchronous engine (``scheduler-vectorized``) and the
    # sharded engine's shared-memory mirrors.  Without it those paths degrade
    # gracefully (EngineUnavailableError / pickled deltas), so it is an extra:
    #     pip install .[vectorized]
    extras_require={"vectorized": ["numpy"]},
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
            "repro-lint=repro.lint.cli:main",
            "repro-replay=repro.replay.cli:main",
        ],
    },
)
