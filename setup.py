"""Setuptools shim for environments without the `wheel` package.

The project is fully described in pyproject.toml; this file only exists so
that `pip install -e .` can fall back to the legacy setup.py code path on
offline machines where PEP 660 editable builds (which require `wheel`) are
unavailable.
"""
from setuptools import setup

setup()
