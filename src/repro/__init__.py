"""repro -- self-stabilizing network orientation in arbitrary rooted networks.

A from-scratch Python implementation of the two protocols of *Self-Stabilizing
Network Orientation Algorithms in Arbitrary Rooted Networks* (Gurumurthy,
UNLV/ICDCS 2000) together with every substrate they depend on:

* a shared-variable self-stabilization runtime (guarded actions, daemons,
  rounds, fault injection) -- :mod:`repro.runtime`;
* rooted network topologies and generators -- :mod:`repro.graphs`;
* the underlying protocols the thesis assumes: depth-first token circulation
  and spanning-tree construction -- :mod:`repro.substrates`;
* the paper's contribution: the DFTNO and STNO orientation protocols, the
  chordal sense of direction and the SP_NO specification -- :mod:`repro.core`;
* sense-of-direction applications (routing, traversal, broadcast, election)
  and a synchronous message-passing simulator to quantify their benefit --
  :mod:`repro.sod` and :mod:`repro.msgpass`;
* the experiment harness regenerating every quantitative claim of the thesis
  -- :mod:`repro.analysis`;
* the unified experiment API: one declarative, serializable
  :class:`~repro.api.RunSpec` executed by :func:`repro.api.run` on any of the
  engines (scheduler / scenario / msgpass), with pluggable observers --
  :mod:`repro.api`; experiment campaigns (grids, stores, resume, sharding)
  layer on top in :mod:`repro.campaign`.

Quickstart
----------
>>> from repro import generators, orient_with_dftno
>>> network = generators.random_connected(12, seed=1)
>>> result = orient_with_dftno(network, seed=1)
>>> sorted(result.orientation.names.values()) == list(range(12))
True
"""

from repro.errors import (
    ReproError,
    NetworkError,
    ProtocolError,
    SchedulingError,
    ConvergenceError,
    SpecificationError,
    RoutingError,
    SimulationError,
)
from repro.graphs import RootedNetwork, generators
from repro.runtime import (
    Action,
    Configuration,
    Protocol,
    Scheduler,
    RunResult,
    CentralDaemon,
    SynchronousDaemon,
    DistributedDaemon,
    AdversarialDaemon,
    make_daemon,
    space_summary,
)
from repro.substrates import (
    DepthFirstTokenCirculation,
    BFSSpanningTree,
    DFSSpanningTree,
    DijkstraTokenRing,
    PIFWave,
    dfs_preorder,
)
from repro.core import (
    ChordalOrientation,
    OrientationSpecification,
    DFTNO,
    STNO,
    build_dftno,
    build_stno,
    centralized_orientation,
    OrientationResult,
    orient_with_dftno,
    orient_with_stno,
    extract_orientation,
)

__version__ = "1.2.0"

__all__ = [
    # errors
    "ReproError",
    "NetworkError",
    "ProtocolError",
    "SchedulingError",
    "ConvergenceError",
    "SpecificationError",
    "RoutingError",
    "SimulationError",
    # graphs
    "RootedNetwork",
    "generators",
    # runtime
    "Action",
    "Configuration",
    "Protocol",
    "Scheduler",
    "RunResult",
    "CentralDaemon",
    "SynchronousDaemon",
    "DistributedDaemon",
    "AdversarialDaemon",
    "make_daemon",
    "space_summary",
    # substrates
    "DepthFirstTokenCirculation",
    "BFSSpanningTree",
    "DFSSpanningTree",
    "DijkstraTokenRing",
    "PIFWave",
    "dfs_preorder",
    # core
    "ChordalOrientation",
    "OrientationSpecification",
    "DFTNO",
    "STNO",
    "build_dftno",
    "build_stno",
    "centralized_orientation",
    "OrientationResult",
    "orient_with_dftno",
    "orient_with_stno",
    "extract_orientation",
    "__version__",
]
