"""Experiment harness: regenerates every quantitative claim of the thesis.

The thesis is proof-centric; its "evaluation" consists of complexity theorems
(stabilization time in steps/rounds, space in bits) and three worked figures.
This package turns each of them into a measured experiment:

* :mod:`~repro.analysis.convergence` -- stabilization-time measurements for
  layered protocols (time for the substrate, time for the orientation layer on
  top of it), with sweep drivers over topology families;
* :mod:`~repro.analysis.recovery` -- per-event recovery metrics (disturbance,
  re-stabilization time, closure violations) for the fault-injection
  scenarios of :mod:`repro.scenarios`;
* :mod:`~repro.analysis.space` -- per-processor space accounting against the
  O(Delta log N) bound;
* :mod:`~repro.analysis.reporting` -- plain-text tables and least-squares fits
  used by the benchmarks and EXPERIMENTS.md;
* :mod:`~repro.analysis.experiments` -- one entry point per experiment id of
  DESIGN.md (EXP-T1, EXP-T2, EXP-T3, EXP-F1..F3, EXP-A1, EXP-A2, EXP-R1,
  EXP-R2), each returning the table rows it reproduces.
"""

from repro.analysis.reporting import format_table, linear_fit, summarize
from repro.analysis.recovery import (
    EventRecovery,
    ScenarioReport,
    aggregate_event_recoveries,
    disturbed_fraction,
    disturbed_nodes,
)
from repro.analysis.convergence import (
    StabilizationSample,
    measure_layered_stabilization,
    measure_dftno,
    measure_stno,
    sweep_dftno_sizes,
    sweep_stno_heights,
)
from repro.analysis.space import space_rows, orientation_space_row
from repro.analysis import experiments

__all__ = [
    "format_table",
    "linear_fit",
    "summarize",
    "EventRecovery",
    "ScenarioReport",
    "aggregate_event_recoveries",
    "disturbed_fraction",
    "disturbed_nodes",
    "StabilizationSample",
    "measure_layered_stabilization",
    "measure_dftno",
    "measure_stno",
    "sweep_dftno_sizes",
    "sweep_stno_heights",
    "space_rows",
    "orientation_space_row",
    "experiments",
]
