"""Stabilization-time measurements for the layered orientation protocols.

Both theorems are phrased relative to the underlying layer: DFTNO takes O(n)
steps *after the token circulation stabilizes* (Section 3.2.3) and STNO takes
O(h) steps *after the spanning tree stabilizes* (Section 4.2.3).  The
measurement therefore tracks two predicates along one execution:

* the moment the *substrate* legitimacy predicate starts holding for good, and
* the moment the full orientation specification (``SP1 /\\ SP2``) starts
  holding for good,

and reports both absolute values and their difference (the quantity the
theorems bound), in steps and in asynchronous rounds, from arbitrary initial
configurations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, asdict
from functools import partial
from typing import Callable, Sequence

from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.errors import ConvergenceError
from repro.graphs.network import RootedNetwork
from repro.graphs import generators
from repro.graphs.properties import radius_from_root
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import Daemon, DistributedDaemon
from repro.obs.instrument import Instrumentation
from repro.runtime.observers import Observer
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree, SpanningTreeProtocol

Predicate = Callable[[RootedNetwork, Configuration], bool]


@dataclass(frozen=True)
class StabilizationSample:
    """One measured execution of a layered protocol."""

    protocol: str
    network: str
    n: int
    edges: int
    parameter: int
    daemon: str
    seed: int
    converged: bool
    total_steps: int
    total_rounds: int
    substrate_steps: int | None
    substrate_rounds: int | None
    full_steps: int | None
    full_rounds: int | None

    @property
    def overlay_steps(self) -> int | None:
        """Steps the orientation layer needed after the substrate stabilized."""
        if self.full_steps is None or self.substrate_steps is None:
            return None
        return max(0, self.full_steps - self.substrate_steps)

    @property
    def overlay_rounds(self) -> int | None:
        """Rounds the orientation layer needed after the substrate stabilized."""
        if self.full_rounds is None or self.substrate_rounds is None:
            return None
        return max(0, self.full_rounds - self.substrate_rounds)

    def as_row(self) -> dict[str, object]:
        """Flat dictionary (including the derived overlay columns) for tables."""
        row = asdict(self)
        row["overlay_steps"] = self.overlay_steps
        row["overlay_rounds"] = self.overlay_rounds
        return row


def measure_layered_stabilization(
    network: RootedNetwork,
    protocol: Protocol,
    substrate_predicate: Predicate,
    full_predicate: Predicate,
    daemon: Daemon | None = None,
    seed: int | None = None,
    max_steps: int | None = None,
    parameter: int | None = None,
    label: str | None = None,
    configuration: Configuration | None = None,
    observers: Sequence[Observer] = (),
    incremental: bool = True,
    scheduler_factory: Callable[..., Scheduler] | None = None,
    instrumentation: Instrumentation | None = None,
) -> StabilizationSample:
    """Run ``protocol`` from an arbitrary configuration and time both predicates.

    ``substrate_predicate`` / ``full_predicate`` are evaluated after every
    computation step; the recorded time is the first step (and round) after
    which the predicate held continuously until the end of the run.  The run
    ends as soon as the full predicate has held for a full-wave closure window
    of consecutive steps or the step budget is exhausted.  ``configuration``
    overrides the (default: arbitrary) starting configuration.  ``observers``
    receive every step/round notification plus ``on_converged`` with the
    finished sample.  ``incremental=False`` forces the scheduler's historical
    full guard scan (the ``scheduler-fullscan`` differential-testing path).
    ``scheduler_factory`` substitutes a whole alternative execution core --
    the ``scheduler-sharded`` engine passes
    :class:`~repro.shard.ShardedScheduler` here -- and overrides
    ``incremental``; a factory-built scheduler exposing ``close()`` is closed
    when the measurement ends.
    """
    rng = random.Random(seed)
    daemon = daemon or DistributedDaemon()
    if max_steps is None:
        max_steps = 500 * (network.n + network.num_edges()) + 3_000

    if scheduler_factory is None:
        scheduler_factory = partial(Scheduler, incremental=incremental)
    scheduler = scheduler_factory(
        network,
        protocol,
        daemon=daemon,
        rng=rng,
        configuration=configuration,
        observers=observers,
        instrumentation=instrumentation,
    )
    try:
        substrate_step: int | None = None
        substrate_round: int | None = None
        full_step: int | None = None
        full_round: int | None = None
        # Confirm legitimacy over at least one full token wave (O(n + m)
        # moves) so that a transiently satisfied specification is not
        # mistaken for the stabilized one.
        closure_window = 3 * (network.n + network.num_edges()) + 10
        held_for = 0

        def observe() -> None:
            nonlocal substrate_step, substrate_round, full_step, full_round, held_for
            config = scheduler.configuration
            if substrate_predicate(network, config):
                if substrate_step is None:
                    substrate_step = scheduler.steps_executed
                    substrate_round = scheduler.rounds_completed
            else:
                substrate_step = None
                substrate_round = None
            if full_predicate(network, config):
                if full_step is None:
                    full_step = scheduler.steps_executed
                    full_round = scheduler.rounds_completed
                held_for += 1
            else:
                full_step = None
                full_round = None
                held_for = 0

        observe()
        while scheduler.steps_executed < max_steps and held_for < closure_window:
            if scheduler.step() is None:
                break
            observe()

        converged = full_step is not None
        sample = StabilizationSample(
            protocol=label or protocol.name,
            network=network.name,
            n=network.n,
            edges=network.num_edges(),
            parameter=parameter if parameter is not None else network.n,
            daemon=daemon.name,
            seed=seed if seed is not None else -1,
            converged=converged,
            total_steps=scheduler.steps_executed,
            total_rounds=scheduler.rounds_completed,
            substrate_steps=substrate_step,
            substrate_rounds=substrate_round,
            full_steps=full_step,
            full_rounds=full_round,
        )
        if converged:
            scheduler.notify_converged(sample)
        return sample
    finally:
        closer = getattr(scheduler, "close", None)
        if closer is not None:
            closer()


def presettled_substrate_configuration(
    network: RootedNetwork,
    full_protocol: Protocol,
    substrate_protocol: Protocol,
    rng: random.Random,
    max_steps: int = 200_000,
) -> Configuration:
    """An arbitrary configuration of ``full_protocol`` whose substrate part is stabilized.

    The theorems of the thesis bound the orientation layers' stabilization time
    *after* the underlying protocol has stabilized; this helper produces the
    corresponding starting point: the substrate's variables carry a legitimate
    state (obtained by running the substrate alone), while the orientation
    layer's variables are arbitrary.
    """
    substrate_scheduler = Scheduler(
        network,
        substrate_protocol,
        daemon=DistributedDaemon(),
        configuration=substrate_protocol.initial_configuration(network),
        rng=random.Random(rng.randrange(1 << 30)),
    )
    substrate_result = substrate_scheduler.run_until_legitimate(max_steps=max_steps)
    if not substrate_result.converged:
        raise ConvergenceError(
            f"substrate {substrate_protocol.name!r} did not stabilize on {network.name}"
        )
    configuration = full_protocol.random_configuration(network, rng=rng)
    for node in network.nodes():
        for variable in substrate_protocol.variable_names(network, node):
            configuration.set(node, variable, substrate_result.configuration.get(node, variable))
    return configuration


def measure_dftno(
    network: RootedNetwork,
    daemon: Daemon | None = None,
    seed: int | None = None,
    max_steps: int | None = None,
    parameter: int | None = None,
    after_substrate: bool = False,
    observers: Sequence[Observer] = (),
    incremental: bool = True,
    scheduler_factory: Callable[..., Scheduler] | None = None,
    instrumentation: Instrumentation | None = None,
) -> StabilizationSample:
    """Measure DFTNO on ``network``: token-layer and full-orientation stabilization.

    With ``after_substrate=True`` the run starts from a configuration in which
    the token layer is already legitimate (matching the phrasing of Theorem
    3.2.3: O(n) steps *after* the token circulation stabilizes) while the
    orientation variables are arbitrary.
    """
    protocol = build_dftno()
    token = protocol.base
    overlay = protocol.overlay
    rng = random.Random(seed)

    def substrate(net: RootedNetwork, config: Configuration) -> bool:
        return token.legitimate(net, config)

    def full(net: RootedNetwork, config: Configuration) -> bool:
        return token.legitimate(net, config) and overlay.legitimate(net, config)

    configuration = None
    if after_substrate:
        configuration = presettled_substrate_configuration(network, protocol, token, rng)

    return measure_layered_stabilization(
        network,
        protocol,
        substrate,
        full,
        daemon=daemon,
        seed=seed,
        max_steps=max_steps,
        parameter=parameter,
        label="dftno",
        configuration=configuration,
        observers=observers,
        incremental=incremental,
        scheduler_factory=scheduler_factory,
        instrumentation=instrumentation,
    )


def measure_stno(
    network: RootedNetwork,
    tree: str | SpanningTreeProtocol = "bfs",
    daemon: Daemon | None = None,
    seed: int | None = None,
    max_steps: int | None = None,
    parameter: int | None = None,
    after_substrate: bool = False,
    observers: Sequence[Observer] = (),
    incremental: bool = True,
    scheduler_factory: Callable[..., Scheduler] | None = None,
    instrumentation: Instrumentation | None = None,
) -> StabilizationSample:
    """Measure STNO on ``network``: tree-layer and full-orientation stabilization.

    With ``after_substrate=True`` the run starts from a configuration in which
    the spanning tree is already constructed (matching the phrasing of Theorem
    4.2.1/4.2.3: O(h) steps *after* the tree stabilizes) while the orientation
    variables are arbitrary.
    """
    protocol = build_stno(tree=tree)
    overlay = None
    for layer in protocol.layers():
        if layer.name == "stno":
            overlay = layer
    if overlay is None:  # pragma: no cover - build_stno always adds the layer
        raise ConvergenceError("build_stno did not produce an STNO layer")
    tree_protocol = overlay.tree_layer
    rng = random.Random(seed)

    def substrate(net: RootedNetwork, config: Configuration) -> bool:
        return tree_protocol.legitimate(net, config)

    def full(net: RootedNetwork, config: Configuration) -> bool:
        return tree_protocol.legitimate(net, config) and overlay.legitimate(net, config)

    configuration = None
    if after_substrate:
        configuration = presettled_substrate_configuration(network, protocol, tree_protocol, rng)

    return measure_layered_stabilization(
        network,
        protocol,
        substrate,
        full,
        daemon=daemon,
        seed=seed,
        max_steps=max_steps,
        parameter=parameter,
        label=protocol.name,
        configuration=configuration,
        observers=observers,
        incremental=incremental,
        scheduler_factory=scheduler_factory,
        instrumentation=instrumentation,
    )


# ----------------------------------------------------------------------
# Sweeps used by EXP-T1 and EXP-T2
# ----------------------------------------------------------------------
def sweep_dftno_sizes(
    sizes: Sequence[int],
    family: str = "random_connected",
    trials: int = 3,
    seed: int = 0,
    daemon_factory: Callable[[], Daemon] | None = None,
    after_substrate: bool = False,
) -> list[StabilizationSample]:
    """EXP-T1 driver: DFTNO stabilization across network sizes of one family."""
    samples: list[StabilizationSample] = []
    for size in sizes:
        for trial in range(trials):
            network = generators.family(family, size, seed=seed + 1_000 * trial + size)
            daemon = daemon_factory() if daemon_factory else None
            samples.append(
                measure_dftno(
                    network,
                    daemon=daemon,
                    seed=seed + 7 * trial + size,
                    parameter=size,
                    after_substrate=after_substrate,
                )
            )
    return samples


def _height_controlled_tree(n: int, height: int, seed: int) -> RootedNetwork:
    """A tree on ``n`` processors whose root-to-leaf height is exactly ``height``.

    A spine of ``height`` edges fixes the height; the remaining processors are
    attached uniformly at random to spine processors other than the last one,
    so they can never extend the height.
    """
    rng = random.Random(seed)
    if height < 1 or height > n - 1:
        raise ValueError("height must lie in 1..n-1")
    edges = [(i, i + 1) for i in range(height)]
    for node in range(height + 1, n):
        parent = rng.randrange(0, height)
        edges.append((parent, node))
    return RootedNetwork(n, edges, root=0, name=f"height_tree(n={n}, h={height}, seed={seed})")


def sweep_stno_heights(
    n: int,
    heights: Sequence[int],
    trials: int = 3,
    seed: int = 0,
    tree: str = "bfs",
    daemon_factory: Callable[[], Daemon] | None = None,
    after_substrate: bool = False,
) -> list[StabilizationSample]:
    """EXP-T2 driver: STNO stabilization across tree heights at fixed ``n``."""
    samples: list[StabilizationSample] = []
    for height in heights:
        for trial in range(trials):
            network = _height_controlled_tree(n, height, seed + 97 * trial + height)
            actual_height = radius_from_root(network)
            daemon = daemon_factory() if daemon_factory else None
            samples.append(
                measure_stno(
                    network,
                    tree=tree,
                    daemon=daemon,
                    seed=seed + 13 * trial + height,
                    parameter=actual_height,
                    after_substrate=after_substrate,
                )
            )
    return samples


# Exposed for tests of the sweep helper itself.
height_controlled_tree = _height_controlled_tree

__all__ = [
    "StabilizationSample",
    "measure_layered_stabilization",
    "measure_dftno",
    "measure_stno",
    "sweep_dftno_sizes",
    "sweep_stno_heights",
    "height_controlled_tree",
]
