"""One entry point per experiment of DESIGN.md.

Every function regenerates the rows behind one claim or figure of the thesis
and returns them as a list of dictionaries (plus, where meaningful, a summary
dictionary with fitted slopes or aggregate ratios).  The benchmark modules
call these with small parameters and print the tables; EXPERIMENTS.md records
a full run.

The sweep-shaped experiments (EXP-T1, EXP-T2, EXP-R1, EXP-R2, EXP-S1,
EXP-M1) are pure *spec constructors*: they build a declarative
:class:`repro.campaign.Grid` -- whose tasks are
:class:`~repro.api.RunSpec` objects executed through the engine-agnostic
:func:`repro.api.run` entry point -- and delegate execution to the campaign
engine, so they share its hash-derived seeding and can be regenerated -- or
scaled up, parallelized and resumed -- through ``python -m repro.campaign``
with the same parameters.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import summarize
from repro.analysis.space import space_rows
from repro.core.baseline import centralized_orientation
from repro.core.dftno import VAR_MAX, build_dftno
from repro.core.specification import VAR_NAME
from repro.core.stno import VAR_WEIGHT, build_stno
from repro.graphs import generators
from repro.graphs.network import RootedNetwork
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler
from repro.sod.election import ring_election_oriented, ring_election_unoriented
from repro.sod.traversal import (
    broadcast_with_sod,
    broadcast_without_sod,
    dfs_traversal_with_sod,
    dfs_traversal_without_sod,
)
from repro.substrates.token_circulation import dfs_preorder


def _campaign():
    # The campaign engine executes sweeps *for* this module but also depends
    # on repro.analysis for its measurement harness; importing it lazily keeps
    # that dependency one-directional at import time.
    from repro.campaign.aggregate import campaign_summary
    from repro.campaign.grid import Grid, normalize_protocol
    from repro.campaign.runner import run_grid

    return Grid, run_grid, campaign_summary, normalize_protocol


# ----------------------------------------------------------------------
# EXP-T1: DFTNO stabilizes in O(n) steps after the token layer (Section 3.2.3)
# ----------------------------------------------------------------------
def exp_t1_dftno_stabilization(
    sizes: Sequence[int] = (8, 16, 24, 32, 48, 64),
    family: str = "random_connected",
    trials: int = 3,
    seed: int = 1,
    after_substrate: bool = True,
) -> dict[str, object]:
    """Stabilization of DFTNO versus network size on one topology family.

    Matching Theorem 3.2.3's phrasing, the runs start (by default) from a
    configuration whose token layer is already legitimate while the
    orientation variables are arbitrary.  Returns the per-size rows (mean
    steps/rounds the orientation layer needed) and the linear fit of those
    steps against ``n``, whose high R^2 is the measured counterpart of the
    O(n) theorem.
    """
    Grid, run_grid, campaign_summary, _ = _campaign()
    grid = Grid(
        sizes=tuple(sizes),
        protocols=("dftno",),
        families=(family,),
        trials=trials,
        seed=seed,
        after_substrate=after_substrate,
    )
    result = run_grid(grid)
    return campaign_summary(result.rows, key_name="n", fit_metric="overlay_steps_mean")


# ----------------------------------------------------------------------
# EXP-T2: STNO stabilizes in O(h) rounds after the tree layer (Section 4.2.3)
# ----------------------------------------------------------------------
def exp_t2_stno_stabilization(
    n: int = 40,
    heights: Sequence[int] = (2, 5, 10, 15, 20, 30, 39),
    trials: int = 3,
    seed: int = 2,
    tree: str = "bfs",
    after_substrate: bool = True,
) -> dict[str, object]:
    """Stabilization of STNO versus spanning-tree height at fixed ``n``.

    Matching Theorem 4.2.3's phrasing, the runs start (by default) from a
    configuration whose spanning tree is already constructed while the
    orientation variables are arbitrary, so the reported rounds are exactly
    the O(h) quantity of the theorem.
    """
    Grid, run_grid, campaign_summary, _ = _campaign()
    grid = Grid(
        sizes=(n,),
        protocols=(f"stno-{tree}",),
        heights=tuple(heights),
        trials=trials,
        seed=seed,
        after_substrate=after_substrate,
    )
    result = run_grid(grid)
    return campaign_summary(result.rows, key_name="height", fit_metric="overlay_rounds_mean")


# ----------------------------------------------------------------------
# EXP-T3: space usage against O(Delta * log N) (Sections 3.2.3, 4.2.3, Chapter 5)
# ----------------------------------------------------------------------
def exp_t3_space(sizes: Sequence[int] = (8, 16, 32, 64, 128)) -> dict[str, object]:
    """Measured bits per processor for DFTNO and STNO across topology families.

    The rows show, for each topology, the overlay cost (identical for both
    protocols and following Delta * log N), the substrate cost (O(log N) for
    the token layer versus O(Delta + log N) recorded-children cost for the
    tree layer), and the closed-form bound for comparison.
    """
    networks: list[RootedNetwork] = []
    for size in sizes:
        networks.append(generators.ring(max(size, 3)))
        networks.append(generators.star(size))
        networks.append(generators.complete(min(size, 32)))
        networks.append(generators.random_connected(size, seed=size))
    rows = space_rows(networks)
    return {"rows": rows}


# ----------------------------------------------------------------------
# EXP-F1: the node-labeling walkthrough of Figure 3.1.1
# ----------------------------------------------------------------------
def exp_f1_figure_3_1_1(seed: int = 3) -> dict[str, object]:
    """Replay DFTNO on the exact 5-processor network of Figure 3.1.1.

    Starting from the protocol's clean state (the figure's step (i)), the
    first token wave names the processors in the order the figure shows:
    r=0, b=1, d=2, c=3, a=4.  The returned event list contains, for every
    naming step, the processor, its thesis label, the assigned name and the
    processor's counter value, which together reproduce the figure's
    narrative.
    """
    network = generators.figure_3_1_1_network()
    labels = generators.FIGURE_3_1_1_LABELS
    protocol = build_dftno()
    # Clean token state (the figure's step (i): no processor visited yet), but
    # with the orientation variables deliberately off so that every naming
    # shows up as a change in the trace.
    configuration = protocol.initial_configuration(network)
    for node in network.nodes():
        configuration.set(node, VAR_NAME, (node + 1) % network.n)
        configuration.set(node, VAR_MAX, network.n - 1)
    scheduler = Scheduler(
        network,
        protocol,
        daemon=make_daemon("central", policy="round_robin"),
        configuration=configuration,
        seed=seed,
        record_trace=True,
    )
    scheduler.run(max_steps=400, stop_predicate=lambda s: s.protocol.legitimate(s.network, s.configuration))

    events: list[dict[str, object]] = []
    for event in scheduler.trace.events():
        if VAR_NAME in event.changes:
            _, new_name = event.changes[VAR_NAME]
            max_value = event.changes.get(VAR_MAX, (None, new_name))[1]
            events.append(
                {
                    "step": event.step,
                    "processor": event.node,
                    "thesis_label": labels[event.node],
                    "assigned_name": new_name,
                    "max_counter": max_value,
                }
            )
    final_names = {
        labels[node]: scheduler.configuration.get(node, VAR_NAME) for node in network.nodes()
    }
    expected = {"r": 0, "b": 1, "d": 2, "c": 3, "a": 4}
    return {
        "events": events,
        "final_names": final_names,
        "expected_names": expected,
        "matches_figure": final_names == expected,
    }


# ----------------------------------------------------------------------
# EXP-F2: the weight/naming walkthrough of Figure 4.1.1
# ----------------------------------------------------------------------
def exp_f2_figure_4_1_1(seed: int = 4) -> dict[str, object]:
    """Replay STNO on the exact 5-processor tree of Figure 4.1.1.

    The figure computes weights bottom-up (leaves 1, the internal node 3, the
    root 5) and then names top-down (root 0, then each subtree a contiguous
    interval).  The returned rows list, per processor, the measured weight and
    name next to the figure's values.
    """
    network = generators.figure_4_1_1_network()
    protocol = build_stno(tree="bfs")
    scheduler = Scheduler(
        network,
        protocol,
        daemon=make_daemon("central", policy="round_robin"),
        configuration=protocol.random_configuration(network, seed=seed),
        seed=seed,
    )
    scheduler.run_until_legitimate(max_steps=2_000)

    expected_weights = {0: 5, 1: 3, 2: 1, 3: 1, 4: 1}
    expected_names = {0: 0, 1: 1, 2: 4, 3: 2, 4: 3}
    rows = []
    for node in network.nodes():
        rows.append(
            {
                "processor": node,
                "measured_weight": scheduler.configuration.get(node, VAR_WEIGHT),
                "expected_weight": expected_weights[node],
                "measured_name": scheduler.configuration.get(node, VAR_NAME),
                "expected_name": expected_names[node],
            }
        )
    matches = all(
        row["measured_weight"] == row["expected_weight"]
        and row["measured_name"] == row["expected_name"]
        for row in rows
    )
    return {"rows": rows, "matches_figure": matches}


# ----------------------------------------------------------------------
# EXP-F3: chordal sense of direction properties (Figure 2.2.1 / Section 2.2)
# ----------------------------------------------------------------------
def exp_f3_chordal_properties(sizes: Sequence[int] = (5, 8, 13, 21), seed: int = 5) -> dict[str, object]:
    """Validate local orientation and edge symmetry of the produced labelings.

    For the Figure 2.2.1 example network and a spread of topology families,
    the orientation produced by the centralized reference and by DFTNO is
    checked for the two defining properties of a chordal sense of direction.
    """
    networks: list[RootedNetwork] = [generators.figure_2_2_1_network()]
    for size in sizes:
        networks.append(generators.ring(max(size, 3)))
        networks.append(generators.random_connected(size, seed=seed + size))
    rows = []
    for network in networks:
        orientation = centralized_orientation(network)
        violations = orientation.violations(network)
        rows.append(
            {
                "network": network.name,
                "n": network.n,
                "edges": network.num_edges(),
                "locally_oriented": all(
                    len(set(orientation.edge_labels[node].values())) == network.degree(node)
                    for node in network.nodes()
                ),
                "edge_symmetric": not any("edge symmetry" in text for text in violations),
                "valid": orientation.is_valid(network),
            }
        )
    return {"rows": rows, "all_valid": all(row["valid"] for row in rows)}


# ----------------------------------------------------------------------
# EXP-A1: orientation lowers message complexity (Sections 1.3-1.4)
# ----------------------------------------------------------------------
def exp_a1_message_complexity(
    sizes: Sequence[int] = (8, 16, 24, 32),
    extra_edge_probability: float = 0.3,
    seed: int = 6,
) -> dict[str, object]:
    """Messages for traversal, broadcast and election with and without the orientation."""
    rows = []
    for size in sizes:
        network = generators.random_connected(size, extra_edge_probability, seed=seed + size)
        orientation = centralized_orientation(network)
        traversal_plain = dfs_traversal_without_sod(network)
        traversal_sod = dfs_traversal_with_sod(network, orientation)
        broadcast_plain = broadcast_without_sod(network)
        broadcast_sod = broadcast_with_sod(network, orientation)

        ring = generators.ring(size)
        ring_orientation = centralized_orientation(ring)
        election_plain = ring_election_unoriented(ring)
        election_sod = ring_election_oriented(ring, ring_orientation)

        rows.append(
            {
                "n": size,
                "edges": network.num_edges(),
                "traversal_msgs_unoriented": traversal_plain.messages,
                "traversal_msgs_oriented": traversal_sod.messages,
                "broadcast_msgs_unoriented": broadcast_plain.messages,
                "broadcast_msgs_oriented": broadcast_sod.messages,
                "election_msgs_unoriented": election_plain.messages,
                "election_msgs_oriented": election_sod.messages,
            }
        )
    savings = {
        "traversal_ratio_mean": summarize(
            [row["traversal_msgs_unoriented"] / row["traversal_msgs_oriented"] for row in rows]
        )["mean"],
        "broadcast_ratio_mean": summarize(
            [row["broadcast_msgs_unoriented"] / row["broadcast_msgs_oriented"] for row in rows]
        )["mean"],
        "election_ratio_mean": summarize(
            [row["election_msgs_unoriented"] / row["election_msgs_oriented"] for row in rows]
        )["mean"],
    }
    return {"rows": rows, "savings": savings}


# ----------------------------------------------------------------------
# EXP-A2: STNO over the DFS tree names like DFTNO (Chapter 5 observation)
# ----------------------------------------------------------------------
def exp_a2_dfs_equivalence(
    sizes: Sequence[int] = (6, 10, 14, 20),
    trials: int = 2,
    seed: int = 7,
) -> dict[str, object]:
    """Compare the stabilized names of DFTNO and of STNO run over the DFS tree."""
    rows = []
    for size in sizes:
        for trial in range(trials):
            network = generators.random_connected(size, seed=seed + 31 * trial + size)
            expected = {node: index for index, node in enumerate(dfs_preorder(network))}

            dftno_run = _final_names(network, "dftno", seed + trial)
            stno_run = _final_names(network, "stno-dfs", seed + trial + 100)
            rows.append(
                {
                    "network": network.name,
                    "n": size,
                    "dftno_matches_preorder": dftno_run == expected,
                    "stno_dfs_matches_preorder": stno_run == expected,
                    "names_identical": dftno_run == stno_run,
                }
            )
    return {"rows": rows, "all_identical": all(row["names_identical"] for row in rows)}


def _final_names(network: RootedNetwork, variant: str, seed: int) -> dict[int, int]:
    from repro.core.orientation import orient_with_dftno, orient_with_stno

    if variant == "dftno":
        result = orient_with_dftno(network, seed=seed)
    else:
        result = orient_with_stno(network, tree="dfs", seed=seed)
    return dict(result.orientation.names)


# ----------------------------------------------------------------------
# EXP-R1: convergence + closure from arbitrary configurations (Definition 2.1.2)
# ----------------------------------------------------------------------
def exp_r1_self_stabilization(
    trials: int = 10,
    size: int = 12,
    seed: int = 8,
    protocols: Sequence[str] = ("dftno", "stno-bfs", "stno-dfs"),
) -> dict[str, object]:
    """Empirical convergence rate from random arbitrary configurations."""
    Grid, run_grid, _, normalize_protocol = _campaign()
    grid = Grid(sizes=(size,), protocols=tuple(protocols), trials=trials, seed=seed)
    result = run_grid(grid)
    rows = []
    for protocol_name in protocols:
        resolved = normalize_protocol(protocol_name)
        bucket = [row for row in result.rows if row["protocol"] == resolved]
        converged = [row for row in bucket if row["converged"]]
        stats = summarize(
            [row["full_rounds"] for row in converged if row["full_rounds"] is not None]
        )
        rows.append(
            {
                "protocol": protocol_name,
                "trials": trials,
                "converged": len(converged),
                "convergence_rate": len(converged) / trials,
                "rounds_to_stabilize_mean": stats["mean"],
                "rounds_to_stabilize_max": stats["max"],
            }
        )
    return {"rows": rows, "all_converged": all(row["converged"] == trials for row in rows)}


# ----------------------------------------------------------------------
# EXP-S1: recovery from composed fault scenarios (Definition 2.1.2, dynamic)
# ----------------------------------------------------------------------
def exp_s1_scenario_recovery(
    size: int = 10,
    trials: int = 2,
    seed: int = 11,
    scenario: str = "cascade",
    protocols: Sequence[str] = ("dftno", "stno-bfs"),
    daemons: Sequence[str] = ("central", "distributed"),
) -> dict[str, object]:
    """Per-event recovery metrics for a library scenario across protocols x daemons.

    Generalizes EXP-R1's single corruption schedule: the scenario engine
    composes corruption bursts, crash/rejoin, link dynamics and daemon
    switches, and every event's re-stabilization time is measured separately.
    Runs through the campaign engine (``task_type="scenario"``), so the sweep
    shares its hash-derived seeding and can be resumed and scaled via
    ``python -m repro.campaign``.
    """
    Grid, run_grid, _, normalize_protocol = _campaign()
    grid = Grid(
        sizes=(size,),
        protocols=tuple(protocols),
        daemons=tuple(daemons),
        trials=trials,
        seed=seed,
        pair_networks=True,
        task_type="scenario",
        scenarios=(scenario,),
    )
    result = run_grid(grid)
    rows = []
    # Aggregate over the grid's deduplicated axes, not the caller's raw
    # names: protocols=("stno", "stno-bfs") is one task set, not two rows.
    for resolved in dict.fromkeys(normalize_protocol(name) for name in protocols):
        for daemon_kind in dict.fromkeys(daemons):
            bucket = [
                row
                for row in result.rows
                if row["protocol"] == resolved and row["daemon"] == daemon_kind
            ]
            recovered = sum(int(row["events_recovered"]) for row in bucket)
            applied = sum(int(row["events_applied"]) for row in bucket)
            steps = [
                row["recovery_steps"] for row in bucket if row["recovery_steps"] is not None
            ]
            fractions = [
                row["disturbed_fraction"]
                for row in bucket
                if row["disturbed_fraction"] is not None
            ]
            rows.append(
                {
                    "protocol": resolved,
                    "daemon": daemon_kind,
                    "trials": len(bucket),
                    "events_applied": applied,
                    "events_recovered": recovered,
                    "recovery_steps_mean": summarize(steps)["mean"] if steps else None,
                    "disturbed_fraction_mean": (
                        summarize(fractions)["mean"] if fractions else None
                    ),
                    "closure_violations": sum(
                        int(row["closure_violations"]) for row in bucket
                    ),
                }
            )
    return {
        "scenario": scenario,
        "rows": rows,
        "samples": [dict(row) for row in result.rows],
        "all_recovered": all(
            row["events_recovered"] == row["events_applied"] for row in rows
        ),
    }


# ----------------------------------------------------------------------
# EXP-M1: message savings across workloads through the unified API
# ----------------------------------------------------------------------
def exp_m1_msgpass_workloads(
    sizes: Sequence[int] = (8, 16, 24),
    trials: int = 2,
    seed: int = 13,
) -> dict[str, object]:
    """Orientation savings for every message-passing workload (EXP-A1, swept).

    Broadcast and DFS traversal run on random connected networks; ring leader
    election runs on rings (the only topology it is defined on).  All three
    go through the campaign engine's ``msgpass`` task type -- i.e. each task
    is a :class:`~repro.api.RunSpec` executed by :func:`repro.api.run` -- so
    the sweep is resumable and shardable like every other campaign.
    """
    Grid, run_grid, _, _ = _campaign()
    general = Grid(
        sizes=tuple(sizes),
        families=("random_connected",),
        trials=trials,
        seed=seed,
        task_type="msgpass",
        workloads=("broadcast", "traversal"),
    )
    rings = Grid(
        sizes=tuple(sizes),
        families=("ring",),
        trials=trials,
        seed=seed,
        task_type="msgpass",
        workloads=("election",),
    )
    samples = run_grid(general).rows + run_grid(rings).rows
    rows = []
    for workload in ("broadcast", "traversal", "election"):
        bucket = [row for row in samples if row["workload"] == workload]
        savings = [
            row["message_savings"] for row in bucket if row["message_savings"] is not None
        ]
        rows.append(
            {
                "workload": workload,
                "trials": len(bucket),
                "converged": sum(1 for row in bucket if row["converged"]),
                "messages_unoriented_mean": summarize(
                    [row["messages_unoriented"] for row in bucket]
                )["mean"],
                "messages_oriented_mean": summarize(
                    [row["messages_oriented"] for row in bucket]
                )["mean"],
                "message_savings_mean": summarize(savings)["mean"] if savings else None,
            }
        )
    return {
        "rows": rows,
        "samples": [dict(row) for row in samples],
        "all_converged": all(row["converged"] == row["trials"] for row in rows),
        "all_workloads_save": all(
            row["message_savings_mean"] is not None and row["message_savings_mean"] > 1.0
            for row in rows
        ),
    }


# ----------------------------------------------------------------------
# EXP-R2: daemon ablation (Chapter 5 daemon assumptions)
# ----------------------------------------------------------------------
def exp_r2_daemon_ablation(
    size: int = 16,
    trials: int = 3,
    seed: int = 9,
    daemons: Sequence[str] = ("central", "distributed", "synchronous", "adversarial"),
) -> dict[str, object]:
    """Stabilization of both protocols under the standard daemon families."""
    Grid, run_grid, _, _ = _campaign()
    # pair_networks: every daemon/protocol cell of a trial runs on the same
    # topology, so the ablation compares daemons, not random networks.
    grid = Grid(
        sizes=(size,),
        protocols=("dftno", "stno-bfs"),
        daemons=tuple(daemons),
        trials=trials,
        seed=seed,
        pair_networks=True,
    )
    result = run_grid(grid)
    rows = []
    for daemon_kind in daemons:
        for protocol_name in ("dftno", "stno-bfs"):
            bucket = [
                row
                for row in result.rows
                if row["daemon"] == daemon_kind and row["protocol"] == protocol_name
            ]
            converged = [row for row in bucket if row["converged"]]
            rows.append(
                {
                    "daemon": daemon_kind,
                    "protocol": protocol_name,
                    "trials": len(bucket),
                    "converged": len(converged),
                    "steps_mean": summarize(
                        [row["full_steps"] for row in converged if row["full_steps"] is not None]
                    )["mean"],
                    "rounds_mean": summarize(
                        [row["full_rounds"] for row in converged if row["full_rounds"] is not None]
                    )["mean"],
                }
            )
    return {"rows": rows, "all_converged": all(row["converged"] == row["trials"] for row in rows)}


__all__ = [
    "exp_t1_dftno_stabilization",
    "exp_t2_stno_stabilization",
    "exp_t3_space",
    "exp_f1_figure_3_1_1",
    "exp_f2_figure_4_1_1",
    "exp_f3_chordal_properties",
    "exp_a1_message_complexity",
    "exp_a2_dfs_equivalence",
    "exp_m1_msgpass_workloads",
    "exp_r1_self_stabilization",
    "exp_r2_daemon_ablation",
    "exp_s1_scenario_recovery",
]
