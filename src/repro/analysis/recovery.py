"""Recovery metrics for fault-injection scenarios.

Self-stabilization (Definition 2.1.2) is a *recovery* property: after any
transient fault the system returns to a legitimate configuration (convergence)
and stays there (closure).  The scenario engine
(:mod:`repro.scenarios`) exercises that claim event by event; this module
defines what is measured per event and how a whole scenario execution is
condensed into one flat result row:

* :func:`disturbed_nodes` / :func:`disturbed_fraction` -- which processors an
  event actually touched, optionally restricted to the orientation variables
  (``no_eta`` / ``no_pi``) the specification is stated over;
* :class:`EventRecovery` -- one event's outcome: disturbance, steps/rounds to
  re-stabilize, closure violations observed while waiting for the next event;
* :class:`ScenarioReport` -- the whole execution, with :meth:`ScenarioReport.as_row`
  producing the flat dictionary the campaign store persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.analysis.reporting import summarize
from repro.runtime.configuration import Configuration


def disturbed_nodes(
    before: Configuration,
    after: Configuration,
    variables: Iterable[str] | None = None,
) -> tuple[int, ...]:
    """Processors whose (watched) variables differ between two configurations.

    ``variables`` restricts the comparison (e.g. to the orientation variables
    ``no_eta`` and ``no_pi``); ``None`` compares every variable.  Variables
    present on only one side count as disturbed -- a topology change can alter
    which variables a processor even declares.
    """
    watched = set(variables) if variables is not None else None
    touched: list[int] = []
    for node, changes in sorted(before.diff(after).items()):
        if watched is None or watched.intersection(changes):
            touched.append(node)
    return tuple(touched)


def disturbed_fraction(
    before: Configuration,
    after: Configuration,
    n: int,
    variables: Iterable[str] | None = None,
) -> float:
    """Fraction of the ``n`` processors whose (watched) variables changed."""
    if n <= 0:
        return 0.0
    return len(disturbed_nodes(before, after, variables)) / n


@dataclass(frozen=True)
class EventRecovery:
    """What one scenario event did and how the system recovered from it.

    Attributes
    ----------
    index / kind / description:
        Position of the event in the scenario and what it was.
    applied:
        ``False`` when the event had no legal target (e.g. a link removal on a
        tree, where every link is a bridge) and was skipped.
    disturbed / disturbed_fraction:
        Processors whose orientation variables the event changed, as a count
        and as a fraction of ``n``.
    broke_legitimacy:
        Whether the configuration right after the event violated the
        specification (small bursts can leave it intact).
    recovered:
        Whether the protocol re-stabilized within the step budget.
    deadlocked:
        ``True`` when the recovery attempt *terminated* -- no processor had
        an enabled action -- while still illegitimate.  Distinguishes "the
        system is provably stuck" from "the step budget ran out"; a genuine
        self-stabilizing protocol should never exhibit it.
    recovery_steps / recovery_rounds:
        Computation steps / asynchronous rounds from the event to the first
        step after which legitimacy held for good (``None`` if it never did).
    closure_violations:
        Steps *before* this event (since the previous recovery) at which the
        legitimacy predicate did not hold -- the empirical closure check;
        anything above zero means the protocol left the legitimate set without
        being faulted.  Counted only when the previous phase actually
        re-stabilized (an unrecovered fault is a convergence failure, not a
        closure one).
    """

    index: int
    kind: str
    description: str
    applied: bool
    disturbed: int
    disturbed_fraction: float
    broke_legitimacy: bool
    recovered: bool
    recovery_steps: int | None
    recovery_rounds: int | None
    closure_violations: int
    deadlocked: bool = False

    def as_row(self) -> dict[str, object]:
        """Flat per-event dictionary (used by reports and the walkthrough)."""
        return {
            "event": self.index,
            "kind": self.kind,
            "description": self.description,
            "applied": self.applied,
            "disturbed": self.disturbed,
            "disturbed_fraction": round(self.disturbed_fraction, 4),
            "broke_legitimacy": self.broke_legitimacy,
            "recovered": self.recovered,
            "deadlocked": self.deadlocked,
            "recovery_steps": self.recovery_steps,
            "recovery_rounds": self.recovery_rounds,
            "closure_violations": self.closure_violations,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "EventRecovery":
        """Rebuild an event record from its :meth:`as_row` dictionary.

        This is what lets stored campaign rows feed
        :func:`aggregate_event_recoveries` long after the execution: the
        scenario task type persists ``event_records`` per run, and the
        ``--per-event`` report round-trips them back into event objects.
        """
        return cls(
            index=int(row["event"]),  # type: ignore[arg-type]
            kind=str(row["kind"]),
            description=str(row.get("description", "")),
            applied=bool(row["applied"]),
            disturbed=int(row["disturbed"]),  # type: ignore[arg-type]
            disturbed_fraction=float(row["disturbed_fraction"]),  # type: ignore[arg-type]
            broke_legitimacy=bool(row["broke_legitimacy"]),
            recovered=bool(row["recovered"]),
            recovery_steps=(
                None if row.get("recovery_steps") is None else int(row["recovery_steps"])  # type: ignore[arg-type]
            ),
            recovery_rounds=(
                None if row.get("recovery_rounds") is None else int(row["recovery_rounds"])  # type: ignore[arg-type]
            ),
            closure_violations=int(row.get("closure_violations", 0)),  # type: ignore[arg-type]
            deadlocked=bool(row.get("deadlocked", False)),
        )


@dataclass(frozen=True)
class ScenarioReport:
    """Outcome of one scenario execution.

    ``converged`` requires the initial stabilization *and* every applied
    event's recovery to have succeeded -- the scenario-level analogue of a
    stabilization run's ``converged`` flag, so campaign aggregation treats
    both task types uniformly.
    """

    scenario: str
    protocol: str
    network: str
    n: int
    edges: int
    daemon: str
    seed: int
    initial_converged: bool
    initial_steps: int | None
    initial_rounds: int | None
    events: tuple[EventRecovery, ...] = field(default_factory=tuple)
    total_steps: int = 0
    total_rounds: int = 0

    @property
    def applied_events(self) -> tuple[EventRecovery, ...]:
        """The events that found a legal target and actually fired."""
        return tuple(event for event in self.events if event.applied)

    @property
    def recovered_events(self) -> int:
        """How many applied events the protocol recovered from."""
        return sum(1 for event in self.applied_events if event.recovered)

    @property
    def converged(self) -> bool:
        """Initial stabilization succeeded and every applied event recovered."""
        return self.initial_converged and all(
            event.recovered for event in self.applied_events
        )

    def as_row(self) -> dict[str, object]:
        """One flat result row summarizing the execution across its events.

        ``recovery_steps`` / ``recovery_rounds`` are means over the recovered
        events (plus an explicit ``recovery_steps_max``), ``disturbed_fraction``
        the mean disturbance of the applied events, and ``closure_violations``
        the total across all inter-event windows.  ``event_records`` persists
        every per-event record verbatim, so stored rows can be re-aggregated
        event by event (:meth:`from_row`, ``repro-campaign report
        --per-event``) without re-running the scenario.
        """
        recovered = [event for event in self.applied_events if event.recovered]
        steps = [e.recovery_steps for e in recovered if e.recovery_steps is not None]
        rounds = [e.recovery_rounds for e in recovered if e.recovery_rounds is not None]
        disturbed = [e.disturbed_fraction for e in self.applied_events]
        summary = summarize(steps)
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "network": self.network,
            "n": self.n,
            "edges": self.edges,
            "parameter": self.n,
            "daemon": self.daemon,
            "seed": self.seed,
            "converged": self.converged,
            "initial_steps": self.initial_steps,
            "initial_rounds": self.initial_rounds,
            "events": len(self.events),
            "events_applied": len(self.applied_events),
            "events_recovered": self.recovered_events,
            "events_deadlocked": sum(1 for e in self.events if e.deadlocked),
            "recovery_steps": summary["mean"] if steps else None,
            "recovery_steps_max": summary["max"] if steps else None,
            "recovery_rounds": summarize(rounds)["mean"] if rounds else None,
            "disturbed_fraction": (
                summarize(disturbed)["mean"] if disturbed else None
            ),
            "closure_violations": sum(e.closure_violations for e in self.events),
            "total_steps": self.total_steps,
            "total_rounds": self.total_rounds,
            "event_records": self.event_rows(),
        }

    def event_rows(self) -> list[dict[str, object]]:
        """Per-event table (what the walkthrough example and benchmark print)."""
        return [event.as_row() for event in self.events]

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "ScenarioReport":
        """Rebuild a report (events included) from a stored campaign row.

        Only rows that carry ``event_records`` round-trip; older stores (or
        aggregates stripped of the records) raise a ``ValueError`` so callers
        can skip them explicitly instead of silently aggregating nothing.
        """
        records = row.get("event_records")
        if not isinstance(records, list):
            raise ValueError("row carries no per-event records (pre-API store?)")
        events = tuple(EventRecovery.from_row(record) for record in records)
        return cls(
            scenario=str(row["scenario"]),
            protocol=str(row["protocol"]),
            network=str(row["network"]),
            n=int(row["n"]),  # type: ignore[arg-type]
            edges=int(row["edges"]),  # type: ignore[arg-type]
            daemon=str(row["daemon"]),
            seed=int(row.get("seed", -1)),  # type: ignore[arg-type]
            # converged == initial_converged and every applied event
            # recovered; the factorization below reproduces initial_converged
            # exactly for rows whose events all recovered, and errs on the
            # side of the stored flag otherwise.
            initial_converged=bool(row.get("converged"))
            or bool(row.get("initial_steps") is not None),
            initial_steps=(
                None if row.get("initial_steps") is None else int(row["initial_steps"])  # type: ignore[arg-type]
            ),
            initial_rounds=(
                None if row.get("initial_rounds") is None else int(row["initial_rounds"])  # type: ignore[arg-type]
            ),
            events=events,
            total_steps=int(row.get("total_steps", 0)),  # type: ignore[arg-type]
            total_rounds=int(row.get("total_rounds", 0)),  # type: ignore[arg-type]
        )


def aggregate_event_recoveries(
    reports: Sequence["ScenarioReport"] | Iterable[object],
) -> list[dict[str, object]]:
    """Per-event-kind aggregation across many scenario executions.

    Groups every applied event of every report by its ``kind`` and averages
    the recovery metrics -- the "per-event recovery-time aggregates" view.
    Accepts anything exposing ``applied_events`` (reports rebuilt from stored
    rows via :meth:`ScenarioReport.from_row`, live reports, or a
    :class:`~repro.api.RecoveryObserver`).
    """
    groups: dict[str, list[EventRecovery]] = {}
    for report in reports:
        for event in report.applied_events:
            groups.setdefault(event.kind, []).append(event)
    out: list[dict[str, object]] = []
    for kind in sorted(groups):
        bucket = groups[kind]
        recovered = [e for e in bucket if e.recovered]
        steps = [e.recovery_steps for e in recovered if e.recovery_steps is not None]
        out.append(
            {
                "kind": kind,
                "events": len(bucket),
                "recovered": len(recovered),
                "recovery_steps_mean": summarize(steps)["mean"] if steps else None,
                "recovery_steps_max": summarize(steps)["max"] if steps else None,
                "disturbed_fraction_mean": summarize(
                    [e.disturbed_fraction for e in bucket]
                )["mean"],
            }
        )
    return out


__all__ = [
    "EventRecovery",
    "ScenarioReport",
    "aggregate_event_recoveries",
    "disturbed_fraction",
    "disturbed_nodes",
]
