"""Plain-text tables and simple statistics for the experiment harness.

The benchmarks print the same rows/series the thesis's claims are about, so
everything here is dependency-free (no plotting): aligned text tables, a
least-squares linear fit to confirm O(n)/O(h) shapes, and small summary
helpers.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render dictionaries as an aligned, pipe-separated text table.

    ``columns`` fixes the column order (default: keys of the first row).
    Floats are formatted with ``float_format``; everything else with ``str``.
    """
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(value.ljust(width) for value, width in zip(line, widths)) for line in rendered
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> dict[str, float | None]:
    """Least-squares fit ``y ~ slope * x + intercept`` with the R^2 of the fit.

    Used to confirm the *shape* of the complexity claims: stabilization steps
    of DFTNO against ``n`` (EXP-T1) and rounds of STNO against ``h`` (EXP-T2)
    should fit a line with high R^2.

    Degenerate series -- fewer than 2 points, or zero variance in ``xs`` --
    have no defined slope; they yield ``{"slope": None, ...}`` instead of
    raising, so sweeps that collapse to a single point (e.g. a one-size
    campaign) still aggregate cleanly.  Mismatched series lengths are a
    programming error and still raise :class:`ValueError`.
    """
    if len(xs) != len(ys):
        raise ValueError("linear_fit needs two series of the same length")
    degenerate = {"slope": None, "intercept": None, "r_squared": None}
    if len(xs) < 2:
        return degenerate
    n = float(len(xs))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return degenerate
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return {"slope": slope, "intercept": intercept, "r_squared": r_squared}


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Mean, standard deviation, minimum and maximum of a series."""
    data = list(values)
    if not data:
        return {"count": 0, "mean": math.nan, "std": math.nan, "min": math.nan, "max": math.nan}
    mean = sum(data) / len(data)
    variance = sum((value - mean) ** 2 for value in data) / len(data)
    return {
        "count": len(data),
        "mean": mean,
        "std": math.sqrt(variance),
        "min": min(data),
        "max": max(data),
    }


def ratio(numerator: float, denominator: float) -> float:
    """A safe ratio (``inf`` when the denominator is zero)."""
    return math.inf if denominator == 0 else numerator / denominator


__all__ = ["format_table", "linear_fit", "summarize", "ratio"]
