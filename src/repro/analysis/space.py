"""Space accounting against the thesis's O(Delta * log N) bound.

Section 3.2.3, Section 4.2.3 and Chapter 5 compare the two protocols by the
number of bits of locally shared memory per processor:

* both orientation layers use O(Delta * log N) bits (edge labels dominate);
* STNO additionally pays O(Delta * log N) bits for the spanning-tree layer's
  child bookkeeping, whereas DFTNO's token layer only needs O(log N) bits.

The functions here measure those numbers exactly from the protocols' variable
declarations so the benchmark table can show both the measured values and the
bound's shape.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.graphs.network import RootedNetwork
from repro.runtime.metrics import space_summary, theoretical_orientation_bits
from repro.runtime.variables import bits_for_values


def orientation_space_row(network: RootedNetwork) -> dict[str, object]:
    """One row of the EXP-T3 table: measured bits for DFTNO and STNO on ``network``."""
    dftno = build_dftno()
    stno_bfs = build_stno(tree="bfs")

    dftno_summary = space_summary(dftno, network)
    stno_summary = space_summary(stno_bfs, network)

    dftno_layers = dftno_summary["per_layer"]
    stno_layers = stno_summary["per_layer"]

    log_n = bits_for_values(network.n)
    return {
        "network": network.name,
        "n": network.n,
        "max_degree": network.max_degree,
        "log_n_bits": log_n,
        "bound_delta_log_n": theoretical_orientation_bits(network),
        "dftno_overlay_max_bits": dftno_layers["dftno"]["max_bits_per_node"],
        "dftno_substrate_max_bits": dftno_layers["dftc"]["max_bits_per_node"],
        "dftno_total_max_bits": dftno_summary["max_bits_per_node"],
        "stno_overlay_max_bits": stno_layers["stno"]["max_bits_per_node"],
        "stno_substrate_max_bits": stno_layers["bfstree"]["max_bits_per_node"],
        "stno_total_max_bits": stno_summary["max_bits_per_node"],
    }


def space_rows(networks: Sequence[RootedNetwork]) -> list[dict[str, object]]:
    """EXP-T3: the space table over a collection of topologies."""
    return [orientation_space_row(network) for network in networks]


__all__ = ["orientation_space_row", "space_rows"]
