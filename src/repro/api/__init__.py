"""The unified experiment API: one declarative spec, one entry point.

Every simulation this repository can run -- daemon-step stabilization
measurements, fault-injection scenarios, synchronous message-passing
workloads -- is described by a single declarative, serializable
:class:`RunSpec` and executed through a single engine-agnostic entry point:

>>> from repro.api import NetworkSpec, RunSpec, run
>>> spec = RunSpec(
...     engine="scheduler",
...     protocol="dftno",
...     network=NetworkSpec(family="random_connected", size=12, seed=3),
...     daemon="distributed",
...     seed=7,
... )
>>> result = run(spec)
>>> result.converged
True
>>> result.row["protocol"]
'dftno'

Specs round-trip through plain dictionaries (``spec.to_dict()`` /
``RunSpec.from_dict``) and carry a stable :attr:`RunSpec.canonical_hash`, so
they can be stored, shipped to workers, and deduplicated.  Instrumentation is
pluggable: pass :class:`Observer` implementations to :func:`run` to receive
``on_step`` / ``on_round`` / ``on_event`` / ``on_converged`` notifications
from whichever engine executes the spec.

The campaign engine (:mod:`repro.campaign`) builds on this API: its task
types are thin adapters from a campaign ``TaskSpec`` to a ``RunSpec``, and
sweeps, stores and resume logic layer on top rather than being baked into
each experiment.
"""

from repro.api.engines import (
    Engine,
    FullScanSchedulerEngine,
    MsgpassEngine,
    ScenarioEngine,
    SchedulerEngine,
    ShardedSchedulerEngine,
    engine_names,
    get_engine,
    register_engine,
    run,
)
from repro.api.observers import (
    CallbackObserver,
    MetricsObserver,
    Observer,
    ProgressObserver,
    RecoveryObserver,
    TraceObserver,
)
from repro.api.spec import (
    ENGINE_NAMES,
    SCHEDULER_ENGINES,
    NetworkSpec,
    RunResult,
    RunSpec,
    StopSpec,
    WORKLOADS,
)

__all__ = [
    "ENGINE_NAMES",
    "SCHEDULER_ENGINES",
    "WORKLOADS",
    "Engine",
    "FullScanSchedulerEngine",
    "MsgpassEngine",
    "NetworkSpec",
    "Observer",
    "CallbackObserver",
    "MetricsObserver",
    "ProgressObserver",
    "RecoveryObserver",
    "TraceObserver",
    "RunResult",
    "RunSpec",
    "ScenarioEngine",
    "SchedulerEngine",
    "ShardedSchedulerEngine",
    "StopSpec",
    "engine_names",
    "get_engine",
    "register_engine",
    "run",
]
