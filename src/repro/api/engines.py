"""The engines behind :func:`repro.api.run` and the registry that names them.

An :class:`Engine` turns one :class:`~repro.api.spec.RunSpec` into one
:class:`~repro.api.spec.RunResult`, threading the caller's observers into the
underlying execution machinery:

* :class:`SchedulerEngine` (``"scheduler"``) -- the daemon-step
  :class:`~repro.runtime.scheduler.Scheduler`, measured through the layered
  stabilization harness (:mod:`repro.analysis.convergence`), producing
  exactly the rows the ``stabilize`` campaign task type stores;
* :class:`ScenarioEngine` (``"scenario"``) -- the
  :class:`~repro.scenarios.runner.ScenarioRunner`, producing scenario
  recovery rows;
* :class:`MsgpassEngine` (``"msgpass"``) -- the synchronous message-passing
  simulator running a workload (broadcast, traversal or ring election) with
  and without the orientation, producing the message-savings rows.

New engines (an async scheduler, a sharded backend) register with
:func:`register_engine` and become reachable through the same
``run(RunSpec(engine="..."))`` entry point without touching any caller.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, Sequence

from repro.api.spec import RunResult, RunSpec
from repro.obs.health import HealthMonitor
from repro.obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from repro.obs.profile import maybe_profile
from repro.obs.spans import tracer_from_env
from repro.obs.telemetry import ConvergenceTelemetryObserver
from repro.runtime.observers import Observer


class Engine(ABC):
    """Executes :class:`~repro.api.spec.RunSpec` objects of one kind."""

    #: The :attr:`RunSpec.engine` value this engine serves.
    name: str = "engine"

    @abstractmethod
    def execute(
        self,
        spec: RunSpec,
        observers: Sequence[Observer] = (),
        instrumentation: Instrumentation | None = None,
    ) -> RunResult:
        """Run ``spec`` to completion and return the uniform result envelope."""


_ENGINES: Dict[str, Engine] = {}


def register_engine(engine: Engine) -> Engine:
    """Make ``engine`` reachable through ``RunSpec(engine=engine.name)``."""
    if not engine.name:
        raise ValueError("an engine needs a non-empty name")
    if engine.name in _ENGINES and _ENGINES[engine.name] is not engine:
        raise ValueError(f"engine {engine.name!r} is already registered")
    _ENGINES[engine.name] = engine
    return engine


def engine_names() -> tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_ENGINES))


def get_engine(name: str) -> Engine:
    """The engine registered under ``name``."""
    if name not in _ENGINES and name == "scheduler-replay":
        # Registered lazily: repro.replay imports this module for the Engine
        # base class, so an eager import here would be circular.  Importing
        # the module registers the engine as a side effect.
        import repro.replay.engine  # noqa: F401
    if name not in _ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; choose from {', '.join(engine_names())}"
        )
    return _ENGINES[name]


def _coerce_telemetry(
    telemetry: "bool | int | ConvergenceTelemetryObserver | None",
) -> ConvergenceTelemetryObserver | None:
    """``telemetry=`` argument -> observer (``True`` default stride, int = stride)."""
    if telemetry is None or telemetry is False:
        return None
    if isinstance(telemetry, ConvergenceTelemetryObserver):
        return telemetry
    if telemetry is True:
        return ConvergenceTelemetryObserver()
    if isinstance(telemetry, int):
        return ConvergenceTelemetryObserver(stride=telemetry)
    raise TypeError(f"telemetry must be bool, int or observer, got {telemetry!r}")


def _recorder_for(spec: RunSpec):
    """The :class:`~repro.obs.recorder.FlightRecorder` ``spec.record`` asks for.

    ``True`` -> ``<DEFAULT_LOG_DIR>/run-<hash>.flight.jsonl``; a directory
    string keeps the same file name inside it; a path ending in ``.jsonl`` is
    used verbatim.  The canonical hash keys the file, so re-recording the
    same spec overwrites the (deterministically identical) previous log.
    """
    from pathlib import Path

    from repro.obs.recorder import DEFAULT_LOG_DIR, FlightRecorder

    target = DEFAULT_LOG_DIR if spec.record is True else str(spec.record)
    path = Path(target)
    if path.suffix != ".jsonl":
        path = path / f"run-{spec.canonical_hash}.flight.jsonl"
    return FlightRecorder(path, spec=spec)


def _coerce_health(
    health: "bool | int | HealthMonitor | None",
) -> HealthMonitor | None:
    """``health=`` argument -> monitor (``True`` defaults, int = round budget)."""
    if health is None or health is False:
        return None
    if isinstance(health, HealthMonitor):
        return health
    if health is True:
        return HealthMonitor()
    if isinstance(health, int):
        return HealthMonitor(round_budget=health)
    raise TypeError(f"health must be bool, int or HealthMonitor, got {health!r}")


def run(
    spec: RunSpec,
    observers: Sequence[Observer] = (),
    instrumentation: Instrumentation | None = None,
    telemetry: "bool | int | ConvergenceTelemetryObserver | None" = None,
    health: "bool | int | HealthMonitor | None" = None,
) -> RunResult:
    """Execute ``spec`` on the engine it names -- the single entry point.

    ``observers`` receive the engine's step/round/event/convergence
    notifications; pass a
    :class:`~repro.runtime.observers.ProgressObserver` for progress lines, a
    :class:`~repro.runtime.observers.TraceObserver` to keep a trace, or any
    custom :class:`~repro.runtime.observers.Observer`.

    ``instrumentation`` attaches a :class:`~repro.obs.Instrumentation`
    registry; the engine's phase timers and counters land in the returned
    result's ``perf`` summary (also embedded in ``row["perf"]``, which is how
    campaign stores persist it).  Two environment hooks work without touching
    the call site: ``REPRO_TRACE=<file.jsonl>`` attaches a span tracer (and,
    when no registry was passed, creates one so the run -> round -> step
    spans have somewhere to live), and ``REPRO_PROFILE=<dir>`` dumps a
    cProfile of the whole run.

    ``telemetry`` samples the protocol-health time-series: ``True`` for the
    default stride, an ``int`` for an explicit stride, or a pre-built
    :class:`~repro.obs.ConvergenceTelemetryObserver`.  The snapshot lands in
    ``RunResult.telemetry`` and ``row["telemetry"]``.  ``health`` likewise
    attaches a :class:`~repro.obs.HealthMonitor` stall/budget watchdog
    (``True`` for the derived round budget, an ``int`` for an explicit one);
    its snapshot lands in ``RunResult.health`` and ``row["health"]``.  Both
    ride the observer stream only -- they never perturb the execution, and a
    run without them pays nothing.

    ``spec.record`` attaches a :class:`~repro.obs.recorder.FlightRecorder`:
    the run's causal event log is written (even when the run crashes) and the
    row -- plus every health anomaly in it -- gains a ``flight_log`` pointer,
    replayable with ``repro-replay`` or ``engine="scheduler-replay"``.
    """
    telemetry_observer = _coerce_telemetry(telemetry)
    health_monitor = _coerce_health(health)
    if telemetry_observer is not None or health_monitor is not None:
        extra = [
            obs
            for obs in (telemetry_observer, health_monitor)
            if obs is not None and obs not in tuple(observers)
        ]
        observers = tuple(observers) + tuple(extra)
    recorder = None
    if spec.record:
        recorder = _recorder_for(spec)
        observers = tuple(observers) + (recorder,)
    owns_tracer = False
    if instrumentation is None:
        tracer = tracer_from_env()
        if tracer is not None:
            instrumentation = Instrumentation(tracer=tracer)
            owns_tracer = True
    engine = get_engine(spec.engine)
    instr = instrumentation
    enabled = instr is not None and instr.enabled
    tracer = instr.tracer if enabled else None
    try:
        with maybe_profile(f"{spec.engine}-{spec.canonical_hash}"):
            run_span = None
            if tracer is not None:
                run_span = tracer.span(
                    "run", kind="run", engine=spec.engine, spec=spec.canonical_hash
                )
                tracer.current_run = run_span
            try:
                result = engine.execute(spec, observers=observers, instrumentation=instr)
            finally:
                if tracer is not None:
                    if tracer.current_round is not None:
                        tracer.current_round.close()
                        tracer.current_round = None
                    run_span.close()
                    tracer.current_run = None
                    if owns_tracer:
                        tracer.close()
    finally:
        # Close even on failure: a log of the crashed prefix is precisely
        # what the replay tooling exists to dissect.
        if recorder is not None:
            recorder.close()
    if enabled:
        summary = instr.summary()
        result.row["perf"] = summary
        result = replace(result, perf=summary)
    if telemetry_observer is not None:
        snapshot = telemetry_observer.snapshot()
        result.row["telemetry"] = snapshot
        result = replace(result, telemetry=snapshot)
    if health_monitor is not None:
        snapshot = health_monitor.snapshot()
        result.row["health"] = snapshot
        result = replace(result, health=snapshot)
    if recorder is not None:
        # Every consumer of the row -- and every health anomaly inside it --
        # can point straight at the replayable evidence.
        log_path = str(recorder.path)
        result.row["flight_log"] = log_path
        health_blob = result.row.get("health")
        if isinstance(health_blob, dict):
            health_blob["flight_log"] = log_path
            for anomaly in health_blob.get("anomalies") or ():
                if isinstance(anomaly, dict):
                    anomaly["flight_log"] = log_path
    return result


# ----------------------------------------------------------------------
# The daemon-step stabilization engine
# ----------------------------------------------------------------------
class SchedulerEngine(Engine):
    """Layered stabilization measurement on the daemon-step scheduler.

    The row is a :class:`~repro.analysis.convergence.StabilizationSample`
    flattened by ``as_row`` -- byte-identical to what the pre-API
    ``stabilize`` campaign task type produced, which is what keeps existing
    campaign stores resumable through the new entry point.

    The default engine runs the scheduler's incremental enabled-set core;
    :class:`FullScanSchedulerEngine` (``"scheduler-fullscan"``) runs the
    historical full guard scan instead.  Both produce bit-identical step
    records, metrics and final configurations for the same spec -- the
    equivalence property test holds them to that.
    """

    name = "scheduler"
    #: Whether the underlying scheduler maintains the incremental enabled-set.
    incremental = True

    def _scheduler_kwargs(self, spec: RunSpec) -> dict[str, object]:
        """How the measurement harness should build its scheduler.

        ``spec.debug["check_guard_locality"]`` arms the per-guard read
        tracker (:class:`~repro.errors.GuardLocalityError` on violation)
        without touching the ``REPRO_DEBUG_GUARDS`` environment.
        """
        if spec.debug and spec.debug.get("check_guard_locality"):
            from functools import partial

            from repro.runtime.scheduler import Scheduler

            return {
                "scheduler_factory": partial(
                    Scheduler,
                    incremental=self.incremental,
                    check_guard_locality=True,
                )
            }
        return {"incremental": self.incremental}

    def execute(
        self,
        spec: RunSpec,
        observers: Sequence[Observer] = (),
        instrumentation: Instrumentation | None = None,
    ) -> RunResult:
        from repro.analysis.convergence import measure_dftno, measure_stno
        from repro.runtime.daemon import make_daemon

        network = spec.network.build()
        daemon = make_daemon(spec.daemon)
        kwargs = self._scheduler_kwargs(spec)
        if spec.protocol == "dftno":
            sample = measure_dftno(
                network,
                daemon=daemon,
                seed=spec.seed,
                max_steps=spec.stop.max_steps,
                parameter=spec.parameter,
                after_substrate=spec.stop.after_substrate,
                observers=observers,
                instrumentation=instrumentation,
                **kwargs,
            )
        else:
            sample = measure_stno(
                network,
                tree=spec.protocol.split("-", 1)[1],
                daemon=daemon,
                seed=spec.seed,
                max_steps=spec.stop.max_steps,
                parameter=spec.parameter,
                after_substrate=spec.stop.after_substrate,
                observers=observers,
                instrumentation=instrumentation,
                **kwargs,
            )
        return RunResult(engine=self.name, spec=spec, row=sample.as_row(), report=sample)


class FullScanSchedulerEngine(SchedulerEngine):
    """The differential-testing twin of :class:`SchedulerEngine`.

    Same measurement, but every step rescans all ``n`` processors' guards the
    way the scheduler historically did.  Registered so equivalence checks
    (and suspicious campaign rows) can re-run any spec on the reference path
    by swapping ``engine="scheduler"`` for ``engine="scheduler-fullscan"``.
    """

    name = "scheduler-fullscan"
    incremental = False


class VectorizedSchedulerEngine(SchedulerEngine):
    """The batch-kernel twin of :class:`SchedulerEngine`.

    Same measurement, executed by
    :class:`~repro.runtime.vectorized.VectorizedScheduler`: under the
    synchronous daemon, protocols whose layers register
    :class:`~repro.runtime.actions.BatchAction` kernels evaluate guards and
    compute writes as whole numpy columns; everything else (non-synchronous
    daemons, kernel-less layers, unencodable values) falls back to the
    incremental per-node path.  Rows and spec hashes are byte-identical to
    the ``scheduler`` engine's -- the equivalence suite holds all four
    scheduler engines together.

    Requires numpy (``pip install .[vectorized]``); requesting the engine
    without it raises :class:`~repro.errors.EngineUnavailableError`.
    """

    name = "scheduler-vectorized"

    def _scheduler_kwargs(self, spec: RunSpec) -> dict[str, object]:
        from functools import partial

        from repro.runtime.arrayview import HAVE_NUMPY
        from repro.runtime.vectorized import VectorizedScheduler

        if not HAVE_NUMPY:
            from repro.errors import EngineUnavailableError

            raise EngineUnavailableError(
                "engine 'scheduler-vectorized' needs numpy, which is not "
                "installed; install the optional extra with "
                "'pip install .[vectorized]' or use engine='scheduler'"
            )
        kwargs: dict[str, object] = {}
        if spec.debug and spec.debug.get("check_guard_locality"):
            kwargs["check_guard_locality"] = True
        return {"scheduler_factory": partial(VectorizedScheduler, **kwargs)}


class ShardedSchedulerEngine(SchedulerEngine):
    """The multi-process twin of :class:`SchedulerEngine`.

    Same measurement, executed by :class:`~repro.shard.ShardedScheduler`: the
    network is partitioned into ``spec.shards`` node blocks, each block's
    guard evaluation and action execution runs in a forked worker process,
    and only the dirty frontier crossing shard boundaries is exchanged
    between rounds.  The cross-shard daemon is the run's own seeded daemon
    selecting from the globally merged enabled set, so rows are
    bit-identical to the ``scheduler`` engine's -- the extended equivalence
    suite holds all three scheduler engines together.
    """

    name = "scheduler-sharded"

    def _scheduler_kwargs(self, spec: RunSpec) -> dict[str, object]:
        from functools import partial

        from repro.shard import ShardedScheduler

        kwargs: dict[str, object] = {
            "shards": spec.shards or 2,
            "partition": spec.partition or "bfs",
        }
        if spec.debug and spec.debug.get("check_guard_locality"):
            # Reaches the forked shard workers through the worker factory.
            kwargs["check_guard_locality"] = True
        return {"scheduler_factory": partial(ShardedScheduler, **kwargs)}


# ----------------------------------------------------------------------
# The fault-injection scenario engine
# ----------------------------------------------------------------------
class ScenarioEngine(Engine):
    """Scenario execution with per-event recovery measurement."""

    name = "scenario"

    def execute(
        self,
        spec: RunSpec,
        observers: Sequence[Observer] = (),
        instrumentation: Instrumentation | None = None,
    ) -> RunResult:
        from repro.runtime.daemon import make_daemon
        from repro.scenarios.library import build_scenario
        from repro.scenarios.runner import ScenarioRunner

        runner = ScenarioRunner(
            spec.network.build(),
            build_protocol(spec.protocol),
            build_scenario(spec.scenario),
            daemon=make_daemon(spec.daemon),
            seed=spec.seed,
            phase_budget=spec.stop.max_steps,
            observers=observers,
            instrumentation=instrumentation,
        )
        report = runner.run()
        return RunResult(engine=self.name, spec=spec, row=report.as_row(), report=report)


# ----------------------------------------------------------------------
# The synchronous message-passing engine
# ----------------------------------------------------------------------
class MsgpassEngine(Engine):
    """Oriented-vs-unoriented message complexity of one workload.

    The orientation is the centralized reference (the protocols' fixed
    point), so the row isolates what the *orientation* is worth to the
    workload, independent of how it was computed.
    """

    name = "msgpass"

    def execute(
        self,
        spec: RunSpec,
        observers: Sequence[Observer] = (),
        instrumentation: Instrumentation | None = None,
    ) -> RunResult:
        from repro.core.baseline import centralized_orientation
        from repro.sod.election import ring_election_oriented, ring_election_unoriented
        from repro.sod.traversal import (
            broadcast_with_sod,
            broadcast_without_sod,
            dfs_traversal_with_sod,
            dfs_traversal_without_sod,
        )

        instr = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        started = time.perf_counter() if instr.enabled else 0.0
        network = spec.network.build()
        orientation = centralized_orientation(network)
        if spec.workload == "broadcast":
            plain = broadcast_without_sod(network, observers=observers)
            oriented = broadcast_with_sod(network, orientation, observers=observers)
            converged = plain.complete and oriented.complete
        elif spec.workload == "traversal":
            plain = dfs_traversal_without_sod(network, observers=observers)
            oriented = dfs_traversal_with_sod(network, orientation, observers=observers)
            converged = plain.complete and oriented.complete
        else:  # election (spec validation guarantees a ring)
            plain = ring_election_unoriented(network, observers=observers)
            oriented = ring_election_oriented(network, orientation, observers=observers)
            converged = plain.leader_identifier is not None

        row: dict[str, object] = {
            "workload": spec.workload,
            "network": network.name,
            "n": network.n,
            "edges": network.num_edges(),
            "parameter": spec.parameter if spec.parameter is not None else spec.network.size,
            "converged": converged,
            "messages_unoriented": plain.messages,
            "messages_oriented": oriented.messages,
            "message_savings": (
                plain.messages / oriented.messages if oriented.messages else None
            ),
            "rounds_unoriented": plain.rounds,
            "rounds_oriented": oriented.rounds,
        }
        if instr.enabled:
            # One engine-level phase: the synchronous simulator has no daemon
            # step loop to decompose, so the whole paired workload is the unit.
            instr.phase_time("workload_exec", time.perf_counter() - started)
            instr.count("messages_sent", plain.messages + oriented.messages)
            instr.count(
                "rounds_completed",
                (plain.rounds or 0) + (oriented.rounds or 0),
            )
        return RunResult(
            engine=self.name,
            spec=spec,
            row=row,
            report={"unoriented": plain, "oriented": oriented},
        )


def build_protocol(name: str):
    """The protocol stack behind a normalized protocol name.

    The single place the ``"dftno"`` / ``"stno-<tree>"`` naming is decoded;
    the campaign layer's ``build_task_protocol`` delegates here.
    """
    from repro.core.dftno import build_dftno
    from repro.core.stno import build_stno

    if name == "dftno":
        return build_dftno()
    return build_stno(tree=name.split("-", 1)[1])


register_engine(SchedulerEngine())
register_engine(FullScanSchedulerEngine())
register_engine(VectorizedSchedulerEngine())
register_engine(ShardedSchedulerEngine())
register_engine(ScenarioEngine())
register_engine(MsgpassEngine())


__all__ = [
    "Engine",
    "FullScanSchedulerEngine",
    "MsgpassEngine",
    "ScenarioEngine",
    "SchedulerEngine",
    "ShardedSchedulerEngine",
    "VectorizedSchedulerEngine",
    "build_protocol",
    "engine_names",
    "get_engine",
    "register_engine",
    "run",
]
