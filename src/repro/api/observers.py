"""Observers that ship with the unified API.

The base vocabulary (:class:`~repro.runtime.observers.Observer`,
:class:`~repro.runtime.observers.MetricsObserver`,
:class:`~repro.runtime.observers.TraceObserver`,
:class:`~repro.runtime.observers.ProgressObserver`,
:class:`~repro.runtime.observers.CallbackObserver`) lives in
:mod:`repro.runtime.observers` next to the scheduler that emits the
notifications; this module re-exports it and adds the analysis-flavored
observers that used to be hard-wired into individual harnesses.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.recovery import EventRecovery, aggregate_event_recoveries
from repro.runtime.observers import (
    CallbackObserver,
    MetricsObserver,
    Observer,
    ProgressObserver,
    TraceObserver,
)


class RecoveryObserver(Observer):
    """Collects per-event recovery records from scenario executions.

    Plugged into :func:`repro.api.run` (or a
    :class:`~repro.scenarios.runner.ScenarioRunner` directly), it accumulates
    every :class:`~repro.analysis.recovery.EventRecovery` across any number of
    runs and aggregates them by event kind -- the observer form of the
    recovery-analysis plumbing the scenario harness used to own exclusively.
    """

    def __init__(self) -> None:
        self.events: list[EventRecovery] = []
        self.converged_runs = 0

    def on_event(self, source: Any, event: Any) -> None:
        if isinstance(event, EventRecovery):
            self.events.append(event)

    def on_converged(self, source: Any, result: Any) -> None:
        self.converged_runs += 1

    @property
    def applied_events(self) -> tuple[EventRecovery, ...]:
        """The collected events that actually fired."""
        return tuple(event for event in self.events if event.applied)

    def aggregate(self) -> list[dict[str, object]]:
        """Per-event-kind recovery aggregates over everything collected."""
        return aggregate_event_recoveries([self])


__all__ = [
    "CallbackObserver",
    "MetricsObserver",
    "Observer",
    "ProgressObserver",
    "RecoveryObserver",
    "TraceObserver",
]
