"""The declarative experiment spec: one serializable description per run.

A :class:`RunSpec` pins down everything a simulation run needs -- the
protocol stack, the topology, the daemon, the optional scenario or
message-passing workload, the stopping conditions and the seeds -- in plain
data.  It serializes to/from a nested dictionary (:meth:`RunSpec.to_dict` /
:meth:`RunSpec.from_dict`) and carries a **canonical hash**
(:attr:`RunSpec.canonical_hash`): a stable digest of the non-default fields.
Equal specs always hash equally, and adding new spec fields later cannot
re-hash old specs.  The hash is purely syntactic: it does not know which
fields a given engine reads, so two specs differing only in a field the
engine ignores (e.g. ``protocol`` on a ``msgpass`` spec) hash differently --
set only the fields that matter when hashing for dedup.

The spec never executes anything itself; :func:`repro.api.run` hands it to
the :class:`~repro.api.engines.Engine` named by :attr:`RunSpec.engine`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.graphs.generators import FAMILY_NAMES, family as build_family
from repro.graphs.network import RootedNetwork

#: The family name of height-controlled trees (not in the sweepable families).
HEIGHT_TREE_FAMILY = "height_tree"

#: Engines :func:`repro.api.run` can dispatch to.  ``scheduler-fullscan`` is
#: the differential-testing twin of ``scheduler``: same measurement, but the
#: scheduler rescans every guard per step instead of maintaining the
#: incremental enabled-set.  ``scheduler-sharded`` runs the same measurement
#: on the multi-process sharded engine (:mod:`repro.shard`): ``shards``
#: worker processes each own one node block, with the dirty frontier
#: exchanged between rounds -- results are bit-identical to ``scheduler``.
#: ``scheduler-vectorized`` runs the same measurement on the batch-kernel
#: engine (:mod:`repro.runtime.vectorized`): under the synchronous daemon,
#: layers with registered batch kernels evaluate guards and writes as whole
#: numpy columns; results are again bit-identical, and the spec hash is
#: unchanged for every existing engine name.
#: ``scheduler-replay`` re-executes a flight-recorder log
#: (:mod:`repro.replay`) in verified lockstep instead of running anything
#: new; its log path travels in the hash-excluded ``debug["replay_log"]``.
ENGINE_NAMES = (
    "scheduler",
    "scheduler-fullscan",
    "scheduler-sharded",
    "scheduler-vectorized",
    "scheduler-replay",
    "scenario",
    "msgpass",
)

#: The engines that run the daemon-step scheduler (and thus understand
#: scheduler-only spec fields such as ``stop.after_substrate``).
SCHEDULER_ENGINES = (
    "scheduler",
    "scheduler-fullscan",
    "scheduler-sharded",
    "scheduler-vectorized",
    "scheduler-replay",
)

#: The engines whose executions a flight recorder can capture for replay:
#: every live scheduler engine plus the scenario runner (its mutations route
#: through the scheduler's recorded seams).  ``msgpass`` has no daemon-step
#: stream to record, and recording a replay would be circular.
RECORDABLE_ENGINES = (
    "scheduler",
    "scheduler-fullscan",
    "scheduler-sharded",
    "scheduler-vectorized",
    "scenario",
)

#: The engine that understands the ``shards`` / ``partition`` spec fields.
SHARDED_ENGINE = "scheduler-sharded"

#: Message-passing workloads the ``msgpass`` engine implements.
WORKLOADS = ("broadcast", "traversal", "election")


def _strip_defaults(value: Any, defaults: Mapping[str, Any]) -> dict[str, Any]:
    """Drop entries equal to their default: the canonical (hashable) form."""
    return {
        name: entry for name, entry in value.items() if entry != defaults.get(name)
    }


@dataclass(frozen=True)
class NetworkSpec:
    """The topology of a run, rebuildable from its description alone.

    ``family`` is one of :data:`repro.graphs.generators.FAMILY_NAMES`, or
    ``"height_tree"`` together with ``height`` for the height-controlled trees
    of the EXP-T2 sweep.  ``seed`` feeds the generator, so the same spec
    always yields the same network.
    """

    family: str = "random_connected"
    size: int = 16
    height: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height is not None:
            if not 1 <= self.height <= self.size - 1:
                raise ValueError(
                    f"height {self.height} out of range 1..{self.size - 1} for size {self.size}"
                )
            if self.family not in (HEIGHT_TREE_FAMILY, "random_connected"):
                raise ValueError(
                    "a height-controlled network uses family='height_tree'"
                )
            object.__setattr__(self, "family", HEIGHT_TREE_FAMILY)
        elif self.family == HEIGHT_TREE_FAMILY:
            raise ValueError("family='height_tree' needs a height")
        elif self.family not in FAMILY_NAMES:
            raise ValueError(
                f"unknown topology family {self.family!r}; choose from "
                f"{sorted(FAMILY_NAMES + (HEIGHT_TREE_FAMILY,))}"
            )
        if self.size < 1:
            raise ValueError("size must be >= 1")

    def build(self) -> RootedNetwork:
        """Construct the described network (deterministic in the spec)."""
        if self.height is not None:
            # Imported here: analysis depends on graphs, not the reverse.
            from repro.analysis.convergence import height_controlled_tree

            return height_controlled_tree(self.size, self.height, seed=self.seed)
        return build_family(self.family, self.size, seed=self.seed)


@dataclass(frozen=True)
class StopSpec:
    """When a run is allowed (or forced) to end.

    ``max_steps`` bounds the daemon-step engines (``None`` -> the harness
    default ``500 * (n + m) + 3000``); ``max_rounds`` bounds the synchronous
    message-passing engine (``None`` -> its default).  ``after_substrate``
    starts the run from a configuration whose substrate layer is already
    stabilized (the theorems' phrasing); it is only meaningful for the
    ``scheduler`` engine.
    """

    max_steps: int | None = None
    max_rounds: int | None = None
    after_substrate: bool = False

    def __post_init__(self) -> None:
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")


_NETWORK_DEFAULTS = asdict(NetworkSpec())
_STOP_DEFAULTS = asdict(StopSpec())


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation run, executable by :func:`repro.api.run`.

    Fields
    ------
    engine:
        ``"scheduler"`` -- a daemon-step stabilization measurement of the
        layered protocols; ``"scenario"`` -- a fault-injection /
        dynamic-network scenario execution; ``"msgpass"`` -- a synchronous
        message-passing workload comparing oriented vs unoriented costs.
    protocol:
        ``"dftno"``, ``"stno-bfs"`` or ``"stno-dfs"`` (``"stno"`` is accepted
        as an alias).  Ignored by the ``msgpass`` engine, whose orientation is
        the centralized reference.
    network / daemon / seed:
        The cell under test.  ``seed`` drives the scheduler / starting
        configuration; the network has its own seed.
    scenario:
        Library scenario name; required by (and only legal for) the
        ``scenario`` engine.
    workload:
        ``msgpass`` workload name (default ``"broadcast"``); only legal for
        the ``msgpass`` engine.
    stop:
        Stopping conditions (see :class:`StopSpec`).
    parameter:
        The swept quantity this run contributes to in aggregated tables
        (default: the network size; the height for height-controlled trees).
    shards / partition:
        Sharded-engine knobs (only legal for ``engine="scheduler-sharded"``):
        the number of worker processes (default 2) and the partition strategy
        (default ``"bfs"``; see
        :data:`repro.shard.partition.PARTITION_STRATEGIES`).  They never
        change the measured execution -- only how it is computed -- but they
        are part of the canonical hash like every other syntactic field.
    debug:
        Diagnostic switches, **excluded from the canonical hash**: they may
        change how a run is checked but never what it computes, so a debug
        re-run dedups against (and is comparable to) the original row.
        Currently understood by the scheduler engines:
        ``{"check_guard_locality": True}`` arms the per-guard read tracker
        (the programmatic form of ``REPRO_DEBUG_GUARDS=1``; reaches forked
        shard workers too), raising
        :class:`~repro.errors.GuardLocalityError` on any out-of-neighborhood
        guard read.  Unknown keys are preserved but ignored.
    record:
        Flight-recorder switch, **excluded from the canonical hash** exactly
        like ``debug`` (recording observes the run; it never changes what is
        computed, so a recorded re-run dedups against the original row).
        ``True`` writes the causal event log under the default
        :data:`repro.obs.recorder.DEFAULT_LOG_DIR`; a string is an explicit
        directory; a path ending in ``.jsonl`` is the exact log file.  Only
        legal for the :data:`RECORDABLE_ENGINES`; the row gains a
        ``flight_log`` pointer to the written log.
    """

    engine: str = "scheduler"
    protocol: str = "dftno"
    network: NetworkSpec = field(default_factory=NetworkSpec)
    daemon: str = "distributed"
    seed: int = 0
    scenario: str | None = None
    workload: str | None = None
    stop: StopSpec = field(default_factory=StopSpec)
    parameter: int | None = None
    shards: int | None = None
    partition: str | None = None
    debug: Mapping[str, object] | None = None
    record: "bool | str | None" = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {sorted(ENGINE_NAMES)}"
            )
        if isinstance(self.network, Mapping):
            object.__setattr__(self, "network", NetworkSpec(**dict(self.network)))
        if isinstance(self.stop, Mapping):
            object.__setattr__(self, "stop", StopSpec(**dict(self.stop)))
        if self.debug is not None:
            if not isinstance(self.debug, Mapping):
                raise ValueError(
                    f"debug must be a mapping of switches (got {type(self.debug).__name__})"
                )
            object.__setattr__(self, "debug", dict(self.debug))
        if self.record is not None and self.record is not False:
            if not isinstance(self.record, (bool, str)):
                raise ValueError(
                    f"record must be True or a directory/log path "
                    f"(got {type(self.record).__name__})"
                )
            if self.engine not in RECORDABLE_ENGINES:
                raise ValueError(
                    f"the {self.engine} engine has no recordable execution "
                    f"stream (recordable: {sorted(RECORDABLE_ENGINES)})"
                )
        elif self.record is False:
            object.__setattr__(self, "record", None)

        # Validate names eagerly so a bad spec fails at construction, not at
        # execution on some pool worker an hour into a campaign.
        from repro.campaign.grid import normalize_daemon, normalize_protocol

        object.__setattr__(self, "daemon", normalize_daemon(self.daemon))
        if self.engine != "msgpass":
            object.__setattr__(self, "protocol", normalize_protocol(self.protocol))

        if self.engine == "scenario":
            if self.scenario is None:
                raise ValueError("the scenario engine needs a scenario name")
            from repro.scenarios.library import normalize_scenario

            object.__setattr__(self, "scenario", normalize_scenario(self.scenario))
        elif self.scenario is not None:
            raise ValueError(
                f"scenario specs only apply to engine='scenario' (got {self.engine!r})"
            )

        if self.engine == "msgpass":
            workload = self.workload or "broadcast"
            if workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}"
                )
            object.__setattr__(self, "workload", workload)
            if workload == "election" and self.network.family != "ring":
                raise ValueError("the election workload runs on family='ring' networks")
        elif self.workload is not None:
            raise ValueError(
                f"workloads only apply to engine='msgpass' (got {self.engine!r})"
            )

        if self.engine == SHARDED_ENGINE:
            from repro.shard.partition import normalize_strategy

            shards = self.shards if self.shards is not None else 2
            if int(shards) < 1:
                raise ValueError(f"shards must be >= 1 (got {shards})")
            object.__setattr__(self, "shards", int(shards))
            object.__setattr__(
                self, "partition", normalize_strategy(self.partition or "bfs")
            )
        elif self.shards is not None or self.partition is not None:
            raise ValueError(
                f"shards/partition only apply to engine={SHARDED_ENGINE!r} "
                f"(got {self.engine!r})"
            )

        if self.engine not in SCHEDULER_ENGINES and self.stop.after_substrate:
            # Rejecting beats mislabeling: after_substrate is part of the
            # canonical hash, so silently ignoring it would store two
            # differently-hashed copies of the same measurement.
            raise ValueError(
                f"after_substrate starts are not supported by the {self.engine} engine"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Nested plain-data form (JSON-ready); the inverse of :meth:`from_dict`."""
        out = asdict(self)
        out["network"] = asdict(self.network)
        out["stop"] = asdict(self.stop)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (missing keys -> defaults)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "network" in kwargs and isinstance(kwargs["network"], Mapping):
            kwargs["network"] = NetworkSpec(**dict(kwargs["network"]))
        if "stop" in kwargs and isinstance(kwargs["stop"], Mapping):
            kwargs["stop"] = StopSpec(**dict(kwargs["stop"]))
        return cls(**kwargs)  # type: ignore[arg-type]

    def canonical(self) -> dict[str, object]:
        """The hash input: :meth:`to_dict` with default-valued entries dropped.

        Stripping defaults makes the hash *forward-stable*: a field added to
        ``RunSpec`` in a later version (with a default) does not change the
        hash of specs that never set it, so stores keyed by
        :attr:`canonical_hash` survive API growth -- the same trick the
        campaign grid plays with ``task_type``.
        """
        data = self.to_dict()
        # Unconditionally hash-excluded: debug switches and the flight
        # recorder change how a run is checked/observed, never what it
        # computes.
        data.pop("debug", None)
        data.pop("record", None)
        data["network"] = _strip_defaults(data["network"], _NETWORK_DEFAULTS)
        data["stop"] = _strip_defaults(data["stop"], _STOP_DEFAULTS)
        defaults: dict[str, Any] = {
            "engine": "scheduler",
            "protocol": "dftno",
            "network": {},
            "daemon": "distributed",
            "seed": 0,
            "scenario": None,
            "workload": "broadcast" if self.engine == "msgpass" else None,
            "stop": {},
            "parameter": None,
            # The sharded engine's resolved defaults hash like the bare spec,
            # so ``RunSpec(engine="scheduler-sharded")`` and an explicit
            # ``shards=2, partition="bfs"`` dedup to the same store row.
            "shards": 2 if self.engine == SHARDED_ENGINE else None,
            "partition": "bfs" if self.engine == SHARDED_ENGINE else None,
        }
        return _strip_defaults(data, defaults)

    @property
    def canonical_hash(self) -> str:
        """Stable 16-hex-digit digest of the canonical form."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunResult:
    """The uniform envelope every engine returns.

    Attributes
    ----------
    engine:
        The engine that executed the run.
    spec:
        The spec it executed (so results are self-describing).
    row:
        One flat, JSON-serializable result dictionary -- exactly what a
        campaign store persists for this kind of run.
    report:
        The engine's native outcome object for callers that want more than the
        row: a :class:`~repro.analysis.convergence.StabilizationSample`, a
        :class:`~repro.analysis.recovery.ScenarioReport`, or the ``msgpass``
        per-variant outcome mapping.
    perf:
        The run's :meth:`~repro.obs.Instrumentation.summary` -- phase timers,
        counters, gauges, and (sharded) per-shard worker summaries.  ``None``
        unless the run was executed with instrumentation attached; when
        present the same dictionary is embedded in ``row["perf"]`` so campaign
        stores persist it.  Uninstrumented rows are byte-identical to what
        they were before the observability layer existed.
    telemetry:
        The run's :meth:`~repro.obs.ConvergenceTelemetryObserver.snapshot` --
        convergence time-series, guard heat map, writes per node.  ``None``
        unless the run asked for telemetry (``run(spec, telemetry=...)``);
        when present the same blob is embedded in ``row["telemetry"]``.
    health:
        The run's :meth:`~repro.obs.HealthMonitor.snapshot` -- structured
        stall / round-budget anomalies.  ``None`` unless the run asked for
        health monitoring; embedded in ``row["health"]`` when present.
    """

    engine: str
    spec: RunSpec
    row: dict[str, object]
    report: object = None
    perf: dict | None = None
    telemetry: dict | None = None
    health: dict | None = None

    @property
    def converged(self) -> bool:
        """Whether the run reached its engine's success condition."""
        return bool(self.row.get("converged"))

    def to_dict(self) -> dict[str, object]:
        """Serializable form: the spec, its hash, and the flat row."""
        return {
            "engine": self.engine,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.canonical_hash,
            "row": dict(self.row),
        }


__all__ = [
    "ENGINE_NAMES",
    "HEIGHT_TREE_FAMILY",
    "RECORDABLE_ENGINES",
    "SCHEDULER_ENGINES",
    "SHARDED_ENGINE",
    "NetworkSpec",
    "RunResult",
    "RunSpec",
    "StopSpec",
    "WORKLOADS",
]
