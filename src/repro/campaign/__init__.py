"""Experiment-campaign engine: declarative grids, parallel runs, persistent results.

The subsystem has four layers, each usable on its own:

* :mod:`repro.campaign.grid` -- declarative parameter grids that expand to
  deterministic task specs with stable config hashes and hash-derived seeds;
* :mod:`repro.campaign.runner` -- serial or ``multiprocessing`` execution that
  streams rows as tasks complete;
* :mod:`repro.campaign.store` -- a crash-safe, deduplicating JSONL result
  store that powers ``--resume``;
* :mod:`repro.campaign.aggregate` -- group-by/mean/fit summaries reusing
  :mod:`repro.analysis.reporting`.

``python -m repro.campaign`` (or the ``repro-campaign`` console script)
exposes the whole pipeline on the command line.
"""

from repro.campaign.aggregate import (
    aggregate_rows,
    campaign_summary,
    fit_aggregate,
    fit_if_possible,
)
from repro.campaign.grid import Grid, TaskSpec, parse_axis
from repro.campaign.runner import CampaignResult, CampaignRunner, run_grid, run_task
from repro.campaign.store import ResultStore, resolve_store_path

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "Grid",
    "ResultStore",
    "TaskSpec",
    "aggregate_rows",
    "campaign_summary",
    "fit_aggregate",
    "fit_if_possible",
    "parse_axis",
    "resolve_store_path",
    "run_grid",
    "run_task",
]
