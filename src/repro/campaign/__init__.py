"""Experiment-campaign engine: declarative grids, parallel runs, persistent results.

The subsystem has five layers, each usable on its own:

* :mod:`repro.campaign.grid` -- declarative parameter grids that expand to
  deterministic task specs with stable config hashes and hash-derived seeds;
* :mod:`repro.campaign.registry` / :mod:`repro.campaign.tasks` -- the
  task-type registry and the built-in task kinds (``stabilize`` runs,
  fault-injection ``scenario`` executions, ``msgpass`` workloads);
* :mod:`repro.campaign.runner` -- serial or ``multiprocessing`` execution that
  streams rows as tasks complete;
* :mod:`repro.campaign.store` -- a crash-safe, deduplicating JSONL result
  store that powers ``--resume`` and cross-machine merges;
* :mod:`repro.campaign.aggregate` -- group-by/mean/fit summaries reusing
  :mod:`repro.analysis.reporting`, with per-task-type metric sets.

``python -m repro.campaign`` (or the ``repro-campaign`` console script)
exposes the whole pipeline on the command line.
"""

from repro.campaign.aggregate import (
    aggregate_rows,
    campaign_summary,
    fit_aggregate,
    fit_if_possible,
    metrics_for_rows,
)
from repro.campaign.grid import Grid, TaskSpec, parse_axis
from repro.campaign.registry import (
    DEFAULT_TASK_TYPE,
    get_task_handler,
    register_task_type,
    task_type_names,
)
from repro.campaign.runner import CampaignResult, CampaignRunner, run_grid, run_task
from repro.campaign.store import (
    BaseResultStore,
    JsonlResultStore,
    ResultStore,
    SqliteResultStore,
    open_store,
    resolve_store_path,
)

__all__ = [
    "BaseResultStore",
    "CampaignResult",
    "CampaignRunner",
    "DEFAULT_TASK_TYPE",
    "Grid",
    "JsonlResultStore",
    "ResultStore",
    "SqliteResultStore",
    "open_store",
    "TaskSpec",
    "aggregate_rows",
    "campaign_summary",
    "fit_aggregate",
    "fit_if_possible",
    "get_task_handler",
    "metrics_for_rows",
    "parse_axis",
    "register_task_type",
    "resolve_store_path",
    "run_grid",
    "run_task",
    "task_type_names",
]
