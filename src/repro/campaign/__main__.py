"""``python -m repro.campaign`` entry point."""

from __future__ import annotations

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
