"""Aggregation of campaign result rows into the tables the thesis reports.

These helpers reproduce (and replace) the private group-by logic the
``exp_*`` entry points used to hand-roll: group rows by a key, average each
metric over the *converged* samples, and fit a line through the aggregated
means -- reusing :func:`repro.analysis.reporting.summarize` and
:func:`repro.analysis.reporting.linear_fit`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.analysis.reporting import linear_fit, summarize

Row = Mapping[str, object]

#: (source column in a result row, name of the aggregated mean column).
DEFAULT_METRICS: tuple[tuple[str, str], ...] = (
    ("overlay_steps", "overlay_steps_mean"),
    ("overlay_rounds", "overlay_rounds_mean"),
    ("full_steps", "total_steps_mean"),
)


def aggregate_rows(
    rows: Sequence[Row],
    by: str = "parameter",
    key_name: str | None = None,
    metrics: Sequence[tuple[str, str]] = DEFAULT_METRICS,
) -> list[dict[str, object]]:
    """Group ``rows`` by ``rows[by]`` and average each metric over converged runs.

    Returns one output row per distinct key (sorted), named ``key_name``
    (default: ``by``), with ``trials`` (group size), ``converged`` (count) and
    one ``*_mean`` column per metric.
    """
    key_name = key_name or by
    groups: dict[object, list[Row]] = {}
    for row in rows:
        groups.setdefault(row[by], []).append(row)
    out: list[dict[str, object]] = []
    for key in sorted(groups, key=lambda value: (str(type(value)), value)):
        bucket = groups[key]
        converged = [row for row in bucket if row.get("converged")]
        aggregated: dict[str, object] = {
            key_name: key,
            "trials": len(bucket),
            "converged": len(converged),
        }
        for source, target in metrics:
            values = [row[source] for row in converged if row.get(source) is not None]
            aggregated[target] = summarize(values)["mean"]
        out.append(aggregated)
    return out


def fit_if_possible(
    xs: Sequence[float], ys: Sequence[float | None]
) -> dict[str, float] | None:
    """A linear fit of the finite (x, y) pairs, or ``None`` when degenerate.

    Pairs whose y is ``None`` or NaN are dropped (unconverged groups); the fit
    needs at least two distinct surviving x values.
    """
    pairs = [
        (x, y)
        for x, y in zip(xs, ys)
        if y is not None and not (isinstance(y, float) and math.isnan(y))
    ]
    if len({x for x, _ in pairs}) < 2:
        return None
    fit = linear_fit([x for x, _ in pairs], [y for _, y in pairs])
    if fit["slope"] is None:
        return None
    return fit


def fit_aggregate(
    aggregated: Sequence[Row], x: str, y: str
) -> dict[str, float] | None:
    """Fit ``y ~ x`` across already-aggregated rows (``None`` when degenerate)."""
    return fit_if_possible(
        [row[x] for row in aggregated],  # type: ignore[misc]
        [row[y] for row in aggregated],  # type: ignore[misc]
    )


def campaign_summary(
    rows: Sequence[Row],
    key_name: str = "n",
    fit_metric: str = "overlay_steps_mean",
) -> dict[str, object]:
    """The ``{"rows", "fit", "samples"}`` structure the ``exp_*`` functions return."""
    aggregated = aggregate_rows(rows, by="parameter", key_name=key_name)
    fit = fit_aggregate(aggregated, key_name, fit_metric)
    return {"rows": aggregated, "fit": fit, "samples": [dict(row) for row in rows]}


__all__ = [
    "DEFAULT_METRICS",
    "aggregate_rows",
    "campaign_summary",
    "fit_aggregate",
    "fit_if_possible",
]
