"""Aggregation of campaign result rows into the tables the thesis reports.

These helpers reproduce (and replace) the private group-by logic the
``exp_*`` entry points used to hand-roll: group rows by a key, average each
metric over the *converged* samples, and fit a line through the aggregated
means -- reusing :func:`repro.analysis.reporting.summarize` and
:func:`repro.analysis.reporting.linear_fit`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.analysis.reporting import linear_fit, summarize

Row = Mapping[str, object]

#: (source column in a result row, name of the aggregated mean column).
DEFAULT_METRICS: tuple[tuple[str, str], ...] = (
    ("overlay_steps", "overlay_steps_mean"),
    ("overlay_rounds", "overlay_rounds_mean"),
    ("full_steps", "total_steps_mean"),
)

#: Metrics of ``task_type="scenario"`` rows: per-event recovery aggregates.
SCENARIO_METRICS: tuple[tuple[str, str], ...] = (
    ("recovery_steps", "recovery_steps_mean"),
    ("recovery_rounds", "recovery_rounds_mean"),
    ("disturbed_fraction", "disturbed_fraction_mean"),
    ("closure_violations", "closure_violations_mean"),
)

#: Metrics of ``task_type="msgpass"`` rows: message-complexity comparisons.
MSGPASS_METRICS: tuple[tuple[str, str], ...] = (
    ("messages_unoriented", "messages_unoriented_mean"),
    ("messages_oriented", "messages_oriented_mean"),
    ("message_savings", "message_savings_mean"),
)


def metrics_for_rows(rows: Sequence[Row]) -> tuple[tuple[str, str], ...]:
    """The metric columns that actually occur in ``rows``.

    Lets ``repro-campaign report`` aggregate any mix of task types: each
    known metric set contributes the pairs whose source column some row
    carries.  Falls back to :data:`DEFAULT_METRICS` when nothing matches, so
    legacy stores keep their exact pre-registry report shape.
    """
    present: set[str] = set()
    for row in rows:
        present.update(row.keys())
    chosen = tuple(
        pair
        for metric_set in (DEFAULT_METRICS, SCENARIO_METRICS, MSGPASS_METRICS)
        for pair in metric_set
        if pair[0] in present
    )
    return chosen or DEFAULT_METRICS


def aggregate_rows(
    rows: Sequence[Row],
    by: str = "parameter",
    key_name: str | None = None,
    metrics: Sequence[tuple[str, str]] = DEFAULT_METRICS,
) -> list[dict[str, object]]:
    """Group ``rows`` by ``rows[by]`` and average each metric over converged runs.

    Returns one output row per distinct key (sorted), named ``key_name``
    (default: ``by``), with ``trials`` (group size), ``converged`` (count) and
    one ``*_mean`` column per metric.
    """
    key_name = key_name or by
    groups: dict[object, list[Row]] = {}
    for row in rows:
        groups.setdefault(row[by], []).append(row)
    out: list[dict[str, object]] = []
    for key in sorted(groups, key=lambda value: (str(type(value)), value)):
        bucket = groups[key]
        converged = [row for row in bucket if row.get("converged")]
        aggregated: dict[str, object] = {
            key_name: key,
            "trials": len(bucket),
            "converged": len(converged),
        }
        for source, target in metrics:
            values = [row[source] for row in converged if row.get(source) is not None]
            aggregated[target] = summarize(values)["mean"]
        out.append(aggregated)
    return out


def fit_if_possible(
    xs: Sequence[float], ys: Sequence[float | None]
) -> dict[str, float] | None:
    """A linear fit of the finite (x, y) pairs, or ``None`` when degenerate.

    Pairs whose y is ``None`` or NaN are dropped (unconverged groups), as are
    pairs whose x is not numeric (grouping by a categorical key such as
    ``daemon`` or ``scenario`` has no line to fit); the fit needs at least two
    distinct surviving x values.
    """

    def _finite_number(value: object) -> bool:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and not (isinstance(value, float) and math.isnan(value))
        )

    pairs = [(x, y) for x, y in zip(xs, ys) if _finite_number(x) and _finite_number(y)]
    if len({x for x, _ in pairs}) < 2:
        return None
    fit = linear_fit([x for x, _ in pairs], [y for _, y in pairs])
    if fit["slope"] is None:
        return None
    return fit


def fit_aggregate(
    aggregated: Sequence[Row], x: str, y: str
) -> dict[str, float] | None:
    """Fit ``y ~ x`` across already-aggregated rows (``None`` when degenerate)."""
    return fit_if_possible(
        [row[x] for row in aggregated],  # type: ignore[misc]
        [row[y] for row in aggregated],  # type: ignore[misc]
    )


def campaign_summary(
    rows: Sequence[Row],
    key_name: str = "n",
    fit_metric: str = "overlay_steps_mean",
) -> dict[str, object]:
    """The ``{"rows", "fit", "samples"}`` structure the ``exp_*`` functions return."""
    aggregated = aggregate_rows(rows, by="parameter", key_name=key_name)
    fit = fit_aggregate(aggregated, key_name, fit_metric)
    return {"rows": aggregated, "fit": fit, "samples": [dict(row) for row in rows]}


__all__ = [
    "DEFAULT_METRICS",
    "MSGPASS_METRICS",
    "SCENARIO_METRICS",
    "aggregate_rows",
    "campaign_summary",
    "fit_aggregate",
    "fit_if_possible",
    "metrics_for_rows",
]
