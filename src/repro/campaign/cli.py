"""Command-line interface for experiment campaigns.

::

    python -m repro.campaign run --protocol dftno --sizes 8:64 --jobs 4 --out results/
    python -m repro.campaign run --protocol dftno --sizes 8:64 --shard 0/4 --out shard-a/
    python -m repro.campaign run --task-type scenario --scenario cascade \\
        --protocol dftno --protocol stno-bfs --daemon central --daemon distributed \\
        --sizes 10 --out results/
    python -m repro.campaign run --task-type msgpass --workload traversal \\
        --family complete --sizes 8,16 --out results/msgpass.sqlite
    python -m repro.campaign status --out results/
    python -m repro.campaign status --out results/ --protocol dftno --sizes 8:64
    python -m repro.campaign merge shard-a/ shard-b/ --out merged.jsonl
    python -m repro.campaign report --out results/ --metric recovery_steps_mean
    python -m repro.campaign report --out results/scenarios.jsonl --per-event
    python -m repro.campaign run --protocol dftno --sizes 8:32 --perf --out results/
    python -m repro.campaign report --out results/ --perf
    python -m repro.campaign run --protocol dftno --sizes 8:32 --telemetry --health \\
        --out results/
    python -m repro.campaign watch --out results/ --protocol dftno --sizes 8:32
    python -m repro.campaign watch --out results/ --once
    python -m repro.campaign report --out results/ --health
    python -m repro.campaign run --protocol dftno --sizes 10 --record --health --out results/
    python -m repro.campaign run --protocol dftno --sizes 10 \\
        --trace-export chrome://trace.json --out results/
    python -m repro.campaign status --out results/ --protocol dftno --sizes 8:64 --shard /4

``run`` expands the declarative grid, skips tasks the store already holds
(``--resume``), executes the rest on ``--jobs`` workers and streams one line
per completed task; each task is a :class:`~repro.api.RunSpec` executed
through :func:`repro.api.run`.  ``--shard I/K`` executes only the hash-keyed
slice ``I`` of ``K`` of the grid (deterministic and disjoint across slices),
so K machines can each run one slice against their own store and ``merge``
re-unites the results.  ``--live [STEPS]`` additionally streams
per-step/round progress from *inside* each task (via the engines' observer
stream), so a single long-running task is no longer silent until it
finishes.  Stores are JSONL by default; an ``--out``
ending in ``.sqlite`` / ``.db`` selects the SQLite backend.  Both carry
store-level metadata (grid description, code version, created-at) for
provenance.  ``status`` summarizes the store; given grid options it also
reports completed/pending counts, *stale* rows (hashes the edited grid no
longer produces), and a rows-per-second / ETA estimate from the store's
timestamps.  ``merge`` unions several stores by config hash -- the
distributed-execution path: shard one grid across machines, then merge the
files (mixing backends is fine).  ``report`` aggregates a store into a table
plus a linear fit, picking metric columns that match the stored task types;
``report --per-event`` aggregates scenario rows by event kind instead.

``run --perf`` attaches the observability layer's instrumentation to every
task, persisting each row's phase-timer/counter summary under ``perf``
(hashes and measured results are unchanged); ``report --perf`` merges the
stored summaries into a where-does-the-time-go table.  ``run --telemetry``
and ``run --health`` likewise persist each row's convergence time-series and
stall-watchdog anomalies (``telemetry`` / ``health`` keys; read back with
``report --health`` and the ``watch`` anomaly feed).  ``watch`` tails a
store with a live dashboard (progress, ETA, rolling phase breakdown,
anomaly feed) while a concurrent ``run`` writes to it (``watch --once``
renders a single plain-text snapshot and exits -- the scripting/CI mode);
``status --shard [I]/K`` breaks the grid comparison down per hash-keyed
slice.  ``run --record [DIR]`` attaches the execution flight recorder to
every task: each task writes a replayable causal event log under ``DIR``
(default ``flightlogs/``) and its row -- plus any health anomalies -- gains
a ``flight_log`` pointer that ``watch`` and ``report --health`` surface
(replay with ``repro-replay``).  ``run --trace-export chrome://FILE``
collects the campaign's span trace and converts it to a Chrome trace file
loadable in Perfetto.  All
timestamps the CLI renders (store creation, ETA) are timezone-explicit UTC
ISO-8601, so two machines reading the same store agree on them.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.campaign.aggregate import aggregate_rows, fit_aggregate, metrics_for_rows
from repro.campaign.grid import DAEMONS, Grid, PROTOCOLS, parse_axis, parse_shard
from repro.campaign.registry import DEFAULT_TASK_TYPE, task_type_names
from repro.campaign.runner import CampaignRunner
from repro.campaign.store import open_store, resolve_store_path
from repro.campaign.watch import _format_duration, _utc_iso, watch
from repro.errors import ReproError

#: Grid-defining options shared by ``run`` and ``status``; used to detect
#: whether a ``status`` invocation asked for a grid comparison at all.
_GRID_ARGS = (
    "task_type",
    "scenarios",
    "workloads",
    "protocols",
    "families",
    "sizes",
    "heights",
    "daemons",
    "trials",
    "seed",
    "after_substrate",
)


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    """The options that define a grid (defaults resolved in :func:`_build_grid`)."""
    parser.add_argument(
        "--task-type",
        dest="task_type",
        default=None,
        metavar="NAME",
        help="what each task computes "
        f"(default {DEFAULT_TASK_TYPE}; built-ins: {', '.join(task_type_names())})",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="library scenario to sweep (repeatable; requires --task-type scenario)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        metavar="NAME",
        help="msgpass workload to sweep: broadcast, traversal, election "
        "(repeatable; requires --task-type msgpass)",
    )
    parser.add_argument(
        "--protocol",
        action="append",
        dest="protocols",
        metavar="NAME",
        help=f"protocol to sweep (repeatable; default dftno; choices: {', '.join(PROTOCOLS)})",
    )
    parser.add_argument(
        "--family",
        action="append",
        dest="families",
        metavar="NAME",
        help="topology family (repeatable; default random_connected)",
    )
    parser.add_argument(
        "--sizes",
        default=None,
        metavar="SPEC",
        help="network sizes: '8,16,24' list, '8:64' doubling sweep, or '8:64:8' stepped (default 8:32)",
    )
    parser.add_argument(
        "--heights",
        default=None,
        metavar="SPEC",
        help="tree heights (same spec syntax); switches the sweep to height-controlled trees",
    )
    parser.add_argument(
        "--daemon",
        action="append",
        dest="daemons",
        metavar="KIND",
        help=f"daemon kind (repeatable; default distributed; choices: {', '.join(DAEMONS)})",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="trials per configuration (default 3)"
    )
    parser.add_argument("--seed", type=int, default=None, help="grid base seed (default 0)")
    parser.add_argument(
        "--after-substrate",
        action="store_true",
        help="start from a configuration whose substrate layer is already stabilized",
    )


def _grid_requested(args: argparse.Namespace) -> bool:
    """Whether any grid-defining option was given (``status`` comparison mode)."""
    if args.after_substrate:
        return True
    return any(
        getattr(args, name) is not None for name in _GRID_ARGS if name != "after_substrate"
    )


def _build_grid(args: argparse.Namespace) -> Grid:
    """Resolve the shared grid options (with their documented defaults)."""
    return Grid(
        sizes=parse_axis(args.sizes if args.sizes is not None else "8:32"),
        protocols=tuple(args.protocols or ("dftno",)),
        families=tuple(args.families or ("random_connected",)),
        daemons=tuple(args.daemons or ("distributed",)),
        heights=parse_axis(args.heights) if args.heights else None,
        trials=args.trials if args.trials is not None else 3,
        seed=args.seed if args.seed is not None else 0,
        after_substrate=args.after_substrate,
        task_type=args.task_type or DEFAULT_TASK_TYPE,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        workloads=tuple(args.workloads) if args.workloads else None,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel, resumable experiment campaigns for the orientation protocols.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand a grid and execute its tasks")
    _add_grid_options(run)
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--out",
        default="results",
        metavar="PATH",
        help="store directory or .jsonl file (default results/)",
    )
    run.add_argument(
        "--resume", action="store_true", help="skip tasks already completed in the store"
    )
    run.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help="execute only hash-keyed slice I of K of the grid (0-based), e.g. "
        "--shard 0/4; run each slice on its own machine, then re-unite the "
        "stores with 'repro-campaign merge'",
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")
    run.add_argument(
        "--perf",
        action="store_true",
        help="attach run instrumentation to every task and persist each row's "
        "phase-timer/counter summary under 'perf' (read back with "
        "'repro-campaign report --perf'); hashes and results are unchanged",
    )
    run.add_argument(
        "--telemetry",
        nargs="?",
        const=0,
        type=int,
        default=None,
        metavar="STRIDE",
        help="sample each task's convergence time-series (enabled-set drain, "
        "guard heat map, writes per node) every STRIDE steps (default stride "
        "when the flag is given bare) and persist it under 'telemetry'; "
        "hashes and results are unchanged",
    )
    run.add_argument(
        "--health",
        nargs="?",
        const=0,
        type=int,
        default=None,
        metavar="BUDGET",
        help="attach the stall/divergence watchdog to every task (round "
        "budget BUDGET, derived from the topology when the flag is given "
        "bare) and persist its anomalies under 'health' (read back with "
        "'repro-campaign report --health' or the watch anomaly feed)",
    )
    run.add_argument(
        "--record",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help="attach the execution flight recorder to every task: each task "
        "appends a replayable causal event log (daemon choices, write-sets, "
        "mutations, frontier exchanges) under DIR (default flightlogs/), "
        "keyed by its spec's canonical hash; rows and their health anomalies "
        "gain a 'flight_log' pointer (replay with 'repro-replay')",
    )
    run.add_argument(
        "--trace-export",
        default=None,
        metavar="chrome://FILE",
        help="after the campaign, export the span trace as a Chrome trace "
        "file at FILE (load in ui.perfetto.dev or chrome://tracing); spans "
        "are collected into FILE.spans.jsonl unless REPRO_TRACE already "
        "names a trace file",
    )
    run.add_argument(
        "--live",
        nargs="?",
        const=1_000,
        type=int,
        default=None,
        metavar="STEPS",
        help="live per-step/round progress inside long tasks: emit a line every "
        "STEPS scheduler steps (default 1000 when the flag is given bare), plus "
        "scenario events and convergence",
    )
    run.add_argument(
        "--lint",
        action="store_true",
        help="pre-flight: statically lint (repro-lint) every protocol layer the "
        "grid references and refuse to start the campaign on any finding",
    )

    status = sub.add_parser(
        "status",
        help="summarize a campaign store (add grid options to check it against a grid)",
    )
    status.add_argument("--out", default="results", metavar="PATH", help="store path")
    _add_grid_options(status)
    status.add_argument(
        "--shard",
        default=None,
        metavar="[I]/K",
        help="with grid options: per-shard completed/pending/stale view -- "
        "'--shard 1/4' reports slice 1 of 4, '--shard /4' tabulates all "
        "4 slices (the multi-machine split 'run --shard' executes)",
    )

    watch_cmd = sub.add_parser(
        "watch",
        help="live dashboard tailing a store while a campaign writes to it",
    )
    watch_cmd.add_argument("--out", default="results", metavar="PATH", help="store path")
    _add_grid_options(watch_cmd)
    watch_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default 2.0)",
    )
    watch_cmd.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames and exit (default: run until Ctrl-C)",
    )
    watch_cmd.add_argument(
        "--rolling",
        type=int,
        default=20,
        metavar="ROWS",
        help="perf rows feeding the rolling phase breakdown (default 20)",
    )
    watch_cmd.add_argument(
        "--once",
        action="store_true",
        help="render a single plain-text snapshot frame and exit 0 -- the "
        "stateless scripting/CI mode (equivalent to --iterations 1 with "
        "screen clearing off)",
    )
    watch_cmd.add_argument(
        "--no-clear",
        action="store_true",
        help="never clear the screen between frames (frames append; use when "
        "piping output to a file)",
    )

    merge = sub.add_parser("merge", help="union campaign stores by config hash")
    merge.add_argument(
        "inputs",
        nargs="+",
        metavar="STORE",
        help="source stores (.jsonl files or directories) to merge in order",
    )
    merge.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="target store; existing rows win over merged duplicates",
    )

    report = sub.add_parser("report", help="aggregate a store into a table and fit")
    report.add_argument("--out", default="results", metavar="PATH", help="store path")
    report.add_argument(
        "--key", default="parameter", help="row column to group by (default parameter)"
    )
    report.add_argument(
        "--metric",
        default=None,
        help="aggregated column to fit against the key "
        "(default: first metric present, e.g. overlay_steps_mean)",
    )
    report.add_argument(
        "--per-event",
        action="store_true",
        dest="per_event",
        help="aggregate stored scenario rows per event kind "
        "(recovery steps/disturbance by corruption, crash, link change, ...)",
    )
    report.add_argument(
        "--perf",
        action="store_true",
        help="merge the perf summaries persisted by 'run --perf' into a "
        "phase-time / counter breakdown (per-shard where available)",
    )
    report.add_argument(
        "--health",
        action="store_true",
        help="summarize the health blobs persisted by 'run --health': "
        "monitored/anomalous row counts, anomalies by kind, and the "
        "flagged rows' identities",
    )
    return parser


def _trace_export_target(text: str | None) -> str | None:
    """Parse ``--trace-export chrome://FILE`` into the destination path."""
    if text is None:
        return None
    prefix = "chrome://"
    if not text.startswith(prefix) or not text[len(prefix):]:
        raise ValueError(
            f"bad --trace-export spec {text!r}; the only supported format is "
            "chrome://FILE (the Chrome trace JSON file to write)"
        )
    return text[len(prefix):]


def _run_with_trace_export(runner, grid, args, shard, progress, destination):
    """Run the campaign with span tracing on, then export a Chrome trace.

    If ``REPRO_TRACE`` already names a span file it is respected (and left
    set); otherwise spans are collected into ``destination + '.spans.jsonl'``
    for the duration of the campaign.  Pool workers inherit the variable, so
    their runs' spans land in the same file.
    """
    import os

    from repro.obs.spans import TRACE_ENV, export_chrome_trace

    source = os.environ.get(TRACE_ENV, "").strip()
    owns_env = not source
    if owns_env:
        source = destination + ".spans.jsonl"
        os.environ[TRACE_ENV] = source
    try:
        result = runner.run(grid, resume=args.resume, progress=progress, shard=shard)
    finally:
        if owns_env:
            del os.environ[TRACE_ENV]
    if not os.path.exists(source):
        # Every task resumed, so no run ever opened the span file.
        open(source, "w", encoding="utf-8").close()
    events = export_chrome_trace(source, destination)
    print(f"trace export: {events} span(s) -> {destination} (chrome trace format)")
    return result


def _cmd_run(args: argparse.Namespace) -> int:
    grid = _build_grid(args)
    if args.lint:
        # Pre-flight before the store is even opened: a protocol layer that
        # fails the static verifier would burn the whole campaign's compute
        # on runs whose locality assumptions are broken.
        from repro.lint import format_findings, lint_paths, modules_for_protocols

        modules = modules_for_protocols(grid.protocols)
        findings = lint_paths(modules)
        if findings:
            print(format_findings(findings, title="campaign pre-flight lint"))
            print(
                f"repro-campaign: refusing to start: {len(findings)} lint "
                f"finding(s) in {len(modules)} protocol module(s)",
                file=sys.stderr,
            )
            return 2
        if not args.quiet:
            names = ", ".join(grid.protocols)
            print(f"pre-flight lint OK: {names} ({len(modules)} modules clean)")
    shard = parse_shard(args.shard) if args.shard else None
    store = open_store(resolve_store_path(args.out))
    # Provenance: every run stamps the grid it executed, the code version and
    # (once) the creation time into the store-level metadata.
    from repro import __version__ as code_version

    updates: dict[str, object] = {"grid": grid.as_dict(), "code_version": code_version}
    if "created_at" not in store.metadata():
        now = time.time()
        updates["created_at"] = now
        updates["created_at_iso"] = _utc_iso(now)
    store.update_metadata(**updates)
    # Bare --telemetry / --health (argparse const 0) means "defaults, on".
    telemetry = True if args.telemetry == 0 else (args.telemetry or False)
    health = True if args.health == 0 else (args.health or False)
    runner = CampaignRunner(
        store=store,
        jobs=args.jobs,
        live_every=args.live,
        perf=args.perf,
        telemetry=telemetry,
        health=health,
        record=args.record,
    )
    trace_export = _trace_export_target(args.trace_export)

    def progress(row: dict[str, object]) -> None:
        if not args.quiet:
            status = "ok" if row.get("converged") else "DID NOT CONVERGE"
            extra = f" scenario={row['scenario']}" if row.get("scenario") else ""
            if row.get("task_type") == "msgpass" and row.get("workload"):
                extra += f" workload={row['workload']}"
            print(
                f"[{row['task_index']}] {row['protocol']} {row['family']} "
                f"n={row['size']} daemon={row['daemon']}{extra} trial={row['trial']} "
                f"hash={row['config_hash']} ... {status}",
                flush=True,
            )

    if trace_export is not None:
        result = _run_with_trace_export(runner, grid, args, shard, progress, trace_export)
    else:
        result = runner.run(grid, resume=args.resume, progress=progress, shard=shard)
    shard_note = (
        f" (shard {shard[0]}/{shard[1]} of a {len(grid)}-task grid)" if shard else ""
    )
    print(
        f"campaign: {result.total} tasks{shard_note}, {result.executed} executed, "
        f"{result.skipped} skipped (resumed), {result.converged}/{result.total} converged "
        f"-> {store.path}"
    )
    if result.stale:
        print(
            f"note: {result.stale} stale row(s) in the store are not part of this "
            f"grid (see 'repro-campaign status' with the same grid options)"
        )
    return 0 if result.converged == result.total else 1


def _parse_status_shard(text: str) -> tuple[int | None, int]:
    """``status --shard`` spec: ``I/K`` one slice, ``/K`` (or ``all/K``) all.

    Returns ``(index, count)`` with ``index=None`` meaning "tabulate every
    slice"; delegates single-slice validation to :func:`parse_shard`.
    """
    head, sep, tail = text.strip().partition("/")
    if sep and head in ("", "all", "*"):
        try:
            count = int(tail)
        except ValueError as exc:
            raise ValueError(
                f"bad shard spec {text!r}; use INDEX/COUNT or /COUNT"
            ) from exc
        if count < 1:
            raise ValueError(f"bad shard spec {text!r}; COUNT must be >= 1")
        return None, count
    return parse_shard(text)


def _shard_status_table(
    grid: Grid, stored: set[str], index: int | None, count: int
) -> list[dict[str, object]]:
    """Per-shard completed/pending/stale rows for the ``status --shard`` view.

    Staleness is judged against the *whole* grid (matching ``run --shard``):
    a stored hash no shard's grid produces is stale, and is charged to the
    slice its hash keys to -- so K machines each see their own orphans.
    """
    grid_hashes = {task.config_hash for task in grid.expand()}
    indices = range(count) if index is None else (index,)
    table = []
    for i in indices:
        shard_hashes = {h for h in grid_hashes if int(h, 16) % count == i}
        shard_stale = {
            h for h in stored if h not in grid_hashes and int(h, 16) % count == i
        }
        completed = shard_hashes & stored
        table.append(
            {
                "shard": f"{i}/{count}",
                "tasks": len(shard_hashes),
                "completed": len(completed),
                "pending": len(shard_hashes - stored),
                "stale": len(shard_stale),
                "done": (
                    f"{100.0 * len(completed) / len(shard_hashes):.0f}%"
                    if shard_hashes
                    else "-"
                ),
            }
        )
    return table


def _cmd_status(args: argparse.Namespace) -> int:
    path = resolve_store_path(args.out)
    store = open_store(path)
    rows = store.rows()
    print(f"store: {path} ({store.backend}, {len(rows)} rows)")
    metadata = store.metadata()
    if metadata:
        created = metadata.get("created_at_iso") or metadata.get("created_at")
        version = metadata.get("code_version")
        provenance = ", ".join(
            part
            for part in (
                f"created {created}" if created else "",
                f"code version {version}" if version else "",
            )
            if part
        )
        if provenance:
            print(f"metadata: {provenance}")
    if rows:
        counts: dict[tuple[object, object, object], list[int]] = {}
        for row in rows:
            key = (
                row.get("task_type", DEFAULT_TASK_TYPE),
                row.get("protocol"),
                row.get("family"),
            )
            bucket = counts.setdefault(key, [0, 0])
            bucket[0] += 1
            bucket[1] += 1 if row.get("converged") else 0
        table = [
            {
                "task_type": task_type,
                "protocol": protocol,
                "family": family,
                "rows": total,
                "converged": converged,
            }
            for (task_type, protocol, family), (total, converged) in sorted(
                counts.items(), key=str
            )
        ]
        print(format_table(table))

    if args.shard and not _grid_requested(args):
        raise ValueError(
            "status --shard needs the grid options the campaign ran with "
            "(e.g. --protocol/--sizes), so the slices can be recomputed"
        )
    if _grid_requested(args):
        grid = _build_grid(args)
        grid_hashes = {task.config_hash for task in grid.expand()}
        stored = store.completed_hashes()
        completed = grid_hashes & stored
        pending = grid_hashes - stored
        stale = sorted(stored - grid_hashes)
        print(
            f"against grid: {len(grid_hashes)} tasks, {len(completed)} completed, "
            f"{len(pending)} pending, {len(stale)} stale"
        )
        # Progress/ETA from store timestamps: both backends stamp every row;
        # JSONL stores from before the per-row timestamps fall back to the
        # created_at .. mtime approximation.
        rate = store.throughput()
        if grid_hashes:
            percent = 100.0 * len(completed) / len(grid_hashes)
            progress_line = f"progress: {len(completed)}/{len(grid_hashes)} ({percent:.0f}%)"
            if rate is not None:
                progress_line += f", {rate:.2f} rows/s"
                if pending:
                    eta_seconds = len(pending) / rate
                    done_at = _utc_iso(time.time() + eta_seconds)
                    progress_line += f", ETA {_format_duration(eta_seconds)} (~{done_at})"
            elif pending:
                progress_line += ", rate unknown (no store timestamps yet)"
            print(progress_line)
        if args.shard:
            index, count = _parse_status_shard(args.shard)
            table = _shard_status_table(grid, stored, index, count)
            print(format_table(table, title=f"per-shard status ({count} slices)"))
        if stale:
            print(
                "stale rows (in the store but not in this grid -- the grid "
                "changed since they ran):"
            )
            shown = stale[:20]
            for config_hash in shown:
                print(f"  {config_hash}")
            if len(stale) > len(shown):
                print(f"  ... and {len(stale) - len(shown)} more")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    grid = _build_grid(args) if _grid_requested(args) else None
    # --once is the stateless snapshot mode: one plain-text frame, exit 0.
    iterations = 1 if args.once else args.iterations
    clear = False if (args.once or args.no_clear) else None
    return watch(
        args.out,
        grid=grid,
        interval=args.interval,
        iterations=iterations,
        rolling=args.rolling,
        clear=clear,
    )


def _cmd_merge(args: argparse.Namespace) -> int:
    source_paths = [resolve_store_path(source) for source in args.inputs]
    # Read and validate every source before touching the target, so neither a
    # typo'd path nor a bad row in a later source can leave a half-merged
    # store behind.
    sources: list[tuple[object, list[dict[str, object]]]] = []
    for source_path in source_paths:
        if not source_path.exists():
            raise ValueError(f"source store {source_path} does not exist")
        source_rows = open_store(source_path).rows()
        for row in source_rows:
            if not isinstance(row.get("config_hash"), str) or not row["config_hash"]:
                raise ValueError(
                    f"source store {source_path} has a row without a config_hash"
                )
        sources.append((source_path, source_rows))
    target = open_store(resolve_store_path(args.out))
    before = len(target)
    total_rows = 0
    for source_path, source_rows in sources:
        added = target.extend(source_rows)
        total_rows += len(source_rows)
        print(f"merged {source_path}: {len(source_rows)} rows, {added} new")
    print(
        f"merge: {total_rows} rows from {len(args.inputs)} store(s), "
        f"{len(target) - before} new, {len(target)} total -> {target.path}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = open_store(resolve_store_path(args.out))
    rows = sorted(store.rows(), key=lambda row: row.get("task_index", 0))
    if not rows:
        print("store is empty; run a campaign first")
        return 1
    if args.per_event:
        return _report_per_event(rows)
    if args.perf:
        return _report_perf(rows)
    if args.health:
        return _report_health(rows)
    if any(args.key not in row for row in rows):
        # Grouping needs the key in *every* row, so offer only the columns
        # every row shares (a mixed-task-type store has per-type extras).
        common = set(rows[0])
        for row in rows:
            common &= set(row)
        raise ValueError(
            f"column {args.key!r} missing from some stored rows; "
            f"columns present in every row: {', '.join(sorted(common))}"
        )
    metrics = metrics_for_rows(rows)
    aggregated = aggregate_rows(rows, by=args.key, metrics=metrics)
    print(format_table(aggregated, title=f"campaign aggregate by {args.key}"))
    metric = args.metric
    if metric is None or metric not in aggregated[0]:
        fallback = metrics[0][1]
        if metric is not None:
            print(f"metric {metric!r} not in this store's aggregates; using {fallback!r}")
        metric = fallback
    fit = fit_aggregate(aggregated, args.key, metric)
    if fit is None:
        print(
            f"fit of {metric} vs {args.key}: not available "
            f"(needs >= 2 distinct numeric key points)"
        )
    else:
        print(
            f"fit of {metric} vs {args.key}: slope={fit['slope']:.3f} "
            f"intercept={fit['intercept']:.3f} r_squared={fit['r_squared']:.3f}"
        )
    return 0


def _report_per_event(rows: list[dict[str, object]]) -> int:
    """The ``report --per-event`` view: recovery aggregates by event kind.

    Rebuilds :class:`~repro.analysis.recovery.ScenarioReport` objects from the
    ``event_records`` persisted in scenario task rows and feeds them to
    :func:`~repro.analysis.recovery.aggregate_event_recoveries`; rows without
    records (non-scenario tasks, pre-API stores) are counted and skipped.
    """
    from repro.analysis.recovery import ScenarioReport, aggregate_event_recoveries

    reports = []
    skipped = 0
    for row in rows:
        try:
            reports.append(ScenarioReport.from_row(row))
        except (KeyError, TypeError, ValueError):
            skipped += 1
    if not reports:
        print(
            "no stored rows carry per-event records; run a scenario campaign "
            "(--task-type scenario) with this code version first"
        )
        return 1
    aggregated = aggregate_event_recoveries(reports)
    print(
        format_table(
            aggregated,
            title=f"per-event recovery across {len(reports)} scenario runs",
        )
    )
    if skipped:
        print(f"note: {skipped} row(s) without per-event records were skipped")
    return 0


def _report_perf(rows: list[dict[str, object]]) -> int:
    """The ``report --perf`` view: where does the time go, across the store.

    Merges every stored ``perf`` summary (they merge associatively, see
    :func:`repro.obs.merge_summaries`) and renders the phase-time breakdown,
    the headline counters, and -- when sharded rows contributed -- the
    per-shard skew.  Rows without a summary (uninstrumented runs, pre-perf
    stores) are counted and skipped.
    """
    from repro.obs import merge_summaries, phase_seconds

    summaries = [row["perf"] for row in rows if isinstance(row.get("perf"), dict)]
    if not summaries:
        # Not an error: an uninstrumented store is the default state.  Say
        # clearly how to get perf rows and exit clean so scripts composing
        # 'report --perf' over many stores do not trip on the plain ones.
        print(
            f"none of the {len(rows)} stored rows carry perf summaries; "
            "re-run the campaign with 'repro-campaign run --perf' to collect "
            "phase timers (hashes and measured results are unchanged)"
        )
        return 0
    merged = merge_summaries(*summaries)
    total = phase_seconds(merged) or 1.0
    phase_table = [
        {
            "phase": name,
            "seconds": f"{stats['seconds']:.4f}",
            "calls": stats["count"],
            "share": f"{100.0 * stats['seconds'] / total:.1f}%",
        }
        for name, stats in sorted(
            merged.get("phases", {}).items(),
            key=lambda item: item[1]["seconds"],
            reverse=True,
        )
    ]
    print(
        format_table(
            phase_table,
            title=f"phase time across {len(summaries)} instrumented rows",
        )
    )
    counters = merged.get("counters", {})
    if counters:
        rendered = ", ".join(
            f"{name}={value:g}" for name, value in sorted(counters.items())
        )
        print(f"counters: {rendered}")
    shards = merged.get("shards", {})
    if shards:
        shard_table = [
            {
                "shard": index,
                "guard_eval_s": f"{phase_seconds(summary, 'guard_eval'):.4f}",
                "action_exec_s": f"{phase_seconds(summary, 'action_exec'):.4f}",
                "guards": summary.get("counters", {}).get("guards_evaluated", 0),
            }
            for index, summary in sorted(shards.items(), key=lambda item: int(item[0]))
        ]
        print(format_table(shard_table, title="per-shard worker time"))
    skipped = len(rows) - len(summaries)
    if skipped:
        print(f"note: {skipped} row(s) without perf summaries were skipped")
    return 0


def _report_health(rows: list[dict[str, object]]) -> int:
    """The ``report --health`` view: watchdog anomalies across the store.

    Aggregates the ``health`` blobs persisted by ``run --health`` (see
    :func:`repro.obs.health_summary`): monitored/anomalous counts, anomalies
    by kind, and one table row per flagged task.  Exits 1 iff anomalies were
    recorded, so the command doubles as a scriptable campaign health gate.
    """
    from repro.obs import health_summary

    summary = health_summary(rows)
    if not summary["monitored"]:
        print(
            f"none of the {len(rows)} stored rows carry health records; "
            "re-run the campaign with 'repro-campaign run --health' to attach "
            "the stall/divergence watchdog"
        )
        return 0
    print(
        f"health: {summary['monitored']}/{summary['rows']} rows monitored, "
        f"{summary['anomalous']} anomalous"
    )
    if not summary["anomalous"]:
        print("no anomalies recorded -- all monitored runs progressed and converged")
        return 0
    by_kind = ", ".join(
        f"{kind}={count}" for kind, count in sorted(summary["by_kind"].items())
    )
    print(f"anomalies by kind: {by_kind}")
    print(format_table(summary["flagged"], title="anomalous rows"))
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "merge":
            return _cmd_merge(args)
        return _cmd_report(args)
    except (ValueError, OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
