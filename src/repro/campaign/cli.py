"""Command-line interface for experiment campaigns.

::

    python -m repro.campaign run --protocol dftno --sizes 8:64 --jobs 4 --out results/
    python -m repro.campaign run --protocol dftno --sizes 8:64 --jobs 4 --out results/ --resume
    python -m repro.campaign status --out results/
    python -m repro.campaign report --out results/ --metric overlay_steps_mean

``run`` expands the declarative grid, skips tasks the JSONL store already
holds (``--resume``), executes the rest on ``--jobs`` workers and streams one
line per completed task.  ``status`` summarizes the store; ``report``
aggregates it into the thesis-style table plus a linear fit.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.campaign.aggregate import aggregate_rows, fit_aggregate
from repro.campaign.grid import DAEMONS, Grid, PROTOCOLS, parse_axis
from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore, resolve_store_path
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel, resumable experiment campaigns for the orientation protocols.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand a grid and execute its tasks")
    run.add_argument(
        "--protocol",
        action="append",
        dest="protocols",
        metavar="NAME",
        help=f"protocol to sweep (repeatable; default dftno; choices: {', '.join(PROTOCOLS)})",
    )
    run.add_argument(
        "--family",
        action="append",
        dest="families",
        metavar="NAME",
        help="topology family (repeatable; default random_connected)",
    )
    run.add_argument(
        "--sizes",
        default="8:32",
        metavar="SPEC",
        help="network sizes: '8,16,24' list, '8:64' doubling sweep, or '8:64:8' stepped (default 8:32)",
    )
    run.add_argument(
        "--heights",
        default=None,
        metavar="SPEC",
        help="tree heights (same spec syntax); switches the sweep to height-controlled trees",
    )
    run.add_argument(
        "--daemon",
        action="append",
        dest="daemons",
        metavar="KIND",
        help=f"daemon kind (repeatable; default distributed; choices: {', '.join(DAEMONS)})",
    )
    run.add_argument("--trials", type=int, default=3, help="trials per configuration (default 3)")
    run.add_argument("--seed", type=int, default=0, help="grid base seed (default 0)")
    run.add_argument(
        "--after-substrate",
        action="store_true",
        help="start from a configuration whose substrate layer is already stabilized",
    )
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--out",
        default="results",
        metavar="PATH",
        help="store directory or .jsonl file (default results/)",
    )
    run.add_argument(
        "--resume", action="store_true", help="skip tasks already completed in the store"
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")

    status = sub.add_parser("status", help="summarize a campaign store")
    status.add_argument("--out", default="results", metavar="PATH", help="store path")

    report = sub.add_parser("report", help="aggregate a store into a table and fit")
    report.add_argument("--out", default="results", metavar="PATH", help="store path")
    report.add_argument(
        "--key", default="parameter", help="row column to group by (default parameter)"
    )
    report.add_argument(
        "--metric",
        default="overlay_steps_mean",
        help="aggregated column to fit against the key (default overlay_steps_mean)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    grid = Grid(
        sizes=parse_axis(args.sizes),
        protocols=tuple(args.protocols or ("dftno",)),
        families=tuple(args.families or ("random_connected",)),
        daemons=tuple(args.daemons or ("distributed",)),
        heights=parse_axis(args.heights) if args.heights else None,
        trials=args.trials,
        seed=args.seed,
        after_substrate=args.after_substrate,
    )
    store = ResultStore(resolve_store_path(args.out))
    runner = CampaignRunner(store=store, jobs=args.jobs)

    def progress(row: dict[str, object]) -> None:
        if not args.quiet:
            status = "ok" if row.get("converged") else "DID NOT CONVERGE"
            print(
                f"[{row['task_index']}] {row['protocol']} {row['family']} "
                f"n={row['size']} daemon={row['daemon']} trial={row['trial']} "
                f"hash={row['config_hash']} ... {status}",
                flush=True,
            )

    result = runner.run(grid, resume=args.resume, progress=progress)
    print(
        f"campaign: {result.total} tasks, {result.executed} executed, "
        f"{result.skipped} skipped (resumed), {result.converged}/{result.total} converged "
        f"-> {store.path}"
    )
    return 0 if result.converged == result.total else 1


def _cmd_status(args: argparse.Namespace) -> int:
    path = resolve_store_path(args.out)
    store = ResultStore(path)
    rows = store.rows()
    print(f"store: {path} ({len(rows)} rows)")
    if not rows:
        return 0
    counts: dict[tuple[object, object], list[int]] = {}
    for row in rows:
        key = (row.get("protocol"), row.get("family"))
        bucket = counts.setdefault(key, [0, 0])
        bucket[0] += 1
        bucket[1] += 1 if row.get("converged") else 0
    table = [
        {"protocol": protocol, "family": family, "rows": total, "converged": converged}
        for (protocol, family), (total, converged) in sorted(counts.items(), key=str)
    ]
    print(format_table(table))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(resolve_store_path(args.out))
    rows = sorted(store.rows(), key=lambda row: row.get("task_index", 0))
    if not rows:
        print("store is empty; run a campaign first")
        return 1
    if any(args.key not in row for row in rows):
        raise ValueError(
            f"column {args.key!r} missing from stored rows; "
            f"available: {', '.join(sorted(rows[0]))}"
        )
    aggregated = aggregate_rows(rows, by=args.key)
    print(format_table(aggregated, title=f"campaign aggregate by {args.key}"))
    fit = fit_aggregate(aggregated, args.key, args.metric)
    if fit is None:
        print(f"fit of {args.metric} vs {args.key}: degenerate (fewer than 2 distinct points)")
    else:
        print(
            f"fit of {args.metric} vs {args.key}: slope={fit['slope']:.3f} "
            f"intercept={fit['intercept']:.3f} r_squared={fit['r_squared']:.3f}"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_report(args)
    except (ValueError, OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
