"""Declarative parameter grids for experiment campaigns.

A :class:`Grid` is the declarative description of a sweep -- the cross
product of protocols x topology families x sizes (x heights) x daemons x
trials.  :meth:`Grid.expand` turns it into a deterministic, ordered list of
:class:`TaskSpec` objects, one per run.

Every task carries a **config hash**: a stable digest of the fields that
identify the run (protocol, family, size, height, daemon, trial, grid seed,
starting-configuration mode).  The hash is what the result store keys on for
dedup and ``--resume``, and it is also the root of the task's seeds: the
network seed and the scheduler seed are both derived from the hash, so a task
produces the same rows no matter when, where, or on which worker it executes.

Grids also carry a **task type** (see :mod:`repro.campaign.registry`):
``stabilize`` is the default and hashes exactly as before the registry
existed, so pre-existing stores resume unchanged; ``scenario`` adds the
scenario name as an extra axis; any registered type can define its own
workload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Iterator, Sequence

from repro.campaign.registry import DEFAULT_TASK_TYPE, normalize_task_type
from repro.graphs.generators import FAMILY_NAMES

#: Protocol names the runner knows how to execute.  ``stno`` is accepted as an
#: alias for ``stno-bfs`` (the thesis's default spanning tree).
PROTOCOLS = ("dftno", "stno-bfs", "stno-dfs")
_PROTOCOL_ALIASES = {"stno": "stno-bfs"}

#: Daemon kinds understood by :func:`repro.runtime.daemon.make_daemon`.
DAEMONS = ("central", "distributed", "synchronous", "adversarial")

#: The synthetic family used for height-controlled sweeps (EXP-T2).
HEIGHT_TREE_FAMILY = "height_tree"

#: Fields of :class:`TaskSpec` that identify a *default-task-type* run.
#: ``task_type`` and ``scenario`` join the identity only for non-default
#: types, so the hashes (and stores) of existing stabilization grids stay
#: byte-identical.  Order matters only for display; the hash canonicalizes
#: with ``sort_keys``.
IDENTITY_FIELDS = (
    "protocol",
    "family",
    "size",
    "height",
    "daemon",
    "trial",
    "grid_seed",
    "after_substrate",
    "pair_networks",
)

#: The identity subset that defines a task's *topology*: with
#: ``pair_networks`` the network seed derives from these fields only, so every
#: protocol/daemon cell of a trial runs on the same network.
NETWORK_IDENTITY_FIELDS = ("family", "size", "height", "trial", "grid_seed")


def normalize_protocol(name: str) -> str:
    """Resolve aliases and validate a protocol name."""
    resolved = _PROTOCOL_ALIASES.get(name, name)
    if resolved not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS + tuple(_PROTOCOL_ALIASES))}"
        )
    return resolved


def normalize_daemon(kind: str) -> str:
    """Validate a daemon kind."""
    if kind not in DAEMONS:
        raise ValueError(f"unknown daemon kind {kind!r}; choose from {sorted(DAEMONS)}")
    return kind


def normalize_family(name: str) -> str:
    """Validate a sweepable topology family name."""
    if name not in FAMILY_NAMES:
        raise ValueError(
            f"unknown topology family {name!r}; choose from {sorted(FAMILY_NAMES)}"
        )
    return name


@dataclass(frozen=True)
class TaskSpec:
    """One fully-specified campaign run.

    ``index`` is the task's position in the expanded grid; it is *not* part of
    the identity (two grids that share a configuration share its hash even if
    the configuration sits at different positions).
    """

    protocol: str
    family: str
    size: int
    daemon: str
    trial: int
    grid_seed: int
    after_substrate: bool = False
    height: int | None = None
    pair_networks: bool = False
    task_type: str = DEFAULT_TASK_TYPE
    scenario: str | None = None
    workload: str | None = None
    index: int = field(default=0, compare=False)

    def identity(self) -> dict[str, object]:
        """The fields that define this configuration (hash input).

        For the default task type this is exactly the pre-registry identity,
        keeping hashes (and therefore stores, resumes and dedup) stable; other
        task types additionally carry ``task_type`` and, when set, the
        ``scenario`` name and the ``workload`` (so pre-existing ``msgpass``
        broadcast stores, which predate the workload axis, also keep their
        hashes).
        """
        identity: dict[str, object] = {
            name: getattr(self, name) for name in IDENTITY_FIELDS
        }
        if self.task_type != DEFAULT_TASK_TYPE:
            identity["task_type"] = self.task_type
            if self.scenario is not None:
                identity["scenario"] = self.scenario
            if self.workload is not None:
                identity["workload"] = self.workload
        return identity

    @property
    def config_hash(self) -> str:
        """Stable 16-hex-digit digest of the task's identity."""
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def _derived_seed(self, salt: str) -> int:
        digest = hashlib.sha256(f"{salt}:{self.config_hash}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    @property
    def task_seed(self) -> int:
        """The root per-task seed (derived from the config hash)."""
        return self._derived_seed("task")

    @property
    def network_seed(self) -> int:
        """Seed for the topology generator.

        With ``pair_networks`` the seed depends only on the topology identity
        (family, size, height, trial, grid seed), so every protocol/daemon
        combination of a trial is measured on the *same* network -- the
        paired design the daemon-ablation experiment (EXP-R2) relies on.
        """
        if self.pair_networks:
            blob = json.dumps(
                {name: getattr(self, name) for name in NETWORK_IDENTITY_FIELDS},
                sort_keys=True,
                separators=(",", ":"),
            )
            digest = hashlib.sha256(f"network:{blob}".encode("utf-8")).digest()
            return int.from_bytes(digest[:4], "big")
        return self._derived_seed("network")

    @property
    def run_seed(self) -> int:
        """Seed for the scheduler / starting configuration."""
        return self._derived_seed("run")

    @property
    def parameter(self) -> int:
        """The swept quantity this task contributes to (height or size)."""
        return self.height if self.height is not None else self.size


def _as_int_tuple(values: Sequence[int] | None, what: str) -> tuple[int, ...] | None:
    if values is None:
        return None
    out = tuple(int(value) for value in values)
    if not out:
        raise ValueError(f"{what} must not be empty")
    return out


def _dedup(values: tuple | None) -> tuple | None:
    if values is None:
        return None
    return tuple(dict.fromkeys(values))


@dataclass(frozen=True)
class Grid:
    """A declarative experiment sweep: the cross product of its axes.

    ``heights`` switches the grid to height-controlled trees (EXP-T2 style):
    each task then runs on a tree with ``size`` processors and exactly the
    requested root-to-leaf height, and the ``families`` axis is replaced by
    the synthetic ``height_tree`` family.

    ``task_type`` selects what each task computes (see
    :mod:`repro.campaign.registry`); with ``task_type="scenario"`` the
    ``scenarios`` tuple of library scenario names becomes an additional axis,
    and with ``task_type="msgpass"`` the ``workloads`` tuple (broadcast,
    traversal, election) does.  ``broadcast`` is the default workload and is
    never hashed, so pre-workload-axis msgpass stores keep their hashes.
    """

    sizes: tuple[int, ...] = (8, 16, 32)
    protocols: tuple[str, ...] = ("dftno",)
    families: tuple[str, ...] = ("random_connected",)
    daemons: tuple[str, ...] = ("distributed",)
    heights: tuple[int, ...] | None = None
    trials: int = 1
    seed: int = 0
    after_substrate: bool = False
    pair_networks: bool = False
    task_type: str = DEFAULT_TASK_TYPE
    scenarios: tuple[str, ...] | None = None
    workloads: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "task_type", normalize_task_type(self.task_type))
        if self.task_type == "scenario":
            if not self.scenarios:
                raise ValueError('task_type="scenario" needs a non-empty scenarios tuple')
            from repro.scenarios.library import normalize_scenario

            object.__setattr__(
                self,
                "scenarios",
                _dedup(tuple(normalize_scenario(name) for name in self.scenarios)),
            )
        elif self.scenarios:
            raise ValueError(
                f"scenarios only apply to task_type='scenario' (got {self.task_type!r})"
            )
        else:
            object.__setattr__(self, "scenarios", None)
        if self.workloads:
            if self.task_type != "msgpass":
                raise ValueError(
                    f"workloads only apply to task_type='msgpass' (got {self.task_type!r})"
                )
            from repro.api.spec import WORKLOADS

            unknown = [name for name in self.workloads if name not in WORKLOADS]
            if unknown:
                raise ValueError(
                    f"unknown workloads {unknown}; choose from {sorted(WORKLOADS)}"
                )
            object.__setattr__(self, "workloads", _dedup(tuple(self.workloads)))
            if "election" in self.workloads and (
                self.heights is not None or any(name != "ring" for name in self.families)
            ):
                raise ValueError(
                    "the election workload runs on rings; use families=('ring',)"
                )
        else:
            object.__setattr__(self, "workloads", None)
        # Axes are deduplicated order-preservingly: aliases ("stno" and
        # "stno-bfs") or repeated values would otherwise expand to tasks with
        # identical config hashes, double-counting their rows.
        object.__setattr__(self, "sizes", _dedup(_as_int_tuple(self.sizes, "sizes")))
        object.__setattr__(self, "heights", _dedup(_as_int_tuple(self.heights, "heights")))
        object.__setattr__(
            self, "protocols", _dedup(tuple(normalize_protocol(name) for name in self.protocols))
        )
        object.__setattr__(
            self, "daemons", _dedup(tuple(normalize_daemon(kind) for kind in self.daemons))
        )
        if self.heights is not None:
            object.__setattr__(self, "families", (HEIGHT_TREE_FAMILY,))
        else:
            object.__setattr__(
                self, "families", _dedup(tuple(normalize_family(name) for name in self.families))
            )
        if not self.protocols:
            raise ValueError("protocols must not be empty")
        if not self.families:
            raise ValueError("families must not be empty")
        if not self.daemons:
            raise ValueError("daemons must not be empty")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.heights is not None:
            for size in self.sizes:
                for height in self.heights:
                    if not 1 <= height <= size - 1:
                        raise ValueError(
                            f"height {height} out of range 1..{size - 1} for size {size}"
                        )

    def __len__(self) -> int:
        heights = len(self.heights) if self.heights is not None else 1
        scenarios = len(self.scenarios) if self.scenarios is not None else 1
        workloads = len(self.workloads) if self.workloads is not None else 1
        return (
            len(self.protocols)
            * len(self.families)
            * len(self.sizes)
            * heights
            * len(self.daemons)
            * scenarios
            * workloads
            * self.trials
        )

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self.expand())

    def expand(self) -> list[TaskSpec]:
        """The grid's tasks, in deterministic axis-major order."""
        tasks: list[TaskSpec] = []
        height_axis: tuple[int | None, ...] = self.heights if self.heights is not None else (None,)
        scenario_axis: tuple[str | None, ...] = (
            self.scenarios if self.scenarios is not None else (None,)
        )
        # "broadcast" is the default workload: storing it as None keeps the
        # config hash of pre-workload-axis msgpass grids byte-identical.
        workload_axis: tuple[str | None, ...] = (
            tuple(None if name == "broadcast" else name for name in self.workloads)
            if self.workloads is not None
            else (None,)
        )
        for protocol in self.protocols:
            for family in self.families:
                for size in self.sizes:
                    for height in height_axis:
                        for daemon in self.daemons:
                            for scenario in scenario_axis:
                                for workload in workload_axis:
                                    for trial in range(self.trials):
                                        tasks.append(
                                            TaskSpec(
                                                protocol=protocol,
                                                family=family,
                                                size=size,
                                                daemon=daemon,
                                                trial=trial,
                                                grid_seed=self.seed,
                                                after_substrate=self.after_substrate,
                                                height=height,
                                                pair_networks=self.pair_networks,
                                                task_type=self.task_type,
                                                scenario=scenario,
                                                workload=workload,
                                                index=len(tasks),
                                            )
                                        )
        return tasks

    def shard(self, index: int, count: int) -> list[TaskSpec]:
        """Deterministic hash-keyed slice ``index`` of ``count`` of this grid.

        A task belongs to shard ``index`` iff ``config_hash mod count ==
        index``, so the ``count`` slices are disjoint, cover the grid, and --
        because the key is the same config hash the stores dedup on -- a task
        lands in the same shard on every machine, for any axis order, whether
        or not other machines' grids were edited.  Run each slice on its own
        machine (``repro-campaign run --shard I/K``) and re-unite the stores
        with ``repro-campaign merge``.
        """
        if count < 1:
            raise ValueError(f"shard count must be >= 1 (got {count})")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} out of range 0..{count - 1}")
        return [
            task for task in self.expand() if int(task.config_hash, 16) % count == index
        ]

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly description of the grid (for store metadata / logs)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def parse_axis(text: str) -> tuple[int, ...]:
    """Parse a CLI axis spec into a tuple of integers.

    Three forms are accepted:

    * ``"8,16,24"`` -- an explicit comma-separated list;
    * ``"8:64"`` -- a doubling sweep from 8 up to 64 (``8, 16, 32, 64``);
    * ``"8:64:8"`` -- an arithmetic sweep with the given step.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty axis spec")
    if ":" in text:
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"bad range spec {text!r}; use start:stop or start:stop:step")
        start, stop = int(parts[0]), int(parts[1])
        if start < 1 or stop < start:
            raise ValueError(f"bad range spec {text!r}; need 1 <= start <= stop")
        if len(parts) == 3:
            step = int(parts[2])
            if step < 1:
                raise ValueError(f"bad range spec {text!r}; step must be >= 1")
            return tuple(range(start, stop + 1, step))
        values = []
        value = start
        while value <= stop:
            values.append(value)
            value *= 2
        return tuple(values)
    return tuple(int(part) for part in text.split(","))


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a CLI shard spec ``"I/K"`` into ``(index, count)``.

    ``I`` is 0-based: ``--shard 0/4`` .. ``--shard 3/4`` cover a grid.
    """
    parts = text.strip().split("/")
    if len(parts) != 2:
        raise ValueError(f"bad shard spec {text!r}; use INDEX/COUNT, e.g. 0/4")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise ValueError(f"bad shard spec {text!r}; use INDEX/COUNT, e.g. 0/4") from exc
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"bad shard spec {text!r}; need 0 <= INDEX < COUNT (COUNT >= 1)"
        )
    return index, count


__all__ = [
    "DAEMONS",
    "Grid",
    "HEIGHT_TREE_FAMILY",
    "IDENTITY_FIELDS",
    "NETWORK_IDENTITY_FIELDS",
    "PROTOCOLS",
    "TaskSpec",
    "normalize_daemon",
    "normalize_family",
    "normalize_protocol",
    "parse_axis",
    "parse_shard",
]
