"""The task-type registry: how campaigns learn new kinds of work.

A *task type* maps a fully-specified :class:`~repro.campaign.grid.TaskSpec`
to one flat result row.  The registry decouples the campaign machinery
(grids, stores, resume, aggregation) from what a task actually computes, so
new workloads plug in without touching the runner:

>>> from repro.campaign.registry import register_task_type
>>> @register_task_type("my_workload")
... def run_my_workload(spec):
...     return {"converged": True, "n": spec.size}

The built-in types live in :mod:`repro.campaign.tasks` (``stabilize`` --
today's stabilization runs, ``scenario`` -- fault-injection scenarios,
``msgpass`` -- message-passing workloads) and are registered lazily the
first time any registry lookup happens, so importing the grid module alone
stays cheap.

Registration is per-process.  When running with ``jobs > 1`` on a platform
whose ``multiprocessing`` start method is *spawn* (macOS, Windows), define
custom task types at module level in a module the workers import (anything
imported as a side effect of unpickling :func:`repro.campaign.runner.run_task`
works); a handler registered only inside ``if __name__ == "__main__"`` exists
in the parent process alone and workers will reject its task type.
"""

from __future__ import annotations

from typing import Callable, Dict

#: The task type existing grids implicitly use; its rows and config hashes
#: are guaranteed to stay byte-identical to the pre-registry behavior.
DEFAULT_TASK_TYPE = "stabilize"

TaskHandler = Callable[..., dict]

_TASK_TYPES: Dict[str, TaskHandler] = {}


def register_task_type(name: str) -> Callable[[TaskHandler], TaskHandler]:
    """Register ``handler`` as the executor for task type ``name`` (decorator)."""
    if not name:
        raise ValueError("a task type needs a non-empty name")

    def decorate(handler: TaskHandler) -> TaskHandler:
        if name in _TASK_TYPES and _TASK_TYPES[name] is not handler:
            raise ValueError(f"task type {name!r} is already registered")
        _TASK_TYPES[name] = handler
        return handler

    return decorate


def _ensure_builtin_types() -> None:
    # Imported lazily: tasks.py pulls in the measurement harness and the
    # scenario engine, which themselves import the grid module this registry
    # serves -- a module-level import would be circular.
    if DEFAULT_TASK_TYPE not in _TASK_TYPES:
        import repro.campaign.tasks  # noqa: F401  (registers the built-ins)


def task_type_names() -> tuple[str, ...]:
    """All registered task type names, sorted."""
    _ensure_builtin_types()
    return tuple(sorted(_TASK_TYPES))


def normalize_task_type(name: str) -> str:
    """Validate a task type name against the registry."""
    if name == DEFAULT_TASK_TYPE:
        # Short-circuit: default grids (and pool workers expanding them) must
        # not pay the full measurement/scenario import the built-ins pull in.
        return name
    _ensure_builtin_types()
    if name not in _TASK_TYPES:
        raise ValueError(
            f"unknown task type {name!r}; choose from {', '.join(task_type_names())}"
        )
    return name


def get_task_handler(name: str) -> TaskHandler:
    """The handler registered for task type ``name``."""
    _ensure_builtin_types()
    if name not in _TASK_TYPES:
        raise ValueError(
            f"unknown task type {name!r}; choose from {', '.join(task_type_names())}"
        )
    return _TASK_TYPES[name]


__all__ = [
    "DEFAULT_TASK_TYPE",
    "TaskHandler",
    "get_task_handler",
    "normalize_task_type",
    "register_task_type",
    "task_type_names",
]
