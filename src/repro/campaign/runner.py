"""Campaign execution: run grid tasks serially or across a process pool.

:func:`run_task` is the single unit of work -- it rebuilds the task's network
and daemon from the spec's hash-derived seeds, measures stabilization with the
existing :mod:`repro.analysis.convergence` harness and returns one flat result
row.  Because everything a task needs is derived from its config hash, a row
is identical whether it ran serially, on a pool worker, or in a resumed
campaign -- which is what makes ``--jobs 1`` and ``--jobs 4`` equivalent.

:class:`CampaignRunner` drives a whole :class:`~repro.campaign.grid.Grid`:
it skips tasks the store has already completed (``resume=True``), streams the
remaining ones through ``multiprocessing.Pool.imap`` (ordered, so the store's
line order matches the grid order regardless of worker count) and appends
each row to the store the moment it completes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.analysis.convergence import height_controlled_tree, measure_dftno, measure_stno
from repro.campaign.grid import Grid, TaskSpec
from repro.campaign.store import ResultStore
from repro.graphs import generators
from repro.runtime.daemon import make_daemon

ProgressCallback = Callable[[dict[str, object]], None]


def run_task(spec: TaskSpec) -> dict[str, object]:
    """Execute one campaign task and return its flat result row.

    The row merges the stabilization sample (``n``, ``converged``,
    ``overlay_steps``, ...) with the task's identity fields and hash, so a
    store row is self-describing and can be re-aggregated without the grid.
    """
    if spec.height is not None:
        network = height_controlled_tree(spec.size, spec.height, seed=spec.network_seed)
    else:
        network = generators.family(spec.family, spec.size, seed=spec.network_seed)
    daemon = make_daemon(spec.daemon)
    if spec.protocol == "dftno":
        sample = measure_dftno(
            network,
            daemon=daemon,
            seed=spec.run_seed,
            parameter=spec.parameter,
            after_substrate=spec.after_substrate,
        )
    else:
        tree = spec.protocol.split("-", 1)[1]
        sample = measure_stno(
            network,
            tree=tree,
            daemon=daemon,
            seed=spec.run_seed,
            parameter=spec.parameter,
            after_substrate=spec.after_substrate,
        )
    row = sample.as_row()
    row.update(spec.identity())
    row["config_hash"] = spec.config_hash
    row["task_index"] = spec.index
    return row


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    total: int
    executed: int
    skipped: int
    rows: list[dict[str, object]]

    @property
    def converged(self) -> int:
        return sum(1 for row in self.rows if row.get("converged"))


class CampaignRunner:
    """Execute grids against an optional persistent store.

    ``jobs <= 1`` runs in-process; ``jobs > 1`` fans tasks out to a
    ``multiprocessing`` pool.  Results stream back in grid order either way.
    """

    def __init__(self, store: ResultStore | None = None, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.jobs = jobs

    def iter_results(
        self, pending: list[TaskSpec]
    ) -> Iterator[dict[str, object]]:
        """Yield result rows for ``pending`` tasks as they complete, in order."""
        if self.jobs <= 1 or len(pending) <= 1:
            for spec in pending:
                yield run_task(spec)
            return
        with multiprocessing.Pool(processes=self.jobs) as pool:
            # Ordered imap (not imap_unordered): rows still stream as workers
            # finish, but the store's line order stays the grid order, making
            # the JSONL file byte-identical for any --jobs value.
            yield from pool.imap(run_task, pending, chunksize=1)

    def run(
        self,
        grid: Grid,
        resume: bool = False,
        progress: ProgressCallback | None = None,
    ) -> CampaignResult:
        """Run every task of ``grid`` that the store has not already completed.

        With ``resume=True`` (and a store) completed tasks are skipped and
        their stored rows are spliced into the returned ``rows`` list, which
        is always in grid order and always covers the whole grid.
        """
        tasks = grid.expand()
        existing: dict[str, dict[str, object]] = {}
        if resume and self.store is not None:
            existing = self.store.rows_by_hash()
        pending = [task for task in tasks if task.config_hash not in existing]

        fresh: dict[str, dict[str, object]] = {}
        for row in self.iter_results(pending):
            if self.store is not None:
                self.store.append(row)
            fresh[str(row["config_hash"])] = row
            if progress is not None:
                progress(row)

        rows = [
            fresh.get(task.config_hash, existing.get(task.config_hash))
            for task in tasks
        ]
        return CampaignResult(
            total=len(tasks),
            executed=len(pending),
            skipped=len(tasks) - len(pending),
            rows=[row for row in rows if row is not None],
        )


def run_grid(
    grid: Grid,
    store: ResultStore | None = None,
    jobs: int = 1,
    resume: bool = False,
    progress: ProgressCallback | None = None,
) -> CampaignResult:
    """Convenience wrapper: ``CampaignRunner(store, jobs).run(grid, ...)``."""
    return CampaignRunner(store=store, jobs=jobs).run(grid, resume=resume, progress=progress)


__all__ = ["CampaignResult", "CampaignRunner", "ProgressCallback", "run_grid", "run_task"]
