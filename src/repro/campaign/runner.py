"""Campaign execution: run grid tasks serially or across a process pool.

:func:`run_task` is the single unit of work -- it looks the task's type up in
the registry (:mod:`repro.campaign.registry`), lets the handler rebuild the
network/protocol/daemon from the spec's hash-derived seeds and compute one
flat result row, then stamps the spec's identity fields and config hash onto
it.  Because everything a task needs is derived from its config hash, a row
is identical whether it ran serially, on a pool worker, or in a resumed
campaign -- which is what makes ``--jobs 1`` and ``--jobs 4`` equivalent.

:class:`CampaignRunner` drives a whole :class:`~repro.campaign.grid.Grid`:
it skips tasks the store has already completed (``resume=True``), streams the
remaining ones through ``multiprocessing.Pool.imap`` (ordered, so the store's
line order matches the grid order regardless of worker count) and appends
each row to the store the moment it completes.  Rows in the store whose hash
the grid no longer produces (the grid was edited since they ran) are counted
as *stale* and reported instead of silently ignored.
"""

from __future__ import annotations

import inspect
import multiprocessing
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator

from repro.campaign.grid import Grid, TaskSpec
from repro.campaign.registry import get_task_handler
from repro.campaign.store import BaseResultStore

ProgressCallback = Callable[[dict[str, object]], None]


class _LiveProgressEmitter:
    """Prefix live-progress lines with the task identity.

    A module-level class (not a closure) so the ``--live`` observer pickles
    into pool workers.
    """

    def __init__(self, label: str) -> None:
        self.label = label

    def __call__(self, message: str) -> None:
        print(f"  [{self.label}] {message}", flush=True)


def _handler_accepts(handler: Callable[..., dict], keyword: str) -> bool:
    """Whether a task handler can receive ``keyword``.

    Built-in handlers accept both ``observers`` and ``instrument``;
    third-party registrations predating those modes may not, and silently
    run without them.
    """
    try:
        parameters = inspect.signature(handler).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return keyword in parameters or any(
        parameter.kind == inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def _handler_accepts_observers(handler: Callable[..., dict]) -> bool:
    """Back-compat alias for :func:`_handler_accepts` with ``observers``."""
    return _handler_accepts(handler, "observers")


def run_task(
    spec: TaskSpec,
    live_every: int | None = None,
    perf: bool = False,
    telemetry: bool | int = False,
    health: bool | int = False,
    record: "bool | str | None" = None,
) -> dict[str, object]:
    """Execute one campaign task and return its flat result row.

    The row merges the handler's measurement (``n``, ``converged``, and the
    task-type-specific metrics) with the task's identity fields and hash, so
    a store row is self-describing and can be re-aggregated without the grid.

    ``live_every`` switches on per-step/round live progress *inside* the
    task: a :class:`~repro.runtime.observers.ProgressObserver` emitting a
    prefixed line every that many steps (plus scenario events and the
    convergence line) rides the engine's observer stream.  Observers never
    influence the measurement, so rows are identical with and without.

    ``perf`` attaches an :class:`~repro.obs.Instrumentation` registry to the
    run, embedding its phase-timer/counter summary in ``row["perf"]`` (read
    back with ``repro-campaign report --perf``).  Perf changes neither the
    measured execution nor the row's config hash -- only the extra ``perf``
    entry distinguishes an instrumented row.

    ``telemetry`` (``True`` or an int stride) samples the convergence
    time-series into ``row["telemetry"]``; ``health`` (``True`` or an int
    round budget) attaches the stall/budget watchdog, its anomalies landing
    in ``row["health"]``.  Like ``perf``, both are observer-stream-only:
    rows differ from unmonitored ones only by the extra keys.

    ``record`` (``True`` or a directory path) attaches the execution flight
    recorder: each task writes a replayable causal event log (keyed by its
    spec's canonical hash) and its row -- plus any health anomalies in it --
    gains a ``flight_log`` pointer.  Task types without a recordable
    execution stream (``msgpass``) simply run unrecorded.
    """
    handler = get_task_handler(spec.task_type)
    kwargs: dict[str, object] = {}
    if live_every and _handler_accepts(handler, "observers"):
        from repro.runtime.observers import ProgressObserver

        observer = ProgressObserver(
            every_steps=live_every,
            emit=_LiveProgressEmitter(f"task {spec.index} {spec.protocol} n={spec.size}"),
        )
        kwargs["observers"] = (observer,)
    if perf and _handler_accepts(handler, "instrument"):
        kwargs["instrument"] = True
    if telemetry and _handler_accepts(handler, "telemetry"):
        kwargs["telemetry"] = telemetry
    if health and _handler_accepts(handler, "health"):
        kwargs["health"] = health
    if record and _handler_accepts(handler, "record"):
        kwargs["record"] = record
    row = handler(spec, **kwargs)
    row.update(spec.identity())
    row["config_hash"] = spec.config_hash
    row["task_index"] = spec.index
    return row


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call.

    ``stale_hashes`` are config hashes found in the store that the grid no
    longer contains -- the signature of a grid edited since those rows ran.
    They are never deleted (another shard's grid may still own them) but are
    surfaced so ``--resume`` cannot silently orphan results.
    """

    total: int
    executed: int
    skipped: int
    rows: list[dict[str, object]]
    stale_hashes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def converged(self) -> int:
        return sum(1 for row in self.rows if row.get("converged"))

    @property
    def stale(self) -> int:
        return len(self.stale_hashes)


class CampaignRunner:
    """Execute grids against an optional persistent store.

    ``jobs <= 1`` runs in-process; ``jobs > 1`` fans tasks out to a
    ``multiprocessing`` pool.  Results stream back in grid order either way.
    ``live_every`` enables in-task live progress (see :func:`run_task`);
    with a pool the lines interleave across workers, each prefixed with its
    task identity.
    """

    def __init__(
        self,
        store: BaseResultStore | None = None,
        jobs: int = 1,
        live_every: int | None = None,
        perf: bool = False,
        telemetry: bool | int = False,
        health: bool | int = False,
        record: "bool | str | None" = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if live_every is not None and live_every < 1:
            raise ValueError("live_every must be >= 1")
        self.store = store
        self.jobs = jobs
        self.live_every = live_every
        self.perf = perf
        self.telemetry = telemetry
        self.health = health
        self.record = record

    def iter_results(
        self, pending: list[TaskSpec]
    ) -> Iterator[dict[str, object]]:
        """Yield result rows for ``pending`` tasks as they complete, in order."""
        plain = (
            self.live_every is None
            and not self.perf
            and not self.telemetry
            and not self.health
            and not self.record
        )
        task_runner = (
            run_task
            if plain
            else partial(
                run_task,
                live_every=self.live_every,
                perf=self.perf,
                telemetry=self.telemetry,
                health=self.health,
                record=self.record,
            )
        )
        if self.jobs <= 1 or len(pending) <= 1:
            for spec in pending:
                yield task_runner(spec)
            return
        with multiprocessing.Pool(processes=self.jobs) as pool:
            # Ordered imap (not imap_unordered): rows still stream as workers
            # finish, but the store's line order stays the grid order, making
            # the stored rows identical for any --jobs value.
            yield from pool.imap(task_runner, pending, chunksize=1)

    def run(
        self,
        grid: Grid,
        resume: bool = False,
        progress: ProgressCallback | None = None,
        shard: tuple[int, int] | None = None,
    ) -> CampaignResult:
        """Run every task of ``grid`` that the store has not already completed.

        With ``resume=True`` (and a store) completed tasks are skipped and
        their stored rows are spliced into the returned ``rows`` list, which
        is always in grid order and always covers the whole grid.  ``shard``
        = ``(index, count)`` restricts execution to that hash-keyed slice of
        the grid (see :meth:`~repro.campaign.grid.Grid.shard`) -- the
        multi-machine split that ``merge`` later re-unites; staleness is
        still judged against the *whole* grid, so one shard never flags the
        other shards' rows.
        """
        tasks = grid.shard(*shard) if shard is not None else grid.expand()
        existing: dict[str, dict[str, object]] = {}
        if resume and self.store is not None:
            existing = self.store.rows_by_hash()
        pending = [task for task in tasks if task.config_hash not in existing]
        whole_grid = grid.expand() if shard is not None else tasks
        grid_hashes = {task.config_hash for task in whole_grid}
        stale = tuple(sorted(h for h in existing if h not in grid_hashes))

        fresh: dict[str, dict[str, object]] = {}
        for row in self.iter_results(pending):
            if self.store is not None:
                self.store.append(row)
            fresh[str(row["config_hash"])] = row
            if progress is not None:
                progress(row)

        rows = [
            fresh.get(task.config_hash, existing.get(task.config_hash))
            for task in tasks
        ]
        return CampaignResult(
            total=len(tasks),
            executed=len(pending),
            skipped=len(tasks) - len(pending),
            rows=[row for row in rows if row is not None],
            stale_hashes=stale,
        )


def run_grid(
    grid: Grid,
    store: BaseResultStore | None = None,
    jobs: int = 1,
    resume: bool = False,
    progress: ProgressCallback | None = None,
    live_every: int | None = None,
    shard: tuple[int, int] | None = None,
    perf: bool = False,
    telemetry: bool | int = False,
    health: bool | int = False,
    record: "bool | str | None" = None,
) -> CampaignResult:
    """Convenience wrapper: ``CampaignRunner(store, jobs).run(grid, ...)``."""
    return CampaignRunner(
        store=store,
        jobs=jobs,
        live_every=live_every,
        perf=perf,
        telemetry=telemetry,
        health=health,
        record=record,
    ).run(grid, resume=resume, progress=progress, shard=shard)


__all__ = ["CampaignResult", "CampaignRunner", "ProgressCallback", "run_grid", "run_task"]
