"""Persistent result stores keyed by config hash: JSONL and SQLite backends.

Every backend implements the same small interface
(:class:`BaseResultStore`): append-only result rows keyed (and deduplicated)
by ``config_hash``, plus **store-level metadata** -- the grid description,
the code version and the creation time -- so a store file is self-describing
provenance, not just a pile of rows.  :func:`open_store` picks the backend
from the path suffix: ``.sqlite`` / ``.db`` -> SQLite, anything else ->
JSON-lines.

The JSONL backend (:class:`JsonlResultStore`, historically ``ResultStore``)
is a plain append-only file: one result row per line, flushed and fsynced
per append, tolerant of a crash-truncated final line, with metadata stored
as dedicated ``{"__store_meta__": ...}`` lines (later lines win) so old
stores remain readable byte-for-byte.  Each written line additionally
carries an ISO append timestamp under the reserved ``__row_ts__`` key --
stripped again by :meth:`~JsonlResultStore.rows`, so row consumers never see
it -- which makes the JSONL backend's throughput / ETA estimate exact like
the SQLite one (old stores without the key fall back to the historical
``created_at`` .. file-mtime approximation).

The SQLite backend (:class:`SqliteResultStore`) keeps rows in a table with a
unique hash index and a per-row ``created_at`` timestamp -- the timestamps
power ``repro-campaign status``'s rows-per-second / ETA estimate -- and
metadata in a key/value table.  Appends commit per row, so a killed campaign
loses at most the row being written, same as JSONL.

Rows are opaque dictionaries to both backends: campaigns run with ``--perf``
persist each row's instrumentation summary under a ``perf`` key (read back
by ``repro-campaign report --perf``), and rows written without it are
byte-identical to pre-observability stores -- same hashes, same shapes.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from abc import ABC, abstractmethod
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable

#: Default store filename when a campaign is pointed at a directory.
DEFAULT_STORE_NAME = "campaign.jsonl"

#: Path suffixes that select the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".db")

#: The JSONL key marking a metadata line (never a result row).
META_KEY = "__store_meta__"

#: The JSONL key carrying a row's ISO append timestamp (stripped by reads).
ROW_TS_KEY = "__row_ts__"


def resolve_store_path(out: str | os.PathLike[str]) -> Path:
    """Map a CLI ``--out`` value to a concrete store file path.

    A path ending in ``.jsonl``, ``.sqlite`` or ``.db`` is used as-is;
    anything else is treated as a directory that will contain
    :data:`DEFAULT_STORE_NAME`.
    """
    path = Path(out)
    if path.suffix == ".jsonl" or path.suffix in SQLITE_SUFFIXES:
        return path
    return path / DEFAULT_STORE_NAME


def open_store(path: str | os.PathLike[str]) -> "BaseResultStore":
    """Open the store at ``path`` with the backend its suffix selects."""
    resolved = Path(path)
    if resolved.suffix in SQLITE_SUFFIXES:
        return SqliteResultStore(resolved)
    return JsonlResultStore(resolved)


class BaseResultStore(ABC):
    """The store interface campaigns run against.

    Rows are flat JSON-serializable dictionaries carrying a non-empty
    ``config_hash``; appending an already-stored hash is a no-op.  Metadata
    is a plain string-keyed dictionary merged by :meth:`update_metadata`.
    """

    #: Short backend identifier shown by ``repro-campaign status``.
    backend: str = "store"

    def __init__(self, path: str | os.PathLike[str]):
        self.path = Path(path)

    # -- rows ------------------------------------------------------------
    @abstractmethod
    def append(self, row: dict[str, object]) -> bool:
        """Durably append one result row; ``False`` if its hash is stored."""

    @abstractmethod
    def extend(self, rows: Iterable[dict[str, object]]) -> int:
        """Append many rows in one transaction; returns how many were new."""

    @abstractmethod
    def rows(self) -> list[dict[str, object]]:
        """All stored rows in append order, deduplicated by config hash."""

    # -- metadata and provenance -----------------------------------------
    @abstractmethod
    def metadata(self) -> dict[str, object]:
        """Store-level metadata (grid description, code version, created-at)."""

    @abstractmethod
    def update_metadata(self, **entries: object) -> None:
        """Merge ``entries`` into the store metadata (later values win)."""

    @abstractmethod
    def time_window(self) -> tuple[float, float] | None:
        """(first, last) append timestamps, or ``None`` when unknown.

        Both backends stamp every row (SQLite in a column, JSONL as a
        reserved per-line key); JSONL stores written before the per-row
        timestamps existed fall back to the metadata ``created_at`` and the
        file's mtime.
        """

    # -- shared conveniences ----------------------------------------------
    def throughput(self) -> float | None:
        """Observed rows per second, or ``None`` when it cannot be estimated."""
        window = self.time_window()
        if window is None or len(self) < 2:
            return None
        first, last = window
        if last <= first:
            return None
        return len(self) / (last - first)

    def __len__(self) -> int:
        return len(self.completed_hashes())

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self.completed_hashes()

    def completed_hashes(self) -> set[str]:
        """Config hashes with a completed row in the store."""
        return {
            row["config_hash"]
            for row in self.rows()
            if isinstance(row.get("config_hash"), str)
        }

    def rows_by_hash(self) -> dict[str, dict[str, object]]:
        """Stored rows indexed by config hash."""
        return {
            row["config_hash"]: row
            for row in self.rows()
            if isinstance(row.get("config_hash"), str)
        }

    @staticmethod
    def _require_hash(row: dict[str, object]) -> str:
        config_hash = row.get("config_hash")
        if not isinstance(config_hash, str) or not config_hash:
            raise ValueError("result rows must carry a non-empty 'config_hash'")
        return config_hash


class JsonlResultStore(BaseResultStore):
    """Append-only JSONL result store with hash-based dedup.

    * **crash-safe appends** -- every row is written, flushed and fsynced as
      one line, so a killed campaign loses at most the row being written;
    * **tolerant reads** -- a truncated final line (the signature of a crash)
      is skipped instead of poisoning the file;
    * **dedup / resume** -- rows are keyed by config hash;
      :meth:`completed_hashes` is exactly the skip set a resumed campaign
      needs.
    """

    backend = "jsonl"

    def __init__(self, path: str | os.PathLike[str]):
        super().__init__(path)
        self._hashes: set[str] = set()
        self._metadata: dict[str, object] = {}
        # Per-row append timestamps, folded into (first, last, count) during
        # the load pass and kept current by append/extend, so time_window()
        # and throughput() never re-read the file.
        self._ts_first: float | None = None
        self._ts_last: float | None = None
        self._ts_count = 0
        self._load()
        self._needs_newline = self._missing_trailing_newline()

    def _note_timestamp(self, moment: float) -> None:
        self._ts_first = moment if self._ts_first is None else min(self._ts_first, moment)
        self._ts_last = moment if self._ts_last is None else max(self._ts_last, moment)
        self._ts_count += 1

    def _load(self) -> None:
        for parsed in self._parsed_lines():
            if META_KEY in parsed:
                meta = parsed[META_KEY]
                if isinstance(meta, dict):
                    self._metadata.update(meta)
            elif isinstance(parsed.get("config_hash"), str):
                self._hashes.add(parsed["config_hash"])
                stamp = parsed.get(ROW_TS_KEY)
                if isinstance(stamp, str):
                    try:
                        self._note_timestamp(datetime.fromisoformat(stamp).timestamp())
                    except ValueError:
                        pass

    def _parsed_lines(self) -> Iterable[dict]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(parsed, dict):
                    yield parsed

    def _missing_trailing_newline(self) -> bool:
        # A file left by a crash mid-write may end without a newline; the next
        # append must not concatenate onto that torn line.
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def __len__(self) -> int:
        return len(self._hashes)

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self._hashes

    def completed_hashes(self) -> set[str]:
        return set(self._hashes)

    def _write_lines(self, lines: list[str]) -> None:
        # Created lazily so that read-only uses (status/report on a mistyped
        # path) do not leave empty directories behind.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            if self._needs_newline:
                handle.write("\n")
                self._needs_newline = False
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _stamped(row: dict[str, object], now: float) -> str:
        """The on-disk form of ``row``: the row plus its ISO append timestamp.

        Stamps carry a UTC offset so they stay comparable across DST
        transitions and across machines whose stores get merged.
        """
        stamped = dict(row)
        stamped[ROW_TS_KEY] = datetime.fromtimestamp(now, tz=timezone.utc).isoformat()
        return json.dumps(stamped, sort_keys=True, separators=(",", ":"), default=str)

    def append(self, row: dict[str, object]) -> bool:
        """Append one result row; returns ``False`` if its hash is already stored.

        The line is flushed and fsynced before returning so that a crash right
        after :meth:`append` cannot lose the row.
        """
        config_hash = self._require_hash(row)
        if config_hash in self._hashes:
            return False
        now = time.time()
        self._write_lines([self._stamped(row, now)])
        self._hashes.add(config_hash)
        self._note_timestamp(now)
        return True

    def extend(self, rows: Iterable[dict[str, object]]) -> int:
        """Append many rows in one buffered write; returns how many were new.

        Unlike per-row :meth:`append` (whose per-line fsync is what makes a
        long-running campaign crash-safe between tasks), a bulk extend --
        store merges, shard imports -- writes every new line in one go and
        fsyncs once.  All lines share one timestamp, matching the SQLite
        backend's bulk insert.
        """
        lines: list[str] = []
        seen: set[str] = set()
        now = time.time()
        for row in rows:
            config_hash = self._require_hash(row)
            if config_hash in self._hashes or config_hash in seen:
                continue
            seen.add(config_hash)
            lines.append(self._stamped(row, now))
        if not lines:
            return 0
        self._write_lines(lines)
        self._hashes.update(seen)
        for _ in lines:
            self._note_timestamp(now)
        return len(lines)

    def rows(self) -> list[dict[str, object]]:
        """All stored rows in file order, deduplicated by config hash.

        Lines that do not parse as JSON objects (e.g. a line truncated by a
        crash) and metadata lines are skipped; for duplicated hashes the
        first row wins.  The reserved per-row append timestamp is stripped,
        so a row reads back exactly as it was appended.
        """
        out: list[dict[str, object]] = []
        seen: set[str] = set()
        for parsed in self._parsed_lines():
            if META_KEY in parsed:
                continue
            config_hash = parsed.get("config_hash")
            if isinstance(config_hash, str):
                if config_hash in seen:
                    continue
                seen.add(config_hash)
            parsed.pop(ROW_TS_KEY, None)
            out.append(parsed)
        return out

    def metadata(self) -> dict[str, object]:
        return dict(self._metadata)

    def update_metadata(self, **entries: object) -> None:
        """Append a metadata line; reads merge all metadata lines in order."""
        if not entries:
            return
        self._write_lines(
            [json.dumps({META_KEY: entries}, sort_keys=True, separators=(",", ":"), default=str)]
        )
        self._metadata.update(entries)

    def time_window(self) -> tuple[float, float] | None:
        """(first, last) row append timestamps.

        Exact when the stored rows carry per-row ISO timestamps (tracked
        in-memory, no extra file pass); stores written before the timestamps
        existed fall back to the historical approximation (metadata
        ``created_at`` .. file mtime).
        """
        if self._ts_first is not None and self._ts_last is not None:
            return (self._ts_first, self._ts_last)
        created = self._metadata.get("created_at")
        if not isinstance(created, (int, float)):
            return None
        try:
            mtime = self.path.stat().st_mtime
        except OSError:
            return None
        return (float(created), float(mtime))

    def throughput(self) -> float | None:
        """Observed rows per second.

        Computed over the *stamped* rows only, so a legacy store resumed
        with current code reports the rate of the rows that actually carry
        timestamps instead of dividing the full row count by the short
        stamped window.  Fully legacy stores keep the historical
        created_at .. mtime estimate.
        """
        if self._ts_count > 0:
            if (
                self._ts_count < 2
                or self._ts_first is None
                or self._ts_last is None
                or self._ts_last <= self._ts_first
            ):
                return None
            return self._ts_count / (self._ts_last - self._ts_first)
        return super().throughput()


#: Backwards-compatible name: the JSONL backend was simply ``ResultStore``
#: before the SQLite backend existed.
ResultStore = JsonlResultStore


class SqliteResultStore(BaseResultStore):
    """SQLite-backed result store with per-row timestamps.

    Rows live in a ``results`` table keyed by config hash (the JSON row kept
    verbatim), metadata in a ``store_meta`` key/value table.  Each append is
    its own committed transaction, giving the same crash-safety contract as
    the JSONL backend, plus per-row ``created_at`` timestamps that make
    throughput and ETA estimates exact.
    """

    backend = "sqlite"

    def __init__(self, path: str | os.PathLike[str]):
        super().__init__(path)
        self._connection: sqlite3.Connection | None = None

    def _connect(self, create: bool) -> sqlite3.Connection | None:
        if self._connection is not None:
            return self._connection
        if not create and not self.path.exists():
            return None
        # Like the JSONL backend, never create files for read-only misses.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path)
        connection.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " config_hash TEXT PRIMARY KEY,"
            " row TEXT NOT NULL,"
            " created_at REAL NOT NULL)"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS store_meta ("
            " key TEXT PRIMARY KEY,"
            " value TEXT NOT NULL)"
        )
        connection.commit()
        self._connection = connection
        return connection

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def append(self, row: dict[str, object]) -> bool:
        config_hash = self._require_hash(row)
        connection = self._connect(create=True)
        assert connection is not None
        blob = json.dumps(row, sort_keys=True, separators=(",", ":"), default=str)
        cursor = connection.execute(
            "INSERT OR IGNORE INTO results (config_hash, row, created_at) VALUES (?, ?, ?)",
            (config_hash, blob, time.time()),
        )
        connection.commit()
        return cursor.rowcount > 0

    def extend(self, rows: Iterable[dict[str, object]]) -> int:
        payload: list[tuple[str, str, float]] = []
        seen: set[str] = set()
        now = time.time()
        for row in rows:
            config_hash = self._require_hash(row)
            if config_hash in seen:
                continue
            seen.add(config_hash)
            payload.append(
                (config_hash, json.dumps(row, sort_keys=True, separators=(",", ":"), default=str), now)
            )
        if not payload:
            return 0
        connection = self._connect(create=True)
        assert connection is not None
        before = connection.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        connection.executemany(
            "INSERT OR IGNORE INTO results (config_hash, row, created_at) VALUES (?, ?, ?)",
            payload,
        )
        connection.commit()
        after = connection.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        return int(after - before)

    def rows(self) -> list[dict[str, object]]:
        connection = self._connect(create=False)
        if connection is None:
            return []
        out: list[dict[str, object]] = []
        for (blob,) in connection.execute("SELECT row FROM results ORDER BY rowid"):
            try:
                parsed = json.loads(blob)
            except json.JSONDecodeError:
                continue
            if isinstance(parsed, dict):
                out.append(parsed)
        return out

    def __len__(self) -> int:
        connection = self._connect(create=False)
        if connection is None:
            return 0
        return int(connection.execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def __contains__(self, config_hash: str) -> bool:
        connection = self._connect(create=False)
        if connection is None:
            return False
        found = connection.execute(
            "SELECT 1 FROM results WHERE config_hash = ?", (config_hash,)
        ).fetchone()
        return found is not None

    def completed_hashes(self) -> set[str]:
        connection = self._connect(create=False)
        if connection is None:
            return set()
        return {
            config_hash
            for (config_hash,) in connection.execute("SELECT config_hash FROM results")
        }

    def metadata(self) -> dict[str, object]:
        connection = self._connect(create=False)
        if connection is None:
            return {}
        return {
            key: json.loads(value)
            for key, value in connection.execute("SELECT key, value FROM store_meta")
        }

    def update_metadata(self, **entries: object) -> None:
        if not entries:
            return
        connection = self._connect(create=True)
        assert connection is not None
        connection.executemany(
            "INSERT INTO store_meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            [(key, json.dumps(value, default=str)) for key, value in entries.items()],
        )
        connection.commit()

    def time_window(self) -> tuple[float, float] | None:
        connection = self._connect(create=False)
        if connection is None:
            return None
        first, last = connection.execute(
            "SELECT MIN(created_at), MAX(created_at) FROM results"
        ).fetchone()
        if first is None or last is None:
            return None
        return (float(first), float(last))


__all__ = [
    "DEFAULT_STORE_NAME",
    "META_KEY",
    "ROW_TS_KEY",
    "SQLITE_SUFFIXES",
    "BaseResultStore",
    "JsonlResultStore",
    "ResultStore",
    "SqliteResultStore",
    "open_store",
    "resolve_store_path",
]
