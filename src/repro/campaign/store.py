"""JSONL-backed persistent result store keyed by config hash.

The store is a plain append-only JSON-lines file: one result row per line,
each carrying the ``config_hash`` of the task that produced it.  That gives

* **crash-safe appends** -- every row is written, flushed and fsynced as one
  line, so a killed campaign loses at most the row being written;
* **tolerant reads** -- a truncated final line (the signature of a crash) is
  skipped instead of poisoning the file;
* **dedup** -- rows are keyed by config hash; re-appending a completed
  configuration is a no-op and duplicate lines collapse on read;
* **resume** -- :meth:`ResultStore.completed_hashes` is exactly the skip set
  a resumed campaign needs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

#: Default store filename when a campaign is pointed at a directory.
DEFAULT_STORE_NAME = "campaign.jsonl"


def resolve_store_path(out: str | os.PathLike[str]) -> Path:
    """Map a CLI ``--out`` value to a concrete JSONL file path.

    A path ending in ``.jsonl`` is used as-is; anything else is treated as a
    directory that will contain :data:`DEFAULT_STORE_NAME`.
    """
    path = Path(out)
    if path.suffix == ".jsonl":
        return path
    return path / DEFAULT_STORE_NAME


class ResultStore:
    """Append-only JSONL result store with hash-based dedup."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = Path(path)
        self._hashes: set[str] = {
            row["config_hash"] for row in self.rows() if "config_hash" in row
        }
        self._needs_newline = self._missing_trailing_newline()

    def _missing_trailing_newline(self) -> bool:
        # A file left by a crash mid-write may end without a newline; the next
        # append must not concatenate onto that torn line.
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def __len__(self) -> int:
        return len(self._hashes)

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self._hashes

    def completed_hashes(self) -> set[str]:
        """Config hashes with a completed row in the store."""
        return set(self._hashes)

    def append(self, row: dict[str, object]) -> bool:
        """Append one result row; returns ``False`` if its hash is already stored.

        The line is flushed and fsynced before returning so that a crash right
        after :meth:`append` cannot lose the row.
        """
        config_hash = row.get("config_hash")
        if not isinstance(config_hash, str) or not config_hash:
            raise ValueError("result rows must carry a non-empty 'config_hash'")
        if config_hash in self._hashes:
            return False
        line = json.dumps(row, sort_keys=True, separators=(",", ":"), default=str)
        # Created lazily so that read-only uses (status/report on a mistyped
        # path) do not leave empty directories behind.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            if self._needs_newline:
                handle.write("\n")
                self._needs_newline = False
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._hashes.add(config_hash)
        return True

    def extend(self, rows: Iterable[dict[str, object]]) -> int:
        """Append many rows in one buffered write; returns how many were new.

        Unlike per-row :meth:`append` (whose per-line fsync is what makes a
        long-running campaign crash-safe between tasks), a bulk extend --
        store merges, shard imports -- writes every new line in one go and
        fsyncs once.
        """
        lines: list[str] = []
        seen: set[str] = set()
        for row in rows:
            config_hash = row.get("config_hash")
            if not isinstance(config_hash, str) or not config_hash:
                raise ValueError("result rows must carry a non-empty 'config_hash'")
            if config_hash in self._hashes or config_hash in seen:
                continue
            seen.add(config_hash)
            lines.append(json.dumps(row, sort_keys=True, separators=(",", ":"), default=str))
        if not lines:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            if self._needs_newline:
                handle.write("\n")
                self._needs_newline = False
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._hashes.update(seen)
        return len(lines)

    def rows(self) -> list[dict[str, object]]:
        """All stored rows in file order, deduplicated by config hash.

        Lines that do not parse as JSON objects (e.g. a line truncated by a
        crash) are skipped; for duplicated hashes the first row wins.
        """
        if not self.path.exists():
            return []
        out: list[dict[str, object]] = []
        seen: set[str] = set()
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(row, dict):
                    continue
                config_hash = row.get("config_hash")
                if isinstance(config_hash, str):
                    if config_hash in seen:
                        continue
                    seen.add(config_hash)
                out.append(row)
        return out

    def rows_by_hash(self) -> dict[str, dict[str, object]]:
        """Stored rows indexed by config hash."""
        return {
            row["config_hash"]: row for row in self.rows() if isinstance(row.get("config_hash"), str)
        }


__all__ = ["DEFAULT_STORE_NAME", "ResultStore", "resolve_store_path"]
