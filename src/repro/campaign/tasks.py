"""Built-in campaign task types: thin adapters onto the unified API.

Each handler maps one :class:`~repro.campaign.grid.TaskSpec` to a declarative
:class:`~repro.api.RunSpec` (:func:`runspec_for_task`) and executes it through
the engine-agnostic :func:`repro.api.run` entry point; the runner adds the
task's identity fields and config hash afterwards, so handlers only report
what they measured.  Three types ship:

* ``stabilize`` -- the original stabilization measurement on the daemon-step
  scheduler engine (byte-identical rows and hashes to the pre-API campaign
  engine);
* ``scenario`` -- a fault-injection / dynamic-network scenario from the
  library (:mod:`repro.scenarios`), reporting per-event recovery aggregates
  plus the persisted per-event records;
* ``msgpass`` -- a message-passing workload (broadcast, DFS traversal, or
  ring leader election) on the synchronous simulator, comparing message
  costs with and without the orientation (the application story of EXP-A1 as
  a sweepable campaign axis).
"""

from __future__ import annotations

from typing import Sequence

from repro.api import NetworkSpec, RunSpec, StopSpec, run
from repro.api.spec import HEIGHT_TREE_FAMILY
from repro.obs.instrument import Instrumentation
from repro.campaign.grid import TaskSpec
from repro.campaign.registry import register_task_type
from repro.graphs.network import RootedNetwork
from repro.runtime.observers import Observer
from repro.runtime.protocol import Protocol


def network_spec_for_task(spec: TaskSpec) -> NetworkSpec:
    """The declarative topology of a task, seeded from its config hash."""
    if spec.height is not None:
        return NetworkSpec(
            family=HEIGHT_TREE_FAMILY,
            size=spec.size,
            height=spec.height,
            seed=spec.network_seed,
        )
    return NetworkSpec(family=spec.family, size=spec.size, seed=spec.network_seed)


def runspec_for_task(spec: TaskSpec) -> RunSpec:
    """Map a campaign task onto the unified :class:`~repro.api.RunSpec`.

    This is the whole adapter: the task type picks the engine, the identity
    fields become the spec, and the hash-derived seeds keep every row
    reproducible no matter where it executes.
    """
    engines = {"stabilize": "scheduler", "scenario": "scenario", "msgpass": "msgpass"}
    if spec.task_type not in engines:
        raise ValueError(f"no RunSpec mapping for task type {spec.task_type!r}")
    if spec.task_type == "scenario" and spec.scenario is None:
        raise ValueError("scenario tasks need a scenario name (Grid(scenarios=...))")
    return RunSpec(
        engine=engines[spec.task_type],
        protocol=spec.protocol,
        network=network_spec_for_task(spec),
        daemon=spec.daemon,
        seed=spec.run_seed,
        scenario=spec.scenario if spec.task_type == "scenario" else None,
        workload=(spec.workload or "broadcast") if spec.task_type == "msgpass" else None,
        stop=StopSpec(after_substrate=spec.after_substrate),
        parameter=spec.parameter,
    )


def build_task_network(spec: TaskSpec) -> RootedNetwork:
    """The network a task runs on, rebuilt from its hash-derived seed."""
    return network_spec_for_task(spec).build()


def build_task_protocol(spec: TaskSpec) -> Protocol:
    """The protocol stack named by ``spec.protocol``."""
    from repro.api.engines import build_protocol

    return build_protocol(spec.protocol)


def _execute_task(
    spec: TaskSpec,
    observers: Sequence[Observer],
    instrument: bool,
    telemetry: bool | int = False,
    health: bool | int = False,
    record: "bool | str | None" = None,
) -> dict[str, object]:
    """Run the task's RunSpec; opt-in rows carry ``perf``/``telemetry``/``health``."""
    from dataclasses import replace

    instrumentation = Instrumentation() if instrument else None
    runspec = runspec_for_task(spec)
    if record:
        # The log file is keyed by the spec's canonical hash, so every task
        # of a recorded campaign gets its own log inside the one directory.
        runspec = replace(runspec, record=record)
    return run(
        runspec,
        observers=observers,
        instrumentation=instrumentation,
        telemetry=telemetry or None,
        health=health or None,
    ).row


@register_task_type("stabilize")
def run_stabilize(
    spec: TaskSpec,
    observers: Sequence[Observer] = (),
    instrument: bool = False,
    telemetry: bool | int = False,
    health: bool | int = False,
    record: "bool | str | None" = None,
) -> dict[str, object]:
    """Measure stabilization of the spec's protocol on its network."""
    return _execute_task(spec, observers, instrument, telemetry, health, record)


@register_task_type("scenario")
def run_scenario_task(
    spec: TaskSpec,
    observers: Sequence[Observer] = (),
    instrument: bool = False,
    telemetry: bool | int = False,
    health: bool | int = False,
    record: "bool | str | None" = None,
) -> dict[str, object]:
    """Execute the spec's library scenario and report recovery aggregates."""
    return _execute_task(spec, observers, instrument, telemetry, health, record)


@register_task_type("msgpass")
def run_msgpass(
    spec: TaskSpec,
    observers: Sequence[Observer] = (),
    instrument: bool = False,
    telemetry: bool | int = False,
    health: bool | int = False,
) -> dict[str, object]:
    """Run the spec's message-passing workload with/without the orientation.

    The orientation is the centralized reference (the protocols' fixed
    point), so the row isolates what the *orientation* is worth to a
    message-passing workload, independent of how it was computed.  The
    ``protocol`` and ``daemon`` identity axes therefore do not influence the
    measurement (sweeping them yields repeated trials on fresh networks);
    ``after_substrate`` has no meaning here and is rejected.  The handler
    takes no ``record`` parameter on purpose: the synchronous simulator has
    no daemon-step stream for the flight recorder to capture, and the runner
    only forwards options a handler's signature accepts.
    """
    return _execute_task(spec, observers, instrument, telemetry, health)


__all__ = [
    "build_task_network",
    "build_task_protocol",
    "network_spec_for_task",
    "run_msgpass",
    "run_scenario_task",
    "run_stabilize",
    "runspec_for_task",
]
