"""Built-in campaign task types.

Each handler turns one :class:`~repro.campaign.grid.TaskSpec` into one flat
result row; the runner adds the spec's identity fields and config hash
afterwards, so handlers only report what they measured.  Three types ship:

* ``stabilize`` -- the original stabilization measurement (byte-identical
  rows to the pre-registry campaign engine);
* ``scenario`` -- a fault-injection / dynamic-network scenario from the
  library (:mod:`repro.scenarios`), reporting per-event recovery aggregates;
* ``msgpass`` -- a message-passing workload on the synchronous simulator:
  broadcast with and without a sense of direction, reporting the message
  savings the orientation buys (the application story of EXP-A1 as a
  sweepable campaign axis).
"""

from __future__ import annotations

from repro.analysis.convergence import (
    height_controlled_tree,
    measure_dftno,
    measure_stno,
)
from repro.campaign.grid import TaskSpec
from repro.campaign.registry import register_task_type
from repro.core.baseline import centralized_orientation
from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.graphs import generators
from repro.graphs.network import RootedNetwork
from repro.runtime.daemon import make_daemon
from repro.runtime.protocol import Protocol
from repro.scenarios.library import build_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.sod.traversal import broadcast_with_sod, broadcast_without_sod


def build_task_network(spec: TaskSpec) -> RootedNetwork:
    """The network a task runs on, rebuilt from its hash-derived seed."""
    if spec.height is not None:
        return height_controlled_tree(spec.size, spec.height, seed=spec.network_seed)
    return generators.family(spec.family, spec.size, seed=spec.network_seed)


def build_task_protocol(spec: TaskSpec) -> Protocol:
    """The protocol stack named by ``spec.protocol``."""
    if spec.protocol == "dftno":
        return build_dftno()
    return build_stno(tree=spec.protocol.split("-", 1)[1])


@register_task_type("stabilize")
def run_stabilize(spec: TaskSpec) -> dict[str, object]:
    """Measure stabilization of the spec's protocol on its network."""
    network = build_task_network(spec)
    daemon = make_daemon(spec.daemon)
    if spec.protocol == "dftno":
        sample = measure_dftno(
            network,
            daemon=daemon,
            seed=spec.run_seed,
            parameter=spec.parameter,
            after_substrate=spec.after_substrate,
        )
    else:
        tree = spec.protocol.split("-", 1)[1]
        sample = measure_stno(
            network,
            tree=tree,
            daemon=daemon,
            seed=spec.run_seed,
            parameter=spec.parameter,
            after_substrate=spec.after_substrate,
        )
    return sample.as_row()


@register_task_type("scenario")
def run_scenario_task(spec: TaskSpec) -> dict[str, object]:
    """Execute the spec's library scenario and report recovery aggregates."""
    if spec.scenario is None:
        raise ValueError("scenario tasks need a scenario name (Grid(scenarios=...))")
    if spec.after_substrate:
        # Rejecting beats mislabeling: after_substrate is part of the config
        # hash, so silently ignoring it would store two differently-hashed
        # copies of the same measurement, one falsely labeled.
        raise ValueError("after_substrate starts are not supported for scenario tasks")
    runner = ScenarioRunner(
        build_task_network(spec),
        build_task_protocol(spec),
        build_scenario(spec.scenario),
        daemon=make_daemon(spec.daemon),
        seed=spec.run_seed,
    )
    return runner.run().as_row()


@register_task_type("msgpass")
def run_msgpass(spec: TaskSpec) -> dict[str, object]:
    """Broadcast with/without a sense of direction on the spec's network.

    The orientation is the centralized reference (the protocols' fixed
    point), so the row isolates what the *orientation* is worth to a
    message-passing workload, independent of how it was computed.  The
    ``protocol`` and ``daemon`` identity axes therefore do not influence the
    measurement (sweeping them yields repeated trials on fresh networks);
    ``after_substrate`` has no meaning here and is rejected.
    """
    if spec.after_substrate:
        raise ValueError("after_substrate starts are not supported for msgpass tasks")
    network = build_task_network(spec)
    orientation = centralized_orientation(network)
    plain = broadcast_without_sod(network)
    oriented = broadcast_with_sod(network, orientation)
    return {
        "workload": "broadcast",
        "network": network.name,
        "n": network.n,
        "edges": network.num_edges(),
        "parameter": spec.parameter,
        "converged": plain.complete and oriented.complete,
        "messages_unoriented": plain.messages,
        "messages_oriented": oriented.messages,
        "message_savings": (
            plain.messages / oriented.messages if oriented.messages else None
        ),
        "rounds_unoriented": plain.rounds,
        "rounds_oriented": oriented.rounds,
    }


__all__ = [
    "build_task_network",
    "build_task_protocol",
    "run_msgpass",
    "run_scenario_task",
    "run_stabilize",
]
