"""Live campaign dashboard: tail a result store while a run writes to it.

``repro-campaign watch --out results/`` renders, every ``--interval``
seconds, a terminal dashboard built purely from the store (plus optional grid
options for progress/ETA against the intended sweep):

* header -- store path/backend/row count, provenance metadata;
* progress -- completed/pending/stale against the grid, rows/s throughput
  from the store's own row timestamps, and an ETA;
* per-task-type table -- rows and convergence counts per
  (task type, protocol, family) combination;
* rolling phase breakdown -- the last ``--rolling`` rows' ``perf``
  summaries merged (associatively) into a where-is-the-time-going-now view,
  so a phase regression shows up *while* the campaign runs;
* anomaly feed -- the stall / round-budget anomalies recorded by runs
  executed with ``--health``, newest last.

The watcher holds no state between ticks: each refresh reopens the store and
re-reads it, so it tolerates the store appearing late (a campaign that has
not created its file yet), being appended to concurrently (both backends
append atomically per row), or being replaced by a ``merge``.  It never
writes -- watching is always safe, from any machine that can see the file.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.reporting import format_table
from repro.campaign.grid import Grid
from repro.campaign.store import open_store, resolve_store_path

#: How many trailing perf rows feed the rolling phase breakdown.
DEFAULT_ROLLING = 20

#: How many trailing anomalies the feed shows.
DEFAULT_ANOMALY_LIMIT = 8

#: ANSI "clear screen, cursor home" -- emitted between refreshes on a tty.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _utc_iso(timestamp: float) -> str:
    """Timezone-explicit UTC ISO-8601 (trailing ``Z``), machine-independent."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(timestamp))


def _format_duration(seconds: float) -> str:
    """Render a duration like ``2m 03s`` / ``1h 04m`` (coarse on purpose)."""
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m {secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h {minutes:02d}m"


def _progress_lines(store, rows: list[dict[str, object]], grid: Grid | None) -> list[str]:
    """Completed/pending/ETA lines (grid-relative when a grid was given)."""
    lines: list[str] = []
    rate = store.throughput()
    if grid is not None:
        grid_hashes = {task.config_hash for task in grid.expand()}
        stored = {
            str(row.get("config_hash")) for row in rows if row.get("config_hash")
        }
        completed = grid_hashes & stored
        pending = grid_hashes - stored
        stale = stored - grid_hashes
        percent = 100.0 * len(completed) / len(grid_hashes) if grid_hashes else 100.0
        line = f"progress: {len(completed)}/{len(grid_hashes)} tasks ({percent:.0f}%)"
        if stale:
            line += f", {len(stale)} stale"
        if rate is not None:
            line += f", {rate:.2f} rows/s"
            if pending:
                eta = len(pending) / rate
                line += f", ETA {_format_duration(eta)} (~{_utc_iso(time.time() + eta)})"
        elif pending:
            line += ", rate unknown (no store timestamps yet)"
        lines.append(line)
    elif rate is not None:
        lines.append(f"throughput: {rate:.2f} rows/s")
    return lines


def _task_type_table(rows: list[dict[str, object]]) -> str | None:
    """Rows / converged counts per (task type, protocol, family)."""
    if not rows:
        return None
    counts: dict[tuple[object, object, object], list[int]] = {}
    for row in rows:
        key = (
            row.get("task_type", "stabilize"),
            row.get("protocol"),
            row.get("family"),
        )
        bucket = counts.setdefault(key, [0, 0])
        bucket[0] += 1
        bucket[1] += 1 if row.get("converged") else 0
    table = [
        {
            "task_type": task_type,
            "protocol": protocol,
            "family": family,
            "rows": total,
            "converged": converged,
        }
        for (task_type, protocol, family), (total, converged) in sorted(
            counts.items(), key=str
        )
    ]
    return format_table(table)


def _rolling_phase_table(rows: list[dict[str, object]], rolling: int) -> str | None:
    """Merge the last ``rolling`` perf summaries into a phase breakdown."""
    from repro.obs import merge_summaries, phase_seconds

    summaries = [row["perf"] for row in rows if isinstance(row.get("perf"), dict)]
    if not summaries:
        return None
    window = summaries[-rolling:]
    merged = merge_summaries(*window)
    total = phase_seconds(merged) or 1.0
    table = [
        {
            "phase": name,
            "seconds": f"{stats['seconds']:.4f}",
            "share": f"{100.0 * stats['seconds'] / total:.1f}%",
        }
        for name, stats in sorted(
            merged.get("phases", {}).items(),
            key=lambda item: item[1]["seconds"],
            reverse=True,
        )
    ]
    if not table:
        return None
    return format_table(
        table, title=f"rolling phase breakdown (last {len(window)} perf rows)"
    )


def _anomaly_feed(rows: list[dict[str, object]], limit: int) -> list[str]:
    """The newest ``limit`` anomalies across all stored ``health`` blobs."""
    feed: list[str] = []
    for row in rows:
        health = row.get("health")
        if not isinstance(health, dict):
            continue
        for anomaly in health.get("anomalies") or []:
            line = (
                f"  task {row.get('task_index')} ({row.get('protocol')} "
                f"n={row.get('size')}): {anomaly.get('kind')} at step "
                f"{anomaly.get('step')} -- {anomaly.get('detail')}"
            )
            # Recorded runs stamp each anomaly with its flight log, so the
            # feed points straight at the replayable evidence.
            log = anomaly.get("flight_log") or health.get("flight_log")
            if log:
                line += f" [replay: {log}]"
            feed.append(line)
    return feed[-limit:]


def render_dashboard(
    store,
    grid: Grid | None = None,
    rolling: int = DEFAULT_ROLLING,
    anomaly_limit: int = DEFAULT_ANOMALY_LIMIT,
) -> str:
    """One dashboard frame for ``store``, as a multi-line string.

    Pure function of the store's current contents (plus the wall clock for
    the header and the ETA): callable from tests against a store another
    thread is appending to, and from the :func:`watch` loop.
    """
    rows = store.rows()
    lines = [
        f"campaign watch -- {store.path} ({store.backend}, {len(rows)} rows) "
        f"at {_utc_iso(time.time())}"
    ]
    metadata = store.metadata()
    created = metadata.get("created_at_iso") or metadata.get("created_at")
    version = metadata.get("code_version")
    provenance = ", ".join(
        part
        for part in (
            f"created {created}" if created else "",
            f"code version {version}" if version else "",
        )
        if part
    )
    if provenance:
        lines.append(f"metadata: {provenance}")
    lines.extend(_progress_lines(store, rows, grid))
    task_table = _task_type_table(rows)
    if task_table:
        lines.append("")
        lines.append(task_table)
    phase_table = _rolling_phase_table(rows, rolling)
    if phase_table:
        lines.append("")
        lines.append(phase_table)
    anomalies = _anomaly_feed(rows, anomaly_limit)
    if anomalies:
        lines.append("")
        lines.append(f"anomalies (last {len(anomalies)}):")
        lines.extend(anomalies)
    elif any(isinstance(row.get("health"), dict) for row in rows):
        lines.append("")
        lines.append("anomalies: none (all monitored rows healthy)")
    return "\n".join(lines)


def watch(
    out: str | Path,
    grid: Grid | None = None,
    interval: float = 2.0,
    iterations: int | None = None,
    rolling: int = DEFAULT_ROLLING,
    anomaly_limit: int = DEFAULT_ANOMALY_LIMIT,
    emit: Callable[[str], None] | None = None,
    clear: bool | None = None,
    _sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail ``out`` and render a dashboard frame every ``interval`` seconds.

    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly);
    a number renders that many frames and returns -- the scriptable mode
    smoke tests and CI use.  ``clear=None`` clears the screen between frames
    only when stdout is a tty; ``False`` never clears (frames append, which
    is what you want when piping to a file).
    """
    if emit is None:
        emit = lambda text: print(text, flush=True)  # noqa: E731
    if clear is None:
        clear = sys.stdout.isatty()
    path = resolve_store_path(out)
    rendered = 0
    try:
        while True:
            if path.exists():
                frame = render_dashboard(
                    open_store(path),
                    grid=grid,
                    rolling=rolling,
                    anomaly_limit=anomaly_limit,
                )
            else:
                frame = (
                    f"campaign watch -- waiting for store {path} "
                    f"at {_utc_iso(time.time())}"
                )
            emit((CLEAR_SCREEN + frame) if clear else frame)
            rendered += 1
            if iterations is not None and rendered >= iterations:
                return 0
            _sleep(interval)
    except KeyboardInterrupt:
        return 0


__all__ = [
    "CLEAR_SCREEN",
    "DEFAULT_ANOMALY_LIMIT",
    "DEFAULT_ROLLING",
    "render_dashboard",
    "watch",
]
