"""The paper's contribution: self-stabilizing network orientation.

* :mod:`~repro.core.chordal` -- the chordal sense of direction (Section 2.2):
  labeling arithmetic, validity checks, and the :class:`ChordalOrientation`
  value object the rest of the library consumes.
* :mod:`~repro.core.specification` -- the problem specification ``SP_NO``
  (SP1: globally unique names, SP2: chordal edge labels) evaluated on live
  configurations.
* :mod:`~repro.core.dftno` -- Algorithm 3.1.1, network orientation by
  depth-first token circulation.
* :mod:`~repro.core.stno` -- Algorithm 4.1.2, network orientation over a
  spanning tree.
* :mod:`~repro.core.baseline` -- a centralized, non-self-stabilizing reference
  orientation used for cross-checking and benchmarking.
* :mod:`~repro.core.orientation` -- the high-level public API that wires a
  network, a substrate, a protocol, a daemon and a fault model together.
"""

from repro.core.chordal import ChordalOrientation, chordal_edge_label, inverse_label
from repro.core.specification import (
    OrientationSpecification,
    SpecificationReport,
    VAR_NAME,
    VAR_EDGE_LABELS,
)
from repro.core.dftno import DFTNO, build_dftno
from repro.core.stno import STNO, build_stno
from repro.core.baseline import centralized_orientation
from repro.core.orientation import (
    OrientationResult,
    orient_with_dftno,
    orient_with_stno,
    extract_orientation,
)

__all__ = [
    "ChordalOrientation",
    "chordal_edge_label",
    "inverse_label",
    "OrientationSpecification",
    "SpecificationReport",
    "VAR_NAME",
    "VAR_EDGE_LABELS",
    "DFTNO",
    "build_dftno",
    "STNO",
    "build_stno",
    "centralized_orientation",
    "OrientationResult",
    "orient_with_dftno",
    "orient_with_stno",
    "extract_orientation",
]
