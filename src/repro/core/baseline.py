"""Centralized (non-self-stabilizing) reference orientations.

The thesis has no experimental baseline -- its contribution is making the
orientation *self-stabilizing*.  For the reproduction we still need a ground
truth to compare the distributed protocols against and a cost reference for
the benchmark tables, so this module computes orientations directly with full
knowledge of the topology:

* :func:`centralized_orientation` names processors by a global graph traversal
  (DFS preorder by default, matching what DFTNO converges to; BFS order is
  also available) and derives the chordal labels in one pass.  It is what a
  system operator would do once, offline, if transient faults did not exist.
"""

from __future__ import annotations

from collections import deque

from repro.core.chordal import ChordalOrientation
from repro.errors import SpecificationError
from repro.graphs.network import RootedNetwork
from repro.substrates.token_circulation import dfs_preorder


def _bfs_order(network: RootedNetwork) -> list[int]:
    order = [network.root]
    seen = {network.root}
    queue: deque[int] = deque([network.root])
    while queue:
        node = queue.popleft()
        for neighbor in network.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def centralized_orientation(
    network: RootedNetwork, order: str = "dfs", modulus: int | None = None
) -> ChordalOrientation:
    """Compute a valid chordal orientation with global knowledge of the network.

    Parameters
    ----------
    network:
        The rooted network to orient.
    order:
        ``"dfs"`` (preorder of the deterministic port-order DFS -- the same
        names DFTNO stabilizes to) or ``"bfs"`` (breadth-first visit order).
    modulus:
        The chordal modulus ``N``; defaults to the network size.

    Returns
    -------
    ChordalOrientation
        A validated orientation (names plus per-endpoint edge labels).
    """
    if order == "dfs":
        visit_order = dfs_preorder(network)
    elif order == "bfs":
        visit_order = _bfs_order(network)
    else:
        raise SpecificationError(f"unknown naming order {order!r}; use 'dfs' or 'bfs'")

    names = {node: index for index, node in enumerate(visit_order)}
    orientation = ChordalOrientation.from_names(network, names, modulus=modulus)
    orientation.require_valid(network)
    return orientation


__all__ = ["centralized_orientation"]
