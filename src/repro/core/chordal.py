"""The chordal sense of direction (Section 2.2 of the thesis).

A chordal labeling fixes a cyclic ordering of the ``N`` processors (here:
the assignment of unique names ``eta in {0..N-1}``) and labels the link from
``p`` to ``q`` with the cyclic distance ``(eta_p - eta_q) mod N`` as seen from
``p``.  Two structural facts follow immediately and are exposed as checks
here:

* *local orientation*: because names are unique, the labels of the links
  incident to one processor are pairwise distinct;
* *edge symmetry*: the label of a link at one endpoint determines the label at
  the other endpoint (they are inverses modulo ``N``).

:class:`ChordalOrientation` is the immutable value object the high-level API
returns once a protocol has stabilized: the names, the per-endpoint edge
labels, and the modulus, together with validation and navigation helpers used
by the sense-of-direction applications (routing, traversal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import SpecificationError
from repro.graphs.network import RootedNetwork


def chordal_edge_label(name_p: int, name_q: int, modulus: int) -> int:
    """The chordal label of link ``(p, q)`` as seen from ``p``: ``(eta_p - eta_q) mod N``."""
    if modulus <= 0:
        raise SpecificationError("the chordal modulus N must be positive")
    return (name_p - name_q) % modulus


def inverse_label(label: int, modulus: int) -> int:
    """The label of the same link as seen from the other endpoint (``N - d mod N``)."""
    if modulus <= 0:
        raise SpecificationError("the chordal modulus N must be positive")
    return (-label) % modulus


def is_locally_oriented(labels: Mapping[int, int]) -> bool:
    """Local orientation: the labels assigned by one processor are pairwise distinct."""
    values = list(labels.values())
    return len(values) == len(set(values))


@dataclass(frozen=True)
class ChordalOrientation:
    """A fully oriented network: unique names plus chordal edge labels.

    Attributes
    ----------
    names:
        ``processor -> eta`` with ``eta in {0..modulus-1}``.
    edge_labels:
        ``processor -> {neighbor -> label}``; ``edge_labels[p][q]`` is the
        label of link ``(p, q)`` at ``p``'s side.
    modulus:
        The ``N`` used by the chordal arithmetic (the number of processors, or
        the known upper bound on it).
    """

    names: dict[int, int]
    edge_labels: dict[int, dict[int, int]]
    modulus: int

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_names(
        cls, network: RootedNetwork, names: Mapping[int, int], modulus: int | None = None
    ) -> "ChordalOrientation":
        """Derive the (unique) chordal labeling induced by a naming of the processors."""
        modulus = modulus if modulus is not None else network.n
        labels = {
            node: {
                neighbor: chordal_edge_label(names[node], names[neighbor], modulus)
                for neighbor in network.neighbors(node)
            }
            for node in network.nodes()
        }
        return cls(names=dict(names), edge_labels=labels, modulus=modulus)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def name_of(self, node: int) -> int:
        """The name ``eta_p`` of ``node``."""
        return self.names[node]

    def node_named(self, name: int) -> int:
        """The processor carrying ``name`` (requires the orientation to be valid)."""
        for node, eta in self.names.items():
            if eta == name:
                return node
        raise SpecificationError(f"no processor carries name {name}")

    def label(self, node: int, neighbor: int) -> int:
        """The label of link ``(node, neighbor)`` at ``node``'s side."""
        return self.edge_labels[node][neighbor]

    def neighbor_name(self, node: int, neighbor: int) -> int:
        """The name of ``neighbor`` as derivable locally at ``node`` from the link label.

        This is the operational benefit of a chordal sense of direction: a
        processor knows the *names* of its neighbors without any extra
        storage, because ``eta_q = (eta_p - pi_p[q]) mod N``.
        """
        return (self.names[node] - self.edge_labels[node][neighbor]) % self.modulus

    def cyclic_distance(self, source: int, target: int) -> int:
        """The forward distance from ``source`` to ``target`` on the virtual name cycle."""
        return (self.names[target] - self.names[source]) % self.modulus

    # ------------------------------------------------------------------
    # Validation (the Section 2.2 properties)
    # ------------------------------------------------------------------
    def violations(self, network: RootedNetwork) -> list[str]:
        """Human-readable list of every way this orientation is inconsistent."""
        problems: list[str] = []
        seen: dict[int, int] = {}
        for node in network.nodes():
            if node not in self.names:
                problems.append(f"processor {node} has no name")
                continue
            name = self.names[node]
            if not 0 <= name < self.modulus:
                problems.append(f"name {name} of processor {node} is outside 0..{self.modulus - 1}")
            if name in seen:
                problems.append(f"processors {seen[name]} and {node} share name {name}")
            else:
                seen[name] = node

        for node in network.nodes():
            labels = self.edge_labels.get(node, {})
            for neighbor in network.neighbors(node):
                if neighbor not in labels:
                    problems.append(f"link ({node}, {neighbor}) is unlabeled at {node}")
                    continue
                expected = chordal_edge_label(
                    self.names.get(node, 0), self.names.get(neighbor, 0), self.modulus
                )
                if labels[neighbor] != expected:
                    problems.append(
                        f"link ({node}, {neighbor}) carries label {labels[neighbor]} at {node}, "
                        f"expected {expected}"
                    )
            if not is_locally_oriented({q: labels[q] for q in labels if q in network.neighbor_set(node)}):
                problems.append(f"labels at processor {node} are not locally distinct")

        for u, v in network.edges():
            label_uv = self.edge_labels.get(u, {}).get(v)
            label_vu = self.edge_labels.get(v, {}).get(u)
            if label_uv is None or label_vu is None:
                continue
            if label_vu != inverse_label(label_uv, self.modulus):
                problems.append(
                    f"link ({u}, {v}) violates edge symmetry: {label_uv} at {u} vs {label_vu} at {v}"
                )
        return problems

    def is_valid(self, network: RootedNetwork) -> bool:
        """Whether the orientation satisfies SP1, SP2 and the chordal properties."""
        return not self.violations(network)

    def require_valid(self, network: RootedNetwork) -> None:
        """Raise :class:`SpecificationError` with the violation list if invalid."""
        problems = self.violations(network)
        if problems:
            raise SpecificationError(
                "invalid chordal orientation:\n  " + "\n  ".join(problems)
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def format(self, network: RootedNetwork) -> str:
        """A readable table of names and per-link labels."""
        lines = [f"chordal orientation (N = {self.modulus})"]
        for node in network.nodes():
            labels = ", ".join(
                f"->{neighbor}: {self.edge_labels.get(node, {}).get(neighbor, '?')}"
                for neighbor in network.neighbors(node)
            )
            lines.append(f"  processor {node}: eta={self.names.get(node, '?')}  [{labels}]")
        return "\n".join(lines)


__all__ = [
    "chordal_edge_label",
    "inverse_label",
    "is_locally_oriented",
    "ChordalOrientation",
]
