"""DFTNO: network orientation using depth-first token circulation (Chapter 3).

The protocol is layered on the self-stabilizing depth-first token circulation
of :mod:`~repro.substrates.token_circulation` exactly as Algorithm 3.1.1
prescribes:

* ``Forward(p)  --> Nodelabel_p``  -- when a processor receives the token for
  the first time in a round, it names itself.  The root names itself ``0`` and
  resets its counter; every other processor names itself
  ``Max_{A_p} + 1`` (one past the highest name its parent has seen) and
  records that value in its own counter ``Max_p``.
* ``Backtrack(p) --> UpdateMax_p`` -- when the token returns from a descendant
  ``D_p``, the processor adopts the descendant's counter, so the counter
  always carries the number of processors named so far on the current branch.
* ``~Forward(p) /\\ ~Backtrack(p) /\\ InvalidEdgelabel(p) --> Edgelabel_p`` --
  a processor that does not hold the token repairs any incident edge label
  that disagrees with the chordal rule ``pi_p[q] = (eta_p - eta_q) mod N``.

Because the underlying traversal is deterministic (first unvisited neighbor in
port order), the names converge to the DFS preorder index of each processor
and then never change again; the edge labels follow within one extra round.
The composed protocol therefore stabilizes O(n) steps after the token layer
does, with O(Delta * log N) bits per processor for the orientation variables
-- the bounds of Section 3.2.3.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.chordal import chordal_edge_label
from repro.core.specification import VAR_EDGE_LABELS, VAR_NAME, OrientationSpecification
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action, StatementFn
from repro.runtime.composition import HookedComposition, HookingLayer
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.variables import VariableSpec, int_variable, map_variable
from repro.substrates import token_circulation as tc
from repro.substrates.token_circulation import DepthFirstTokenCirculation, dfs_preorder

#: Shared-variable name of the running maximum ``Max_p``.
VAR_MAX = "no_max"


class DFTNO(HookingLayer):
    """The orientation layer of Algorithm 3.1.1 (hooks onto the token layer).

    Use :func:`build_dftno` to obtain the full composed protocol (token
    circulation + this layer); the layer alone cannot run because its naming
    macros fire on the token layer's actions.

    Parameters
    ----------
    token:
        The token-circulation substrate instance the layer is composed with
        (needed for the token-holding predicate and the hook action labels).
    modulus:
        The ``N`` of the chordal arithmetic; ``None`` means the network size.
    """

    name = "dftno"

    ACTION_EDGE_LABEL = "NO-EdgeLabel"

    def __init__(self, token: DepthFirstTokenCirculation | None = None, modulus: int | None = None) -> None:
        self._token = token or DepthFirstTokenCirculation()
        self._modulus = modulus
        self._specification = OrientationSpecification(modulus=modulus)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def token_layer(self) -> DepthFirstTokenCirculation:
        """The token-circulation substrate this layer is designed for."""
        return self._token

    @property
    def specification(self) -> OrientationSpecification:
        """The SP_NO checker configured with this layer's modulus."""
        return self._specification

    def modulus(self, network: RootedNetwork) -> int:
        """The effective chordal modulus on ``network``."""
        return self._modulus if self._modulus is not None else network.n

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        top = self.modulus(network) - 1
        return [
            int_variable(VAR_NAME, 0, top, initial=0, description="node label eta_p"),
            int_variable(VAR_MAX, 0, top, initial=0, description="running maximum Max_p"),
            map_variable(
                VAR_EDGE_LABELS,
                0,
                top,
                initial_value=0,
                description="chordal edge labels pi_p[q]",
            ),
        ]

    # ------------------------------------------------------------------
    # Macros (hooked onto the token layer's actions)
    # ------------------------------------------------------------------
    def _node_label_root(self, view: ProcessorView) -> None:
        """``Nodelabel`` at the root: name 0, counter reset (fires on RootStart)."""
        view.write(VAR_NAME, 0)
        view.write(VAR_MAX, 0)

    def _node_label(self, view: ProcessorView) -> None:
        """``Nodelabel`` at a non-root processor (fires on Forward)."""
        parent = view.read(tc.VAR_PARENT)
        if parent is None or parent not in view.network.neighbor_set(view.node):
            return
        modulus = self.modulus(view.network)
        parent_max = view.try_read_neighbor(parent, VAR_MAX, default=0)
        if not isinstance(parent_max, int):
            parent_max = 0
        name = (parent_max + 1) % modulus
        view.write(VAR_NAME, name)
        view.write(VAR_MAX, name)

    def _update_max(self, view: ProcessorView) -> None:
        """``UpdateMax``: adopt the counter of the descendant the token returned from."""
        returned_child = view.read_pre(tc.VAR_CHILD)
        if returned_child is None or returned_child not in view.network.neighbor_set(view.node):
            return
        child_max = view.try_read_neighbor(returned_child, VAR_MAX, default=None)
        if isinstance(child_max, int):
            view.write(VAR_MAX, child_max % self.modulus(view.network))

    def hooks(self, network: RootedNetwork, node: int) -> Mapping[str, StatementFn]:
        if network.is_root(node):
            return {
                DepthFirstTokenCirculation.ACTION_ROOT_START: self._node_label_root,
                DepthFirstTokenCirculation.ACTION_ROOT_DELEGATE: self._update_max,
                DepthFirstTokenCirculation.ACTION_ROOT_FINISH: self._update_max,
            }
        return {
            DepthFirstTokenCirculation.ACTION_FORWARD: self._node_label,
            DepthFirstTokenCirculation.ACTION_DELEGATE: self._update_max,
            DepthFirstTokenCirculation.ACTION_FINISH: self._update_max,
        }

    # ------------------------------------------------------------------
    # Stand-alone action: edge relabeling
    # ------------------------------------------------------------------
    def _invalid_edge_labels(self, view: ProcessorView) -> bool:
        modulus = self.modulus(view.network)
        labels = view.read(VAR_EDGE_LABELS)
        labels = labels if isinstance(labels, dict) else {}
        own_name = view.read(VAR_NAME)
        for neighbor in view.neighbors:
            expected = chordal_edge_label(
                own_name, view.try_read_neighbor(neighbor, VAR_NAME, default=0), modulus
            )
            if labels.get(neighbor) != expected:
                return True
        return False

    def _relabel_edges(self, view: ProcessorView) -> None:
        modulus = self.modulus(view.network)
        own_name = view.read(VAR_NAME)
        labels = {
            neighbor: chordal_edge_label(
                own_name, view.try_read_neighbor(neighbor, VAR_NAME, default=0), modulus
            )
            for neighbor in view.neighbors
        }
        view.write(VAR_EDGE_LABELS, labels)

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        def guard(view: ProcessorView) -> bool:
            if DepthFirstTokenCirculation.holds_token(view):
                return False
            return self._invalid_edge_labels(view)

        return [
            Action(self.ACTION_EDGE_LABEL, guard, self._relabel_edges, layer=self.name, priority=10)
        ]

    # ------------------------------------------------------------------
    # Legitimacy and reference values
    # ------------------------------------------------------------------
    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """The orientation part of ``L_NO``: SP1 and SP2 hold."""
        return self._specification.holds(network, configuration)

    def expected_names(self, network: RootedNetwork) -> dict[int, int]:
        """The names DFTNO converges to: the deterministic DFS preorder index."""
        return {node: index for index, node in enumerate(dfs_preorder(network))}


def build_dftno(
    modulus: int | None = None, token: DepthFirstTokenCirculation | None = None
) -> HookedComposition:
    """The full DFTNO protocol: token circulation with the orientation layer on top.

    The returned protocol's legitimacy predicate is the thesis's
    ``L_NO = L_TC /\\ SP1 /\\ SP2``.
    """
    token = token or DepthFirstTokenCirculation()
    overlay = DFTNO(token=token, modulus=modulus)
    return HookedComposition(token, overlay, name="dftno")


__all__ = ["DFTNO", "build_dftno", "VAR_MAX"]
