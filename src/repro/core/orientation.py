"""High-level API: orient a network with DFTNO or STNO and get the result back.

This is the entry point downstream users call.  It wires together a network,
the chosen protocol stack, a daemon, and a fault model (arbitrary initial
states by default -- the self-stabilization setting), runs the scheduler until
the orientation specification holds, and returns both the extracted
:class:`~repro.core.chordal.ChordalOrientation` and the full run statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.chordal import ChordalOrientation
from repro.core.dftno import build_dftno
from repro.core.specification import OrientationSpecification
from repro.core.stno import build_stno
from repro.errors import ConvergenceError
from repro.graphs.network import RootedNetwork
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import Daemon, DistributedDaemon
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import RunResult, Scheduler
from repro.substrates.spanning_tree import SpanningTreeProtocol


@dataclass
class OrientationResult:
    """Everything an orientation run produced.

    Attributes
    ----------
    orientation:
        The extracted chordal orientation (validated against the network).
    run:
        The scheduler's :class:`~repro.runtime.scheduler.RunResult` (steps,
        moves, rounds, stabilization point, final configuration, trace).
    protocol:
        The composed protocol that was executed (substrate + orientation
        layer), e.g. for space accounting.
    network:
        The network that was oriented.
    """

    orientation: ChordalOrientation
    run: RunResult
    protocol: Protocol
    network: RootedNetwork

    @property
    def stabilization_steps(self) -> int | None:
        """Steps until the orientation specification held for good."""
        return self.run.first_legitimate_step

    @property
    def stabilization_rounds(self) -> int | None:
        """Asynchronous rounds until the orientation specification held for good."""
        return self.run.first_legitimate_round


def extract_orientation(
    network: RootedNetwork, configuration: Configuration, modulus: int | None = None
) -> ChordalOrientation:
    """Read the orientation variables out of a configuration (no validation)."""
    return OrientationSpecification(modulus=modulus).extract(network, configuration)


def _run(
    network: RootedNetwork,
    protocol: Protocol,
    daemon: Daemon | None,
    seed: int | None,
    from_arbitrary_state: bool,
    max_steps: int | None,
    confirm_steps: int,
    record_trace: bool,
    modulus: int | None = None,
) -> OrientationResult:
    rng = random.Random(seed)
    configuration = None if from_arbitrary_state else protocol.initial_configuration(network)
    if max_steps is None:
        # Generous default budget: both protocols stabilize within a handful of
        # waves, each of which costs O(n + m) moves.
        max_steps = 400 * (network.n + network.num_edges()) + 2_000
    scheduler = Scheduler(
        network,
        protocol,
        daemon=daemon or DistributedDaemon(),
        configuration=configuration,
        rng=rng,
        record_trace=record_trace,
    )
    # The orientation specification can hold transiently before the names have
    # settled to their final values (a token wave in flight may still rename a
    # processor).  Confirming legitimacy over at least one full wave --
    # O(n + m) moves -- guarantees the returned orientation is the settled one.
    settle_window = 4 * (network.n + network.num_edges()) + 8
    run = scheduler.run_until_legitimate(
        max_steps=max_steps, confirm_steps=max(confirm_steps, settle_window)
    )
    if not run.converged:
        raise ConvergenceError(
            f"{protocol.name} did not orient {network.name} within {max_steps} steps",
            steps=run.steps,
        )
    orientation = extract_orientation(network, run.configuration, modulus=modulus)
    orientation.require_valid(network)
    return OrientationResult(orientation=orientation, run=run, protocol=protocol, network=network)


def orient_with_dftno(
    network: RootedNetwork,
    daemon: Daemon | None = None,
    seed: int | None = None,
    modulus: int | None = None,
    from_arbitrary_state: bool = True,
    max_steps: int | None = None,
    confirm_steps: int = 0,
    record_trace: bool = False,
) -> OrientationResult:
    """Orient ``network`` with DFTNO (token-circulation based, Chapter 3).

    Parameters
    ----------
    network:
        The rooted network to orient.
    daemon:
        Scheduling adversary (default: the paper's distributed daemon).
    seed:
        Randomness for the daemon and, when ``from_arbitrary_state`` is true,
        for the arbitrary initial configuration.
    modulus:
        Chordal modulus ``N`` (default: the network size).
    from_arbitrary_state:
        Start from an arbitrary configuration (the self-stabilization setting)
        or from the protocol's clean initial state.
    max_steps:
        Step budget before :class:`~repro.errors.ConvergenceError` is raised.
    confirm_steps:
        Extra steps executed after stabilization to check closure empirically.
    record_trace:
        Keep a full execution trace in the result.
    """
    protocol = build_dftno(modulus=modulus)
    return _run(
        network,
        protocol,
        daemon,
        seed,
        from_arbitrary_state,
        max_steps,
        confirm_steps,
        record_trace,
        modulus=modulus,
    )


def orient_with_stno(
    network: RootedNetwork,
    tree: str | SpanningTreeProtocol = "bfs",
    daemon: Daemon | None = None,
    seed: int | None = None,
    modulus: int | None = None,
    from_arbitrary_state: bool = True,
    max_steps: int | None = None,
    confirm_steps: int = 0,
    record_trace: bool = False,
) -> OrientationResult:
    """Orient ``network`` with STNO (spanning-tree based, Chapter 4).

    ``tree`` selects the substrate: ``"bfs"`` (default), ``"dfs"`` (the DFS
    tree maintained by the token circulation), or any ready
    :class:`~repro.substrates.spanning_tree.SpanningTreeProtocol` instance.
    The remaining parameters match :func:`orient_with_dftno`.
    """
    protocol = build_stno(tree=tree, modulus=modulus)
    return _run(
        network,
        protocol,
        daemon,
        seed,
        from_arbitrary_state,
        max_steps,
        confirm_steps,
        record_trace,
        modulus=modulus,
    )


__all__ = [
    "OrientationResult",
    "orient_with_dftno",
    "orient_with_stno",
    "extract_orientation",
]
