"""The network-orientation problem specification ``SP_NO`` (Section 2.3).

A computation satisfies the specification when

* **SP1** -- every processor carries a unique name ``eta_p`` in
  ``{0, ..., N-1}``, and
* **SP2** -- for every processor ``p`` and every incident link ``(p, q)``,
  the label stored at ``p`` equals ``(eta_p - eta_q) mod N``.

The protocols store the name in the shared variable :data:`VAR_NAME`
(``no_eta``) and the per-link labels in :data:`VAR_EDGE_LABELS` (``no_pi``);
:class:`OrientationSpecification` evaluates SP1/SP2 directly on a live
:class:`~repro.runtime.configuration.Configuration`, which is how the
protocols' legitimacy predicates and the experiment harness decide whether the
system has stabilized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chordal import ChordalOrientation, chordal_edge_label
from repro.graphs.network import RootedNetwork
from repro.runtime.configuration import Configuration

#: Shared-variable name of the node label ``eta_p`` (both DFTNO and STNO).
VAR_NAME = "no_eta"
#: Shared-variable name of the per-link label map ``pi_p`` (both protocols).
VAR_EDGE_LABELS = "no_pi"


@dataclass(frozen=True)
class SpecificationReport:
    """Outcome of checking SP1 and SP2 on one configuration."""

    sp1: bool
    sp2: bool
    violations: tuple[str, ...] = field(default_factory=tuple)

    @property
    def holds(self) -> bool:
        """Whether the full specification ``SP_NO`` = SP1 and SP2 holds."""
        return self.sp1 and self.sp2


class OrientationSpecification:
    """Evaluates ``SP_NO`` on configurations of an orientation protocol.

    Parameters
    ----------
    modulus:
        The ``N`` of the chordal arithmetic.  ``None`` means "the number of
        processors of the network being checked" (the thesis assumes every
        processor knows this bound).
    name_variable / labels_variable:
        Names of the shared variables carrying ``eta_p`` and ``pi_p``;
        defaults match both DFTNO and STNO.
    """

    def __init__(
        self,
        modulus: int | None = None,
        name_variable: str = VAR_NAME,
        labels_variable: str = VAR_EDGE_LABELS,
    ) -> None:
        self.modulus = modulus
        self.name_variable = name_variable
        self.labels_variable = labels_variable

    def effective_modulus(self, network: RootedNetwork) -> int:
        """The modulus used for ``network`` (explicit value or ``network.n``)."""
        return self.modulus if self.modulus is not None else network.n

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check(self, network: RootedNetwork, configuration: Configuration) -> SpecificationReport:
        """Evaluate SP1 and SP2, collecting human-readable violations."""
        modulus = self.effective_modulus(network)
        violations: list[str] = []

        names: dict[int, int] = {}
        sp1 = True
        seen: dict[int, int] = {}
        for node in network.nodes():
            name = configuration.get(node, self.name_variable)
            names[node] = name
            if not isinstance(name, int) or not 0 <= name < modulus:
                sp1 = False
                violations.append(f"SP1: processor {node} carries out-of-range name {name!r}")
                continue
            if name in seen:
                sp1 = False
                violations.append(
                    f"SP1: processors {seen[name]} and {node} both carry name {name}"
                )
            else:
                seen[name] = node

        def numeric_name(node: int) -> int:
            value = names.get(node, 0)
            return value if isinstance(value, int) else 0

        sp2 = True
        for node in network.nodes():
            labels = configuration.get(node, self.labels_variable)
            if not isinstance(labels, dict):
                sp2 = False
                violations.append(f"SP2: processor {node} has no edge-label map")
                continue
            for neighbor in network.neighbors(node):
                expected = chordal_edge_label(
                    numeric_name(node), numeric_name(neighbor), modulus
                )
                actual = labels.get(neighbor)
                if actual != expected:
                    sp2 = False
                    violations.append(
                        f"SP2: link ({node}, {neighbor}) labeled {actual!r} at {node}, expected {expected}"
                    )
        return SpecificationReport(sp1=sp1, sp2=sp2, violations=tuple(violations))

    def holds(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Whether ``SP_NO`` holds (SP1 and SP2 simultaneously)."""
        return self.check(network, configuration).holds

    def sp1_holds(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Whether SP1 alone (unique in-range names) holds."""
        return self.check(network, configuration).sp1

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract(self, network: RootedNetwork, configuration: Configuration) -> ChordalOrientation:
        """Read the orientation out of ``configuration`` (without validating it)."""
        modulus = self.effective_modulus(network)
        names = {node: configuration.get(node, self.name_variable) for node in network.nodes()}
        labels: dict[int, dict[int, int]] = {}
        for node in network.nodes():
            stored = configuration.get(node, self.labels_variable)
            stored = stored if isinstance(stored, dict) else {}
            labels[node] = {
                neighbor: stored.get(neighbor) for neighbor in network.neighbors(node)
            }
        return ChordalOrientation(names=names, edge_labels=labels, modulus=modulus)


__all__ = ["OrientationSpecification", "SpecificationReport", "VAR_NAME", "VAR_EDGE_LABELS"]
