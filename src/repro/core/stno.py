"""STNO: network orientation using a spanning tree (Chapter 4).

The protocol runs over any spanning-tree substrate exposing parent pointers
(:class:`~repro.substrates.spanning_tree.SpanningTreeProtocol`) and proceeds
in the two phases of Algorithm 4.1.2:

1. **Weights, bottom-up.**  Every leaf fixes ``Weight = 1``; every internal
   processor and the root fix ``Weight = 1 + sum of the children's weights``,
   so after O(h) rounds the root's weight is the network size.
2. **Names, top-down.**  The root names itself ``0`` and distributes the
   remaining names over its children: each child receives a contiguous
   interval of exactly ``Weight_child`` names, recorded in the parent's
   ``Start`` table.  Each processor adopts the first name of its interval and
   recursively splits the rest among its own children, so after another O(h)
   rounds every processor has a unique name -- the preorder index of the tree
   traversal that visits children in port order.

Once a processor's name agrees with the interval its parent assigned it, it
repairs any incident edge label (tree *and* non-tree edges) that disagrees
with the chordal rule ``pi_p[q] = (eta_p - eta_q) mod N``.

Divergence from the thesis text (recorded in DESIGN.md): the guards printed in
Algorithm 4.1.2 only trigger recomputation when a processor's *own* name or
weight looks wrong, which is not sufficient to recover from a corrupted
``Start`` table (children would happily adopt stale intervals).  We strengthen
the guards so that a processor also recomputes whenever its ``Start`` table
disagrees with what ``Distribute`` would produce from its current name and its
children's weights.  This is the natural reading of the algorithm's intent and
is required for convergence from arbitrary states; it does not change the
space usage or the O(h) round complexity.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chordal import chordal_edge_label
from repro.core.specification import VAR_EDGE_LABELS, VAR_NAME, OrientationSpecification
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action
from repro.runtime.composition import LayeredProtocol
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, int_variable, map_variable
from repro.substrates.spanning_tree import (
    BFSSpanningTree,
    DFSSpanningTree,
    SpanningTreeProtocol,
)

#: Shared-variable name of the subtree weight ``Weight_p``.
VAR_WEIGHT = "no_weight"
#: Shared-variable name of the per-child interval table ``Start_p``.
VAR_START = "no_start"


class STNO(Protocol):
    """The orientation layer of Algorithm 4.1.2 (runs over a spanning tree).

    Use :func:`build_stno` to obtain the full composed protocol (tree
    substrate + this layer).

    Parameters
    ----------
    tree:
        The spanning-tree substrate whose parent pointers define ``A_p`` and
        ``D_p``.  Defaults to a fresh BFS tree.
    modulus:
        The ``N`` of the chordal arithmetic; ``None`` means the network size.
    """

    name = "stno"

    ACTION_WEIGHT = "STNO-Weight"
    ACTION_ROOT_WEIGHT = "STNO-RootWeight"
    ACTION_NAME = "STNO-Name"
    ACTION_ROOT_NAME = "STNO-RootName"
    ACTION_EDGE_LABEL = "STNO-EdgeLabel"

    def __init__(self, tree: SpanningTreeProtocol | None = None, modulus: int | None = None) -> None:
        self._tree = tree or BFSSpanningTree()
        self._modulus = modulus
        self._specification = OrientationSpecification(modulus=modulus)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def tree_layer(self) -> SpanningTreeProtocol:
        """The spanning-tree substrate this layer reads parents/children from."""
        return self._tree

    @property
    def specification(self) -> OrientationSpecification:
        """The SP_NO checker configured with this layer's modulus."""
        return self._specification

    def modulus(self, network: RootedNetwork) -> int:
        """The effective chordal modulus on ``network``."""
        return self._modulus if self._modulus is not None else network.n

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        top = self.modulus(network) - 1
        return [
            int_variable(
                VAR_WEIGHT,
                1,
                lambda net, p: net.n,
                initial=1,
                description="subtree weight Weight_p",
            ),
            int_variable(VAR_NAME, 0, top, initial=0, description="node label eta_p"),
            map_variable(
                VAR_START,
                0,
                top,
                initial_value=0,
                description="per-child name-interval starts Start_p[q]",
            ),
            map_variable(
                VAR_EDGE_LABELS,
                0,
                top,
                initial_value=0,
                description="chordal edge labels pi_p[q]",
            ),
        ]

    # ------------------------------------------------------------------
    # Local computations
    # ------------------------------------------------------------------
    def _children(self, view: ProcessorView) -> tuple[int, ...]:
        return self._tree.children(view)

    def _child_weight(self, view: ProcessorView, child: int) -> int:
        weight = view.try_read_neighbor(child, VAR_WEIGHT, default=1)
        if not isinstance(weight, int) or weight < 1:
            return 1
        return min(weight, view.network.n)

    def _desired_weight(self, view: ProcessorView) -> int:
        """``CalcWeight``: one (for itself) plus the children's weights, capped at n."""
        total = 1 + sum(self._child_weight(view, child) for child in self._children(view))
        return min(total, view.network.n)

    def _desired_name(self, view: ProcessorView) -> int:
        """The name the parent's ``Start`` table assigns to this processor (root: 0)."""
        if view.is_root:
            return 0
        parent = self._tree.parent(view)
        if parent is None or parent not in view.network.neighbor_set(view.node):
            return view.read(VAR_NAME)  # no parent yet: keep the current name
        table = view.try_read_neighbor(parent, VAR_START, default={})
        table = table if isinstance(table, dict) else {}
        assigned = table.get(view.node, 0)
        if not isinstance(assigned, int):
            return 0
        return assigned % self.modulus(view.network)

    def _desired_start(self, view: ProcessorView, own_name: int) -> dict[int, int]:
        """``Distribute``: contiguous, non-overlapping intervals for the children."""
        modulus = self.modulus(view.network)
        given = own_name
        table: dict[int, int] = {}
        for child in self._children(view):
            table[child] = (given + 1) % modulus
            given += self._child_weight(view, child)
        return table

    def _desired_labels(self, view: ProcessorView, own_name: int) -> dict[int, int]:
        modulus = self.modulus(view.network)
        return {
            neighbor: chordal_edge_label(
                own_name, view.try_read_neighbor(neighbor, VAR_NAME, default=0), modulus
            )
            for neighbor in view.neighbors
        }

    def _start_consistent(self, view: ProcessorView, own_name: int) -> bool:
        desired = self._desired_start(view, own_name)
        stored = view.read(VAR_START)
        stored = stored if isinstance(stored, dict) else {}
        return all(stored.get(child) == value for child, value in desired.items())

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        is_root = network.is_root(node)

        def weight_guard(view: ProcessorView) -> bool:
            return view.read(VAR_WEIGHT) != self._desired_weight(view)

        def weight_set(view: ProcessorView) -> None:
            view.write(VAR_WEIGHT, self._desired_weight(view))

        def name_guard(view: ProcessorView) -> bool:
            desired = self._desired_name(view)
            if view.read(VAR_NAME) != desired:
                return True
            return not self._start_consistent(view, desired)

        def name_set(view: ProcessorView) -> None:
            desired = self._desired_name(view)
            view.write(VAR_NAME, desired)
            view.write(VAR_START, self._desired_start(view, desired))

        def edge_guard(view: ProcessorView) -> bool:
            own_name = view.read(VAR_NAME)
            if own_name != self._desired_name(view):
                return False  # the paper labels edges only once the name is valid
            stored = view.read(VAR_EDGE_LABELS)
            stored = stored if isinstance(stored, dict) else {}
            desired = self._desired_labels(view, own_name)
            return any(stored.get(q) != label for q, label in desired.items())

        def edge_set(view: ProcessorView) -> None:
            view.write(VAR_EDGE_LABELS, self._desired_labels(view, view.read(VAR_NAME)))

        weight_action = self.ACTION_ROOT_WEIGHT if is_root else self.ACTION_WEIGHT
        name_action = self.ACTION_ROOT_NAME if is_root else self.ACTION_NAME
        return [
            Action(weight_action, weight_guard, weight_set, layer=self.name, priority=0),
            Action(name_action, name_guard, name_set, layer=self.name, priority=1),
            Action(self.ACTION_EDGE_LABEL, edge_guard, edge_set, layer=self.name, priority=2),
        ]

    # ------------------------------------------------------------------
    # Legitimacy and reference values
    # ------------------------------------------------------------------
    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """The orientation part of ``L_NO``: SP1 and SP2 hold."""
        return self._specification.holds(network, configuration)

    def expected_names(
        self, network: RootedNetwork, parents: dict[int, int | None] | None = None
    ) -> dict[int, int]:
        """The names STNO converges to on a given spanning tree.

        These are the preorder indices of the tree traversal that visits
        children in port order, starting with ``0`` at the root.  ``parents``
        defaults to the reference tree of the configured substrate when it is
        deterministic (BFS or DFS trees of this library).
        """
        if parents is None:
            if isinstance(self._tree, DFSSpanningTree):
                parents = self._tree.reference_parents(network)
            elif isinstance(self._tree, BFSSpanningTree):
                parents = _bfs_reference_parents(network)
            else:
                raise ValueError(
                    "expected_names needs an explicit parent map for this tree substrate"
                )
        children: dict[int, list[int]] = {node: [] for node in network.nodes()}
        for node in network.nodes():
            parent = parents.get(node)
            if parent is not None:
                children[parent].append(node)
        for node in children:
            order = {q: network.port(node, q) for q in children[node]}
            children[node].sort(key=lambda q: order[q])

        names: dict[int, int] = {}
        counter = 0
        stack = [network.root]
        while stack:
            node = stack.pop()
            names[node] = counter
            counter += 1
            stack.extend(reversed(children[node]))
        return names

    def subtree_weights(
        self, network: RootedNetwork, parents: dict[int, int | None]
    ) -> dict[int, int]:
        """Reference subtree sizes for a given spanning tree (used by tests/figures)."""
        children: dict[int, list[int]] = {node: [] for node in network.nodes()}
        for node in network.nodes():
            parent = parents.get(node)
            if parent is not None:
                children[parent].append(node)
        weights: dict[int, int] = {}

        def weight_of(node: int) -> int:
            if node not in weights:
                weights[node] = 1 + sum(weight_of(child) for child in children[node])
            return weights[node]

        for node in network.nodes():
            weight_of(node)
        return weights


def _bfs_reference_parents(network: RootedNetwork) -> dict[int, int | None]:
    """The parent map the BFS substrate converges to (first minimal neighbor in port order)."""
    from repro.graphs.properties import bfs_distances

    distances = bfs_distances(network)
    parents: dict[int, int | None] = {network.root: None}
    for node in network.nodes():
        if node == network.root:
            continue
        parents[node] = next(
            q for q in network.neighbors(node) if distances[q] == distances[node] - 1
        )
    return parents


def build_stno(
    tree: str | SpanningTreeProtocol = "bfs", modulus: int | None = None
) -> LayeredProtocol:
    """The full STNO protocol: a spanning-tree substrate with the orientation layer on top.

    ``tree`` is either a ready :class:`SpanningTreeProtocol` instance or one of
    the strings ``"bfs"`` (distance-relaxation BFS tree) and ``"dfs"`` (the DFS
    tree maintained by the token circulation -- the variant the conclusion of
    the thesis compares against DFTNO).
    """
    if isinstance(tree, str):
        if tree == "bfs":
            tree = BFSSpanningTree()
        elif tree == "dfs":
            tree = DFSSpanningTree()
        else:
            raise ValueError(f"unknown tree substrate {tree!r}; use 'bfs' or 'dfs'")
    overlay = STNO(tree=tree, modulus=modulus)
    return LayeredProtocol([tree, overlay], name=f"stno[{tree.name}]")


__all__ = ["STNO", "build_stno", "VAR_WEIGHT", "VAR_START"]
