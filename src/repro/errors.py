"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NetworkError(ReproError):
    """Raised when a network/topology is malformed (disconnected, bad root, ...)."""


class ProtocolError(ReproError):
    """Raised when a protocol definition is inconsistent.

    Examples: two composed layers declare the same variable name, an action
    writes a variable that was never declared, or a protocol is asked to run
    on a network it does not support (e.g. a ring protocol on a tree).
    """


class GuardLocalityError(ProtocolError):
    """A guard read state outside its closed neighborhood (debug tracker).

    Raised by :func:`repro.runtime.scheduler.first_enabled_action` when
    ``check_guard_locality`` is on.  Carries enough attribution to tell
    *which* layer and guard tripped -- the node, the action's layer and name,
    the lint rule id, and the offending ``(processor, variable)`` reads -- so
    the failure formats like a ``repro-lint`` finding
    (:func:`repro.lint.findings.finding_from_guard_error`) instead of an
    anonymous mid-step crash.
    """

    def __init__(
        self,
        message: str,
        node: int | None = None,
        layer: str = "",
        action: str = "",
        rule: str = "RL004",
        reads: tuple = (),
    ) -> None:
        super().__init__(message)
        self.node = node
        self.layer = layer
        self.action = action
        self.rule = rule
        self.reads = tuple(reads)


class EngineUnavailableError(ReproError):
    """An execution engine was requested but its runtime dependency is missing.

    Raised by the ``scheduler-vectorized`` engine when numpy is not installed;
    the message names the extra that provides it (``pip install
    .[vectorized]``).  Distinct from :class:`SchedulingError` (misuse) because
    the spec itself is valid -- only this environment cannot serve it.
    """


class SchedulingError(ReproError):
    """Raised when the scheduler or a daemon is used incorrectly."""


class ConvergenceError(ReproError):
    """Raised when an execution fails to reach the requested predicate.

    Carries the number of steps executed so callers can report partial
    progress.
    """

    def __init__(self, message: str, steps: int | None = None) -> None:
        super().__init__(message)
        self.steps = steps


class SpecificationError(ReproError):
    """Raised when a configuration violates a problem specification check
    that the caller required to hold (e.g. asking for the orientation of an
    unoriented network)."""


class RoutingError(ReproError):
    """Raised when a sense-of-direction routing request cannot be satisfied."""


class SimulationError(ReproError):
    """Raised by the synchronous message-passing simulator on misuse."""


class ReplayError(ReproError):
    """Raised when a flight-recorder log cannot be read or replayed --
    malformed entries, an unresolvable protocol, or a value recorded by
    ``repr`` only.  A *divergence* between a log and a live re-execution is
    not an error: it is the :class:`repro.replay.Divergence` result the
    replay machinery exists to localize."""
