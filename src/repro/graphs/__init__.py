"""Rooted network topologies used by the self-stabilizing protocols.

The package provides:

* :class:`~repro.graphs.network.RootedNetwork` -- the immutable graph object
  every protocol and scheduler operates on (nodes ``0..n-1``, a distinguished
  root, deterministic per-node port order).
* :mod:`~repro.graphs.generators` -- constructors for the topology families
  used throughout the paper's discussion and our experiments (rings, paths,
  stars, trees, grids, hypercubes, tori, cliques, random connected graphs, and
  the exact example networks of Figures 3.1.1 and 4.1.1).
* :mod:`~repro.graphs.properties` -- structural queries (distances, diameter,
  tree height, connectivity, degree statistics).
* :mod:`~repro.graphs.io` -- serialization to/from adjacency lists, edge
  lists, and JSON-compatible dictionaries.
"""

from repro.graphs.network import RootedNetwork
from repro.graphs import generators
from repro.graphs import properties
from repro.graphs import io

__all__ = ["RootedNetwork", "generators", "properties", "io"]
