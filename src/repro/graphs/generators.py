"""Topology generators for the experiment suite.

The thesis proves its results for *arbitrary* rooted connected networks, and
motivates them with the classic families studied in the sense-of-direction
literature (rings, tori, hypercubes, cliques).  The benchmark harness sweeps
over these families, so each generator here returns a ready-to-use
:class:`~repro.graphs.network.RootedNetwork`.

All generators are deterministic unless they take an explicit ``seed`` / rng
argument, so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import NetworkError
from repro.graphs.network import RootedNetwork


# ----------------------------------------------------------------------
# Deterministic families
# ----------------------------------------------------------------------
def ring(n: int, root: int = 0) -> RootedNetwork:
    """A cycle of ``n >= 3`` processors."""
    if n < 3:
        raise NetworkError("a ring needs at least 3 processors")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return RootedNetwork(n, edges, root=root, name=f"ring(n={n})")


def path(n: int, root: int = 0) -> RootedNetwork:
    """A simple path (linear array) of ``n`` processors."""
    if n < 1:
        raise NetworkError("a path needs at least 1 processor")
    edges = [(i, i + 1) for i in range(n - 1)]
    return RootedNetwork(n, edges, root=root, name=f"path(n={n})")


def star(n: int, root: int = 0) -> RootedNetwork:
    """A star with the hub at processor 0 and ``n - 1`` leaves."""
    if n < 2:
        raise NetworkError("a star needs at least 2 processors")
    edges = [(0, i) for i in range(1, n)]
    return RootedNetwork(n, edges, root=root, name=f"star(n={n})")


def complete(n: int, root: int = 0) -> RootedNetwork:
    """The clique ``K_n``."""
    if n < 2:
        raise NetworkError("a clique needs at least 2 processors")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return RootedNetwork(n, edges, root=root, name=f"complete(n={n})")


def wheel(n: int, root: int = 0) -> RootedNetwork:
    """A wheel: hub 0 connected to a cycle of ``n - 1`` rim processors."""
    if n < 4:
        raise NetworkError("a wheel needs at least 4 processors")
    rim = list(range(1, n))
    edges = [(0, i) for i in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return RootedNetwork(n, edges, root=root, name=f"wheel(n={n})")


def kary_tree(n: int, arity: int = 2, root: int = 0) -> RootedNetwork:
    """A complete ``arity``-ary tree on ``n`` processors (heap numbering)."""
    if n < 1:
        raise NetworkError("a tree needs at least 1 processor")
    if arity < 1:
        raise NetworkError("tree arity must be >= 1")
    edges = []
    for child in range(1, n):
        parent = (child - 1) // arity
        edges.append((parent, child))
    return RootedNetwork(n, edges, root=root, name=f"kary_tree(n={n}, k={arity})")


def caterpillar(spine: int, legs_per_node: int = 1, root: int = 0) -> RootedNetwork:
    """A caterpillar: a spine path with ``legs_per_node`` leaves on each spine node."""
    if spine < 1:
        raise NetworkError("a caterpillar needs a non-empty spine")
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for node in range(spine):
        for _ in range(legs_per_node):
            edges.append((node, next_id))
            next_id += 1
    return RootedNetwork(
        next_id, edges, root=root, name=f"caterpillar(spine={spine}, legs={legs_per_node})"
    )


def grid(rows: int, cols: int, root: int = 0) -> RootedNetwork:
    """A ``rows x cols`` mesh."""
    if rows < 1 or cols < 1:
        raise NetworkError("grid dimensions must be positive")
    n = rows * cols

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node_id(r, c), node_id(r, c + 1)))
            if r + 1 < rows:
                edges.append((node_id(r, c), node_id(r + 1, c)))
    return RootedNetwork(n, edges, root=root, name=f"grid({rows}x{cols})")


def torus(rows: int, cols: int, root: int = 0) -> RootedNetwork:
    """A ``rows x cols`` torus (wrap-around mesh); dimensions must be >= 3."""
    if rows < 3 or cols < 3:
        raise NetworkError("torus dimensions must be >= 3 to avoid duplicate links")
    n = rows * cols

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    edge_set = set()
    for r in range(rows):
        for c in range(cols):
            a = node_id(r, c)
            for b in (node_id(r, (c + 1) % cols), node_id((r + 1) % rows, c)):
                edge_set.add((a, b) if a < b else (b, a))
    return RootedNetwork(n, sorted(edge_set), root=root, name=f"torus({rows}x{cols})")


def hypercube(dimension: int, root: int = 0) -> RootedNetwork:
    """The ``dimension``-dimensional hypercube ``Q_d`` (``2**d`` processors)."""
    if dimension < 1:
        raise NetworkError("hypercube dimension must be >= 1")
    n = 1 << dimension
    edges = []
    for node in range(n):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other:
                edges.append((node, other))
    return RootedNetwork(n, edges, root=root, name=f"hypercube(d={dimension})")


def lollipop(clique_size: int, tail: int, root: int = 0) -> RootedNetwork:
    """A clique of ``clique_size`` processors with a path of ``tail`` processors attached."""
    if clique_size < 2:
        raise NetworkError("lollipop clique must have at least 2 processors")
    if tail < 1:
        raise NetworkError("lollipop tail must have at least 1 processor")
    edges = [(i, j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    prev = clique_size - 1
    for k in range(tail):
        node = clique_size + k
        edges.append((prev, node))
        prev = node
    n = clique_size + tail
    return RootedNetwork(n, edges, root=root, name=f"lollipop(k={clique_size}, tail={tail})")


# ----------------------------------------------------------------------
# Randomized families
# ----------------------------------------------------------------------
def random_tree(n: int, seed: int | None = None, root: int = 0) -> RootedNetwork:
    """A uniformly random labeled tree (random Pruefer-like attachment)."""
    if n < 1:
        raise NetworkError("a tree needs at least 1 processor")
    rng = random.Random(seed)
    edges = []
    for node in range(1, n):
        parent = rng.randrange(node)
        edges.append((parent, node))
    return RootedNetwork(n, edges, root=root, name=f"random_tree(n={n}, seed={seed})")


def random_connected(
    n: int,
    extra_edge_probability: float = 0.15,
    seed: int | None = None,
    root: int = 0,
) -> RootedNetwork:
    """A random connected graph: a random spanning tree plus extra random links.

    Every non-tree pair of processors is linked independently with probability
    ``extra_edge_probability``, so the expected density is tunable while
    connectivity is guaranteed.
    """
    if n < 1:
        raise NetworkError("a network needs at least 1 processor")
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise NetworkError("extra_edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    edge_set: set[tuple[int, int]] = set()
    for node in range(1, n):
        parent = rng.randrange(node)
        edge_set.add((parent, node))
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in edge_set and rng.random() < extra_edge_probability:
                edge_set.add((u, v))
    return RootedNetwork(
        n,
        sorted(edge_set),
        root=root,
        name=f"random_connected(n={n}, p={extra_edge_probability}, seed={seed})",
    )


def random_regularish(n: int, degree: int, seed: int | None = None, root: int = 0) -> RootedNetwork:
    """A connected graph in which every processor has degree close to ``degree``.

    Built as a ring (to guarantee connectivity) plus random chords added while
    respecting the target degree.  Used by the space-complexity sweep, which
    needs to vary the maximum degree Delta independently of ``n``.
    """
    if n < 3:
        raise NetworkError("need at least 3 processors")
    if degree < 2 or degree >= n:
        raise NetworkError("degree must lie in [2, n-1]")
    rng = random.Random(seed)
    edge_set = {(i, (i + 1) % n) if i < (i + 1) % n else ((i + 1) % n, i) for i in range(n)}
    degrees = [2] * n
    candidates = [(u, v) for u in range(n) for v in range(u + 1, n) if (u, v) not in edge_set]
    rng.shuffle(candidates)
    for u, v in candidates:
        if degrees[u] < degree and degrees[v] < degree:
            edge_set.add((u, v))
            degrees[u] += 1
            degrees[v] += 1
    return RootedNetwork(
        n, sorted(edge_set), root=root, name=f"random_regularish(n={n}, d={degree}, seed={seed})"
    )


# ----------------------------------------------------------------------
# The exact example networks drawn in the thesis figures
# ----------------------------------------------------------------------
def figure_3_1_1_network() -> RootedNetwork:
    """The 5-processor rooted network of Figure 3.1.1 (DFTNO walkthrough).

    Processors (thesis labels in parentheses): ``0`` (r, the root), ``1`` (b),
    ``2`` (d), ``3`` (c), ``4`` (a).  The identifiers are chosen so that the
    default ascending port order makes the deterministic DFS visit ``b``
    before ``a`` at the root, reproducing the naming sequence of the figure:
    r=0, b=1, d=2, c=3, a=4.
    """
    edges = [(0, 1), (0, 4), (1, 2), (2, 3)]
    return RootedNetwork(5, edges, root=0, name="figure-3.1.1")


FIGURE_3_1_1_LABELS = {0: "r", 1: "b", 2: "d", 3: "c", 4: "a"}


def figure_4_1_1_network() -> RootedNetwork:
    """The 5-processor rooted tree of Figure 4.1.1 (STNO walkthrough).

    The root (0) has two children: an internal node (1) with two leaf children
    (3 and 4), and a leaf child (2).  The weight computation of the figure
    yields weights ``leaf=1``, ``internal=3``, ``root=5`` and the final names
    are root=0, internal=1, its leaves 2 and 3, and the remaining leaf 4.
    """
    edges = [(0, 1), (0, 2), (1, 3), (1, 4)]
    return RootedNetwork(5, edges, root=0, name="figure-4.1.1")


def figure_2_2_1_network() -> RootedNetwork:
    """A small network used to illustrate the chordal sense of direction (Fig 2.2.1).

    The exact drawing in the scanned thesis is not recoverable; we use a
    5-processor cycle with one chord, which exercises both ring links and a
    chord label, matching the intent of the illustration.
    """
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]
    return RootedNetwork(5, edges, root=0, name="figure-2.2.1")


#: Topology family names :func:`family` can build (the sweepable families).
FAMILY_NAMES = (
    "ring",
    "path",
    "star",
    "complete",
    "binary_tree",
    "random_tree",
    "random_connected",
    "grid",
)


def family(name: str, n: int, seed: int | None = None) -> RootedNetwork:
    """Dispatch helper used by sweeps: build family ``name`` with ``n`` processors."""
    builders = {
        "ring": lambda: ring(max(n, 3)),
        "path": lambda: path(n),
        "star": lambda: star(max(n, 2)),
        "complete": lambda: complete(max(n, 2)),
        "binary_tree": lambda: kary_tree(n, 2),
        "random_tree": lambda: random_tree(n, seed=seed),
        "random_connected": lambda: random_connected(n, seed=seed),
        "grid": lambda: grid(max(1, int(round(n ** 0.5))), max(1, int(round(n ** 0.5)))),
    }
    if name not in builders:
        raise NetworkError(f"unknown topology family {name!r}; choose from {sorted(builders)}")
    return builders[name]()


__all__ = [
    "ring",
    "path",
    "star",
    "complete",
    "wheel",
    "kary_tree",
    "caterpillar",
    "grid",
    "torus",
    "hypercube",
    "lollipop",
    "random_tree",
    "random_connected",
    "random_regularish",
    "figure_3_1_1_network",
    "figure_4_1_1_network",
    "figure_2_2_1_network",
    "FIGURE_3_1_1_LABELS",
    "FAMILY_NAMES",
    "family",
]
