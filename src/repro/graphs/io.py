"""Serialization helpers for :class:`~repro.graphs.network.RootedNetwork`.

Two interchange formats are supported:

* a JSON-compatible dictionary (``to_dict`` / ``from_dict``) used to persist
  experiment inputs next to their results, and
* a human readable adjacency-list text format (``to_adjacency_text`` /
  ``from_adjacency_text``) convenient for small hand-written topologies in
  examples and tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import NetworkError
from repro.graphs.network import RootedNetwork


def to_dict(network: RootedNetwork) -> dict[str, Any]:
    """A JSON-compatible description of the network (nodes, edges, root, ports)."""
    return {
        "name": network.name,
        "num_nodes": network.n,
        "root": network.root,
        "edges": sorted([list(edge) for edge in network.edges()]),
        "port_orders": {str(node): list(network.neighbors(node)) for node in network.nodes()},
    }


def from_dict(data: dict[str, Any]) -> RootedNetwork:
    """Rebuild a network from the output of :func:`to_dict`."""
    try:
        num_nodes = int(data["num_nodes"])
        edges = [tuple(edge) for edge in data["edges"]]
        root = int(data.get("root", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise NetworkError(f"malformed network dictionary: {exc}") from exc
    port_orders = {
        int(node): tuple(order) for node, order in (data.get("port_orders") or {}).items()
    }
    return RootedNetwork(
        num_nodes,
        edges,
        root=root,
        name=data.get("name"),
        port_orders=port_orders or None,
    )


def to_json(network: RootedNetwork, indent: int | None = 2) -> str:
    """JSON text form of :func:`to_dict`."""
    return json.dumps(to_dict(network), indent=indent, sort_keys=True)


def from_json(text: str) -> RootedNetwork:
    """Rebuild a network from :func:`to_json` output."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetworkError(f"invalid JSON network description: {exc}") from exc
    return from_dict(data)


def to_adjacency_text(network: RootedNetwork) -> str:
    """A compact adjacency-list text form.

    Line 1: ``<num_nodes> <root>``.  Each following line: ``<node>: n1 n2 ...``
    listing the neighbors of ``node`` in port order.
    """
    lines = [f"{network.n} {network.root}"]
    for node in network.nodes():
        neighbors = " ".join(str(q) for q in network.neighbors(node))
        lines.append(f"{node}: {neighbors}".rstrip())
    return "\n".join(lines) + "\n"


def from_adjacency_text(text: str, name: str | None = None) -> RootedNetwork:
    """Parse the format produced by :func:`to_adjacency_text`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise NetworkError("empty adjacency description")
    header = lines[0].split()
    if len(header) != 2:
        raise NetworkError("header must be '<num_nodes> <root>'")
    try:
        num_nodes, root = int(header[0]), int(header[1])
    except ValueError as exc:
        raise NetworkError(f"invalid header {lines[0]!r}") from exc

    port_orders: dict[int, tuple[int, ...]] = {}
    edges: set[tuple[int, int]] = set()
    for line in lines[1:]:
        if ":" not in line:
            raise NetworkError(f"malformed adjacency line {line!r}")
        node_text, _, neighbors_text = line.partition(":")
        try:
            node = int(node_text)
            neighbors = tuple(int(token) for token in neighbors_text.split())
        except ValueError as exc:
            raise NetworkError(f"malformed adjacency line {line!r}") from exc
        port_orders[node] = neighbors
        for neighbor in neighbors:
            edges.add((node, neighbor) if node < neighbor else (neighbor, node))
    return RootedNetwork(num_nodes, sorted(edges), root=root, name=name, port_orders=port_orders)


__all__ = [
    "to_dict",
    "from_dict",
    "to_json",
    "from_json",
    "to_adjacency_text",
    "from_adjacency_text",
]
