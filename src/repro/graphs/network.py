"""The rooted, undirected, connected network model of the paper.

Chapter 2 of the thesis models the distributed system as an undirected
connected graph ``S = (V, E)`` with a distinguished *root* processor ``r``;
all other processors are anonymous.  Communication is via locally shared
variables between neighbors.  :class:`RootedNetwork` captures exactly that
structure plus the *port order* each processor uses to enumerate its
neighbors, which is what makes the depth-first traversal of ``DFTNO``
deterministic.

Nodes are integers ``0..n-1``.  The object is immutable after construction;
all derived structures (neighbor tuples, port maps) are precomputed so that
guard evaluation in the scheduler is cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import NetworkError

Edge = tuple[int, int]


def _normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (small, large) representation of an edge."""
    return (u, v) if u <= v else (v, u)


class RootedNetwork:
    """An undirected, connected graph with a distinguished root processor.

    Parameters
    ----------
    num_nodes:
        Number of processors ``n``; processors are identified by
        ``0..n-1``.  Identifiers exist only inside the simulator -- the
        protocols themselves treat every non-root processor as anonymous.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops and duplicate edges are
        rejected.
    root:
        The distinguished root processor ``r`` (default ``0``).
    name:
        Optional human readable name used in reports and benchmark tables.
    port_orders:
        Optional mapping ``node -> sequence of neighbors`` overriding the
        default port order (ascending neighbor identifier).  Protocols scan
        neighbors in port order, so this controls e.g. the order in which the
        DFS token visits children.

    Raises
    ------
    NetworkError
        If the graph is empty, has invalid node identifiers, self loops,
        duplicate edges, an out-of-range root, or is not connected.
    """

    __slots__ = (
        "_n",
        "_root",
        "_name",
        "_edges",
        "_adjacency",
        "_ports",
        "_max_degree",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        root: int = 0,
        name: str | None = None,
        port_orders: Mapping[int, Sequence[int]] | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise NetworkError("a network needs at least one processor")
        if not 0 <= root < num_nodes:
            raise NetworkError(f"root {root} is not a valid processor id (n={num_nodes})")

        self._n = int(num_nodes)
        self._root = int(root)
        self._name = name or f"network(n={num_nodes})"

        edge_set: set[Edge] = set()
        adjacency: list[set[int]] = [set() for _ in range(num_nodes)]
        for u, v in edges:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise NetworkError(f"edge ({u}, {v}) references an unknown processor")
            if u == v:
                raise NetworkError(f"self loop on processor {u} is not allowed")
            edge = _normalize_edge(u, v)
            if edge in edge_set:
                raise NetworkError(f"duplicate edge {edge}")
            edge_set.add(edge)
            adjacency[u].add(v)
            adjacency[v].add(u)

        if num_nodes > 1 and not edge_set:
            raise NetworkError("a multi-processor network needs at least one link")

        ports: list[tuple[int, ...]] = []
        for node in range(num_nodes):
            if port_orders is not None and node in port_orders:
                order = tuple(port_orders[node])
                if sorted(order) != sorted(adjacency[node]):
                    raise NetworkError(
                        f"port order for processor {node} does not list exactly its neighbors"
                    )
                ports.append(order)
            else:
                ports.append(tuple(sorted(adjacency[node])))

        self._edges = frozenset(edge_set)
        self._adjacency = tuple(frozenset(neigh) for neigh in adjacency)
        self._ports = tuple(ports)
        self._max_degree = max((len(p) for p in ports), default=0)

        self._check_connected()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processors in the network."""
        return self._n

    @property
    def root(self) -> int:
        """Identifier of the distinguished root processor ``r``."""
        return self._root

    @property
    def name(self) -> str:
        """Human readable name of the topology."""
        return self._name

    @property
    def max_degree(self) -> int:
        """The maximum degree Delta of the network."""
        return self._max_degree

    def num_edges(self) -> int:
        """Number of bidirectional links."""
        return len(self._edges)

    def nodes(self) -> range:
        """All processor identifiers."""
        return range(self._n)

    def edges(self) -> frozenset[Edge]:
        """The set of links, each as a canonical ``(min, max)`` pair."""
        return self._edges

    def is_root(self, node: int) -> bool:
        """Whether ``node`` is the distinguished root."""
        return node == self._root

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> tuple[int, ...]:
        """Neighbors of ``node`` in port order (the order protocols scan them)."""
        return self._ports[node]

    def neighbor_set(self, node: int) -> frozenset[int]:
        """Neighbors of ``node`` as a set (membership queries)."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self._ports[node])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the link ``(u, v)`` exists."""
        return _normalize_edge(u, v) in self._edges

    def port(self, node: int, neighbor: int) -> int:
        """The local port number of ``neighbor`` at ``node``.

        Ports number the incident links ``0..degree-1`` in port order; this is
        the label a processor uses to address a link before any orientation
        has been computed.
        """
        try:
            return self._ports[node].index(neighbor)
        except ValueError as exc:
            raise NetworkError(f"{neighbor} is not a neighbor of {node}") from exc

    def neighbor_at(self, node: int, port: int) -> int:
        """The neighbor reached through local ``port`` of ``node``."""
        try:
            return self._ports[node][port]
        except IndexError as exc:
            raise NetworkError(f"processor {node} has no port {port}") from exc

    # ------------------------------------------------------------------
    # Internal helpers / dunder methods
    # ------------------------------------------------------------------
    def _check_connected(self) -> None:
        seen = {self._root}
        frontier = [self._root]
        while frontier:
            node = frontier.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != self._n:
            missing = sorted(set(range(self._n)) - seen)
            raise NetworkError(f"network is not connected; unreachable processors: {missing}")

    def with_root(self, root: int) -> "RootedNetwork":
        """A copy of this network rooted at a different processor."""
        return RootedNetwork(
            self._n,
            self._edges,
            root=root,
            name=f"{self._name}@root={root}",
            port_orders={node: self._ports[node] for node in self.nodes()},
        )

    def with_port_orders(self, port_orders: Mapping[int, Sequence[int]]) -> "RootedNetwork":
        """A copy of this network with some port orders replaced."""
        merged = {node: self._ports[node] for node in self.nodes()}
        for node, order in port_orders.items():
            merged[node] = tuple(order)
        return RootedNetwork(self._n, self._edges, root=self._root, name=self._name, port_orders=merged)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RootedNetwork):
            return NotImplemented
        return (
            self._n == other._n
            and self._root == other._root
            and self._edges == other._edges
            and self._ports == other._ports
        )

    def __hash__(self) -> int:
        return hash((self._n, self._root, self._edges, self._ports))

    def __repr__(self) -> str:
        return (
            f"RootedNetwork(name={self._name!r}, n={self._n}, m={len(self._edges)}, "
            f"root={self._root})"
        )
