"""Structural queries on :class:`~repro.graphs.network.RootedNetwork`.

These are used both by the analysis harness (e.g. to report diameter or tree
height alongside stabilization times) and by correctness checks (e.g. the
spanning-tree legitimacy predicate needs true BFS distances).
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from repro.errors import NetworkError
from repro.graphs.network import RootedNetwork


def bfs_distances(network: RootedNetwork, source: int | None = None) -> dict[int, int]:
    """Hop distances from ``source`` (default: the root) to every processor."""
    if source is None:
        source = network.root
    distances = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in network.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def eccentricity(network: RootedNetwork, node: int) -> int:
    """Largest hop distance from ``node`` to any other processor."""
    return max(bfs_distances(network, node).values())


def diameter(network: RootedNetwork) -> int:
    """The diameter of the network (0 for a single processor)."""
    return max(eccentricity(network, node) for node in network.nodes())


def radius_from_root(network: RootedNetwork) -> int:
    """Eccentricity of the root; the depth of the BFS tree rooted at ``r``."""
    return eccentricity(network, network.root)


def is_tree(network: RootedNetwork) -> bool:
    """Whether the network is a tree (connected with ``n - 1`` links)."""
    return network.num_edges() == network.n - 1


def degree_histogram(network: RootedNetwork) -> dict[int, int]:
    """Mapping ``degree -> number of processors with that degree``."""
    histogram: dict[int, int] = {}
    for node in network.nodes():
        histogram[network.degree(node)] = histogram.get(network.degree(node), 0) + 1
    return histogram


def average_degree(network: RootedNetwork) -> float:
    """Average processor degree (``2m / n``)."""
    return 2.0 * network.num_edges() / network.n


def tree_height(network: RootedNetwork, parents: Mapping[int, int | None]) -> int:
    """Height of the spanning tree described by ``parents``.

    ``parents`` maps every non-root processor to its parent; the root maps to
    ``None``.  The height ``h`` is the quantity the STNO stabilization bound
    O(h) refers to.

    Raises
    ------
    NetworkError
        If ``parents`` does not describe a spanning tree of the network
        (missing processors, parent not a neighbor, or a cycle).
    """
    depths: dict[int, int] = {network.root: 0}

    def depth_of(node: int, trail: set[int]) -> int:
        if node in depths:
            return depths[node]
        if node in trail:
            raise NetworkError("parent pointers contain a cycle")
        parent = parents.get(node)
        if parent is None:
            raise NetworkError(f"processor {node} has no parent but is not the root")
        if parent not in network.neighbor_set(node):
            raise NetworkError(f"parent {parent} of processor {node} is not one of its neighbors")
        trail.add(node)
        depths[node] = depth_of(parent, trail) + 1
        trail.discard(node)
        return depths[node]

    for node in network.nodes():
        depth_of(node, set())
    return max(depths.values())


def spanning_tree_children(
    network: RootedNetwork, parents: Mapping[int, int | None]
) -> dict[int, tuple[int, ...]]:
    """Children lists (in port order) of the spanning tree described by ``parents``."""
    children: dict[int, list[int]] = {node: [] for node in network.nodes()}
    for node in network.nodes():
        parent = parents.get(node)
        if parent is not None:
            children[parent].append(node)
    ordered: dict[int, tuple[int, ...]] = {}
    for node in network.nodes():
        member = set(children[node])
        ordered[node] = tuple(q for q in network.neighbors(node) if q in member)
    return ordered


def is_spanning_tree(network: RootedNetwork, parents: Mapping[int, int | None]) -> bool:
    """Whether ``parents`` encodes a spanning tree of the network rooted at ``r``."""
    try:
        tree_height(network, parents)
    except NetworkError:
        return False
    non_root = [node for node in network.nodes() if node != network.root]
    return all(parents.get(node) is not None for node in non_root) and parents.get(network.root) is None


__all__ = [
    "bfs_distances",
    "eccentricity",
    "diameter",
    "radius_from_root",
    "is_tree",
    "degree_histogram",
    "average_degree",
    "tree_height",
    "spanning_tree_children",
    "is_spanning_tree",
]
