"""repro-lint: static protocol verifier and shard race detector.

Two halves with one findings vocabulary (:data:`~repro.lint.findings.RULES`):

* the **static** pass (:mod:`repro.lint.static`) walks every layer's
  guard/action source through the :class:`~repro.runtime.processor.ProcessorView`
  API and reports locality and purity violations (``RL001``-``RL006``),
  deriving per-action read/write sets (:mod:`repro.lint.summary`) on the way;
* the **dynamic** sanitizer (:mod:`repro.lint.racecheck`) attaches to the
  sharded engine and reports frontier-exchange races (``RC101``-``RC103``).

Runtime :class:`~repro.errors.GuardLocalityError` failures route through the
same formatter via :func:`~repro.lint.findings.finding_from_guard_error`.
"""

from repro.lint.findings import (
    Finding,
    RULES,
    finding_from_guard_error,
    findings_to_json,
    format_findings,
    severity_of,
)
from repro.lint.racecheck import ShardRaceChecker, run_race_check
from repro.lint.static import (
    ActionSummary,
    analyze_paths,
    iter_source_files,
    lint_paths,
    modules_for_protocols,
)
from repro.lint.summary import build_summary, write_summary

__all__ = [
    "ActionSummary",
    "Finding",
    "RULES",
    "ShardRaceChecker",
    "analyze_paths",
    "build_summary",
    "finding_from_guard_error",
    "findings_to_json",
    "format_findings",
    "iter_source_files",
    "lint_paths",
    "modules_for_protocols",
    "run_race_check",
    "severity_of",
    "write_summary",
]
