"""``python -m repro.lint`` -- the ``repro-lint`` entry point without install."""

import sys

from repro.lint.cli import main

sys.exit(main())
