"""``repro-lint``: static protocol verifier + shard race detector.

Static mode (default) runs the AST pass over the given files/directories and
prints findings (exit 1 when any are found)::

    repro-lint src/repro                       # lint everything
    repro-lint --protocols dftno stno-bfs      # lint just those layers' modules
    repro-lint src/repro --format json         # machine-readable findings
    repro-lint src/repro --summary rwsets.json # also write read/write sets

Kernel mode cross-checks the registered batch kernels' declared read/write
sets against the static per-node sets (rule RL007, exit 1 on disagreement)::

    repro-lint --kernels

Race mode runs one sharded execution with the variable-level race sanitizer
attached and reports any frontier-exchange divergence (exit 1 on findings or
non-convergence)::

    repro-lint --race dftno --shards 2 --size 8 --seed 1

Exit codes: 0 clean, 1 findings (or race-mode non-convergence), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.findings import findings_to_json, format_findings
from repro.lint.static import lint_paths, modules_for_protocols


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static protocol verifier and shard race detector.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        metavar="NAME",
        help="lint the modules backing these protocol names (dftno, stno-bfs, stno-dfs)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--summary",
        metavar="FILE",
        help="also write the per-layer static read/write sets to FILE as JSON",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="cross-check registered batch-kernel reads/writes declarations "
        "against the static per-node sets (rule RL007) instead of static lint",
    )
    race = parser.add_argument_group("race check (dynamic)")
    race.add_argument(
        "--race",
        metavar="PROTOCOL",
        help="run the sharded race sanitizer on this protocol instead of static lint",
    )
    race.add_argument("--shards", type=int, default=2, help="shard count (default: 2)")
    race.add_argument("--size", type=int, default=8, help="network size (default: 8)")
    race.add_argument(
        "--family",
        default="random_connected",
        help="network family (default: random_connected)",
    )
    race.add_argument("--seed", type=int, default=1, help="seed (default: 1)")
    race.add_argument(
        "--partition", default="bfs", help="partition strategy (default: bfs)"
    )
    race.add_argument(
        "--mode",
        choices=("inline", "fork"),
        default="inline",
        help="shard harness for --race (default: inline)",
    )
    race.add_argument(
        "--steps", type=int, default=None, help="step budget override for --race"
    )
    return parser


def _emit(findings, fmt: str, title: str) -> None:
    if fmt == "json":
        print(findings_to_json(findings))
    else:
        print(format_findings(findings, title=title))


def _run_static(args: argparse.Namespace) -> int:
    paths: list[Path] = [Path(p) for p in args.paths]
    if args.protocols:
        paths.extend(modules_for_protocols(args.protocols))
    if not paths:
        package_root = Path(__file__).resolve().parent.parent
        paths = [package_root]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"repro-lint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    if args.summary:
        from repro.lint.summary import write_summary

        write_summary(paths, args.summary)
    _emit(findings, args.format, title="static analysis")
    return 1 if findings else 0


def _run_kernels(args: argparse.Namespace) -> int:
    from repro.lint.kernels import check_kernels

    findings, checked = check_kernels()
    _emit(findings, args.format, title="kernel cross-check")
    if args.format == "text":
        print(f"kernel cross-check: {checked} kernel(s) verified against static sets")
    return 1 if findings else 0


def _run_race(args: argparse.Namespace) -> int:
    from repro.lint.racecheck import run_race_check

    checker, converged = run_race_check(
        protocol=args.race,
        family=args.family,
        size=args.size,
        shards=args.shards,
        seed=args.seed,
        partition=args.partition,
        max_steps=args.steps,
        mode=args.mode,
    )
    _emit(checker.findings, args.format, title="race check")
    if args.format == "text":
        print(
            f"race check: {args.race} on {args.family}({args.size}) seed {args.seed}, "
            f"{args.shards} shards ({args.mode}); {checker.mirror_audits} mirror audits, "
            f"{checker.execution_audits} execution audits; "
            f"{'converged' if converged else 'DID NOT CONVERGE'}"
        )
    if checker.findings:
        return 1
    if not converged:
        print("repro-lint: race check run did not converge", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.race:
            return _run_race(args)
        if args.kernels:
            return _run_kernels(args)
        return _run_static(args)
    except (ValueError, OSError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
