"""The findings model shared by every ``repro-lint`` mode.

A :class:`Finding` is one rule violation -- static (``RL...``, from
:mod:`repro.lint.static`), dynamic guard-locality (``RL004`` raised at run
time as :class:`~repro.errors.GuardLocalityError`), or a sharded race
(``RC...``, from :mod:`repro.lint.racecheck`).  All three surfaces render
through the same two formatters so CI logs, the campaign pre-flight table and
the race-check report read identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.errors import GuardLocalityError

#: Rule catalog: id -> (severity, one-line description).  The static pass
#: emits RL001..RL006; the dynamic tracker raises RL004 (as
#: :class:`GuardLocalityError`); the kernel cross-check
#: (:mod:`repro.lint.kernels`) emits RL007; the shard race checker emits
#: RC101..RC103.
RULES: dict[str, tuple[str, str]] = {
    "RL001": ("error", "guard mutates state (view.write inside a guard)"),
    "RL002": ("warning", "guard performs I/O"),
    "RL003": ("warning", "guard draws randomness"),
    "RL004": ("error", "non-local read (bypasses the ProcessorView neighbor checks)"),
    "RL005": ("error", "non-local write (statement writes outside its own node)"),
    "RL006": ("error", "undeclared variable access (name not in the layer's schema)"),
    "RL007": ("error", "batch kernel reads/writes declaration disagrees with the per-node action's static sets"),
    "RC101": ("error", "stale ghost: shard mirror of a ghost node diverged from the journal"),
    "RC102": ("error", "stale block mirror: shard's own-node state diverged from the journal"),
    "RC103": ("error", "conflicting write: two shards (or a non-owner) wrote one node in a step"),
}


def severity_of(rule: str) -> str:
    """The catalog severity of ``rule`` (unknown rules count as errors)."""
    return RULES.get(rule, ("error", ""))[0]


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file:line (or a run location)."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    layer: str = ""
    function: str = ""

    def location(self) -> str:
        """``path:line`` (race findings use a ``protocol@step`` pseudo-path)."""
        return f"{self.path}:{self.line}" if self.line else self.path


def finding_from_guard_error(exc: GuardLocalityError, path: str = "<runtime>") -> Finding:
    """Render a dynamic :class:`GuardLocalityError` as a lint finding.

    The runtime tracker and the static pass report the same contract
    violation; routing the exception through here keeps both surfaces in one
    format (rule id, layer, offending variables).
    """
    return Finding(
        rule=exc.rule,
        path=path,
        line=0,
        message=str(exc),
        severity=severity_of(exc.rule),
        layer=exc.layer,
        function=exc.action,
    )


def format_findings(findings: Sequence[Finding], title: str | None = None) -> str:
    """Human-readable findings table (one ``path:line: RULE ...`` per line)."""
    if not findings:
        return "repro-lint: no findings"
    lines = []
    if title:
        lines.append(title)
    for finding in findings:
        context = "/".join(part for part in (finding.layer, finding.function) if part)
        suffix = f" [{context}]" if context else ""
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.severity}: "
            f"{finding.message}{suffix}"
        )
    errors = sum(1 for finding in findings if finding.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"repro-lint: {len(findings)} finding(s) ({errors} error, {warnings} warning)")
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Machine-readable form (``repro-lint --format json``)."""
    return json.dumps([asdict(finding) for finding in findings], indent=2, sort_keys=True)


__all__ = [
    "Finding",
    "RULES",
    "finding_from_guard_error",
    "findings_to_json",
    "format_findings",
    "severity_of",
]
