"""Cross-check batch-kernel read/write declarations against the static sets.

Every :class:`~repro.runtime.actions.BatchAction` carries declarative
``reads``/``writes`` tuples -- the vectorized engine does not enforce them,
so nothing at run time catches a kernel whose declaration drifts from what
its per-node twin actually touches.  This pass closes that gap: for each
registered kernel it finds the per-node action of the same name on the same
protocol class, pulls that action's statically extracted footprint
(:mod:`repro.lint.static`), and emits rule **RL007** when the declared sets
disagree with the derived ones.

The comparison is exact, both directions: a kernel claiming a variable the
action never touches is as much a lie as one omitting a variable it does.
Actions whose guard or statement the static pass could not resolve are
skipped (reported by the caller as unchecked, never silently "clean"), and a
kernel with no per-node twin at all is itself an RL007 -- kernels exist only
as whole-array mirrors of per-node actions.

Run via ``repro-lint --kernels``; CI's vectorized job gates on it.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.lint.findings import Finding, severity_of
from repro.lint.static import ActionSummary, analyze_paths
from repro.runtime.protocol import Protocol

#: The kernel-bearing protocols this repo registers, with a network each
#: kernel set can be instantiated against (Dijkstra's ring protocol needs an
#: actual ring).  New substrates with ``batch_actions`` belong here.
def _default_registry() -> list[tuple[Protocol, object]]:
    from repro.graphs import generators
    from repro.substrates.dijkstra_ring import DijkstraTokenRing
    from repro.substrates.spanning_tree import BFSSpanningTree

    return [
        (BFSSpanningTree(), generators.random_connected(8, seed=1)),
        (DijkstraTokenRing(), generators.ring(8)),
    ]


def _summary_reads(summary: ActionSummary) -> frozenset[str]:
    return frozenset(
        summary.guard_reads_own
        | summary.guard_reads_neighbor
        | summary.statement_reads_own
        | summary.statement_reads_neighbor
    )


def check_kernels(
    registry: Iterable[tuple[Protocol, object]] | None = None,
) -> tuple[list[Finding], int]:
    """Cross-check every registered kernel; return (findings, kernels checked).

    ``registry`` is ``(protocol, network)`` pairs; the default covers the
    repo's kernel-bearing substrates.  The count excludes kernels whose
    per-node twin the static pass could not resolve -- those are skipped,
    not vouched for.
    """
    findings: list[Finding] = []
    checked = 0
    for protocol, network in registry if registry is not None else _default_registry():
        kernels = protocol.batch_actions(network)
        if not kernels:
            continue
        owner = type(protocol).__name__
        module_path = Path(inspect.getfile(type(protocol)))
        analyzer = analyze_paths([module_path])
        summaries = {
            summary.action: summary
            for summary in analyzer.summaries
            if summary.owner == owner
        }
        for kernel in kernels:
            summary = summaries.get(kernel.name)
            if summary is None:
                findings.append(
                    Finding(
                        rule="RL007",
                        path=str(module_path),
                        line=0,
                        message=(
                            f"batch kernel {kernel.name!r} has no per-node action "
                            f"on {owner} to cross-check against"
                        ),
                        severity=severity_of("RL007"),
                        layer=kernel.layer,
                        function=kernel.name,
                    )
                )
                continue
            if not (summary.guard_resolved and summary.statement_resolved):
                continue  # unresolved twin: skipped, not vouched for
            checked += 1
            declared_reads = frozenset(kernel.reads)
            declared_writes = frozenset(kernel.writes)
            static_reads = _summary_reads(summary)
            static_writes = frozenset(summary.writes)
            problems = []
            if missing := static_reads - declared_reads:
                problems.append(f"reads missing {sorted(missing)}")
            if extra := declared_reads - static_reads:
                problems.append(f"reads over-declare {sorted(extra)}")
            if missing := static_writes - declared_writes:
                problems.append(f"writes missing {sorted(missing)}")
            if extra := declared_writes - static_writes:
                problems.append(f"writes over-declare {sorted(extra)}")
            if problems:
                findings.append(
                    Finding(
                        rule="RL007",
                        path=str(module_path),
                        line=summary.line,
                        message=(
                            f"batch kernel {kernel.name!r} declaration disagrees "
                            f"with the static sets of its per-node action: "
                            + "; ".join(problems)
                        ),
                        severity=severity_of("RL007"),
                        layer=kernel.layer,
                        function=kernel.name,
                    )
                )
    return findings, checked


__all__ = ["check_kernels"]
