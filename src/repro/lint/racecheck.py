"""Dynamic race sanitizer for the sharded engine (``repro-lint --race``).

The sharded engine's soundness argument is the frontier exchange: every
variable a shard's guards can read (its block plus its ghosts) is refreshed
from the coordinator's authoritative journal before the next guard
evaluation.  A gap in that exchange does not crash -- it silently diverges,
which is the worst possible failure mode for a reproduction.

:class:`ShardRaceChecker` turns such gaps into *named findings*:

* ``RC101`` -- **stale ghost**: after an exchange, a worker's mirror of a
  ghost node differs from the coordinator's configuration (a boundary
  crossing was not routed to every shard that ghosts it);
* ``RC102`` -- **stale block mirror**: a worker's mirror of one of its *own*
  nodes diverged (an apply/load was dropped or mis-ordered);
* ``RC103`` -- **conflicting write**: within one step, a shard returned
  writes for a node it does not own, or two shards returned writes for the
  same node (the coordinator would silently let one overwrite the other).

The checker hooks the coordinator (``ShardedScheduler(...,
race_checker=...)``): after every frontier exchange it pulls each worker's
mirror (the ``mirror`` worker command) and compares variable by variable;
around every execute fan-out it audits write ownership.  Zero overhead when
not attached; with ``stride > 1`` mirrors are audited every ``stride``-th
exchange.

Relation to ``REPRO_DEBUG_GUARDS`` / ``check_guard_locality``: the guard
tracker verifies *protocol* locality (a guard reads only its closed
neighborhood); the race checker verifies *engine* locality (everything a
shard reads is as fresh as the journal says).  Both must hold for sharded
runs to be bit-identical to single-process runs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.lint.findings import Finding, severity_of


class ShardRaceChecker:
    """Variable-level cross-shard race detector (attach to a ShardedScheduler)."""

    def __init__(self, stride: int = 1, max_findings: int = 100) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1 (got {stride})")
        self.stride = stride
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        self.mirror_audits = 0
        self.execution_audits = 0
        self._exchanges = 0

    # ------------------------------------------------------------------
    # Coordinator hooks
    # ------------------------------------------------------------------
    def audit_mirrors(self, coordinator) -> None:
        """Compare every worker's mirror against the authoritative journal.

        Called by the coordinator after each frontier exchange (load or
        apply).  Any divergence at that point means the *next* guard
        evaluation would read stale state -- exactly the frontier-exchange
        gap the sharded soundness argument forbids.
        """
        self._exchanges += 1
        if (self._exchanges - 1) % self.stride:
            return
        if len(self.findings) >= self.max_findings:
            return
        self.mirror_audits += 1
        partition = coordinator.partition
        answers = coordinator._command(
            {index: ("mirror",) for index in range(partition.k)}
        )
        step = coordinator.steps_executed
        for index, states in sorted(answers.items()):
            members = set(partition.blocks[index])
            for node, state in sorted(states.items()):
                truth = dict(coordinator.configuration.peek_state(node))
                if dict(state) == truth:
                    continue
                stale = sorted(
                    name
                    for name in set(state) | set(truth)
                    if state.get(name, "<missing>") != truth.get(name, "<missing>")
                )
                rule = "RC102" if node in members else "RC101"
                kind = "own node" if node in members else "ghost"
                self._record(
                    rule,
                    coordinator,
                    f"shard {index} holds a stale mirror of {kind} {node} after the "
                    f"frontier exchange before step {step}: variables {stale} diverge "
                    f"from the coordinator's journal",
                )

    def audit_execution(
        self,
        coordinator,
        by_shard: Mapping[int, Sequence[int]],
        answers: Mapping[int, Mapping[int, tuple[str, dict[str, Any]]]],
    ) -> None:
        """Audit one step's execute fan-out for ownership/double-write races."""
        self.execution_audits += 1
        if len(self.findings) >= self.max_findings:
            return
        partition = coordinator.partition
        step = coordinator.steps_executed
        writers: dict[int, int] = {}
        for index, result in sorted(answers.items()):
            members = set(partition.blocks[index])
            for node, (action_name, writes) in sorted(result.items()):
                if node not in members:
                    self._record(
                        "RC103",
                        coordinator,
                        f"shard {index} returned writes for processor {node} "
                        f"(action {action_name!r}) in step {step}, but does not own it "
                        f"(owner: shard {partition.owner_of(node)})",
                    )
                if node in writers:
                    self._record(
                        "RC103",
                        coordinator,
                        f"shards {writers[node]} and {index} both returned writes for "
                        f"processor {node} in step {step}: variables "
                        f"{sorted(writes)} would be applied twice",
                    )
                writers[node] = index

    # ------------------------------------------------------------------
    def _record(self, rule: str, coordinator, message: str) -> None:
        if len(self.findings) >= self.max_findings:
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=f"{coordinator.protocol.name}@{coordinator.network.name}",
                line=0,
                message=message,
                severity=severity_of(rule),
                layer=coordinator.protocol.name,
                function=f"step{coordinator.steps_executed}",
            )
        )

    def __repr__(self) -> str:
        return (
            f"ShardRaceChecker(findings={len(self.findings)}, "
            f"mirror_audits={self.mirror_audits}, stride={self.stride})"
        )


def run_race_check(
    protocol: str = "dftno",
    family: str = "random_connected",
    size: int = 8,
    shards: int = 2,
    seed: int = 1,
    partition: str = "bfs",
    max_steps: int | None = None,
    mode: str = "inline",
    stride: int = 1,
) -> tuple[ShardRaceChecker, bool]:
    """Run one sharded execution with the race checker attached.

    Returns ``(checker, converged)``; the CLI's ``--race`` mode exits
    non-zero when the checker recorded findings (or the run failed to
    converge, which would itself indicate an engine bug on these small
    instances).
    """
    from repro.api.engines import build_protocol
    from repro.graphs.generators import family as build_family
    from repro.shard import ShardedScheduler

    network = build_family(family, size, seed=seed)
    checker = ShardRaceChecker(stride=stride)
    budget = max_steps if max_steps is not None else 500 * (size + network.num_edges()) + 3000
    with ShardedScheduler(
        network,
        build_protocol(protocol),
        seed=seed,
        shards=shards,
        partition=partition,
        mode=mode,
        race_checker=checker,
    ) as scheduler:
        result = scheduler.run_until_legitimate(max_steps=budget)
    return checker, result.converged


__all__ = ["ShardRaceChecker", "run_race_check"]
