"""AST-based static verification of the guarded-command locality contract.

The whole reproduction rests on one structural assumption: a guard reads only
its closed neighborhood and an action writes only its own node.  That is what
makes the incremental enabled-set (dirty-frontier re-evaluation) and the
sharded frontier exchange sound.  This pass checks the contract at review
time, before any scheduler runs:

* every ``Action(name, guard, statement, ...)`` construction (and every
  composition ``hooks()`` mapping) is located in the protocol sources;
* guards and statements -- plus every same-module helper they call with the
  view -- are walked through the :class:`~repro.runtime.processor.ProcessorView`
  API surface;
* violations are reported as :class:`~repro.lint.findings.Finding` objects
  with rule ids ``RL001``..``RL006`` (see
  :data:`~repro.lint.findings.RULES`).

The analysis is deliberately *conservative*: a guard or helper it cannot
resolve statically (a callable stored in a variable, a cross-object call like
``self._tree.children(view)``, a variable name computed at run time) is
skipped, never flagged.  False negatives are acceptable -- the dynamic
tracker (``check_guard_locality`` / ``REPRO_DEBUG_GUARDS``) and the shard
race checker backstop them -- false positives on shipped protocols are not.

Escape hatch: a line carrying ``# repro-lint: disable=RL001`` (comma-separate
several ids, or ``disable=all``) suppresses findings anchored to that line.
"""

from __future__ import annotations

import ast
import importlib.util
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding, severity_of

#: Variable-factory callables whose first argument declares a variable name
#: (see :mod:`repro.runtime.variables`).
_VARIABLE_FACTORIES = {
    "int_variable",
    "enum_variable",
    "pointer_variable",
    "map_variable",
    "VariableSpec",
}

#: ``view`` methods that read a variable: method -> index of the name argument.
_READ_METHODS = {"read": 0, "read_pre": 0, "read_neighbor": 1, "try_read_neighbor": 1}

#: Receivers/callables that make a guard impure (I/O).
_IO_CALLABLES = {"print", "open", "input"}
_IO_MODULES = {"os", "sys", "subprocess", "shutil", "socket", "pathlib"}

#: RNG surface: the stdlib module, conventional rng names, Random methods.
_RNG_RECEIVERS = {"random", "rng"}
_RNG_METHODS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
}

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


def _first_view_param(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> str | None:
    """The parameter a guard/statement receives the view through."""
    args = node.args.args
    names = [arg.arg for arg in args]
    if names and names[0] == "self":
        names = names[1:]
    return names[0] if names else None


@dataclass
class _ModuleIndex:
    """Everything the resolver needs to know about one source file."""

    path: str
    tree: ast.Module
    source_lines: list[str]
    constants: dict[str, str] = field(default_factory=dict)
    module_aliases: dict[str, str] = field(default_factory=dict)  # alias -> module
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    class_constants: dict[str, dict[str, ast.expr]] = field(default_factory=dict)
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    disabled: dict[int, set[str]] = field(default_factory=dict)


def _index_module(path: Path) -> _ModuleIndex:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    index = _ModuleIndex(path=str(path), tree=tree, source_lines=source.splitlines())
    for lineno, line in enumerate(index.source_lines, start=1):
        match = _DISABLE_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            index.disabled[lineno] = rules
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str):
                    index.constants[target.id] = node.value.value
        elif isinstance(node, ast.Import):
            for alias in node.names:
                index.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                index.from_imports[alias.asname or alias.name] = (node.module, alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            index.classes[node.name] = node
            index.class_bases[node.name] = [
                base.id for base in node.bases if isinstance(base, ast.Name)
            ]
            attrs: dict[str, ast.expr] = {}
            for item in node.body:
                if isinstance(item, ast.Assign) and len(item.targets) == 1:
                    target = item.targets[0]
                    if isinstance(target, ast.Name):
                        attrs[target.id] = item.value
            index.class_constants[node.name] = attrs
    return index


#: Cross-module constant tables, resolved lazily from the installed source
#: tree (``from repro.core.specification import VAR_NAME`` and friends).
_FOREIGN_CONSTANTS: dict[str, dict[str, str]] = {}


def _module_constants(module: str) -> dict[str, str]:
    if module in _FOREIGN_CONSTANTS:
        return _FOREIGN_CONSTANTS[module]
    table: dict[str, str] = {}
    if module.startswith("repro"):
        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError):
            spec = None
        if spec is not None and spec.origin and spec.origin.endswith(".py"):
            try:
                tree = ast.parse(Path(spec.origin).read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                tree = None
            if tree is not None:
                for node in tree.body:
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target = node.targets[0]
                        if (
                            isinstance(target, ast.Name)
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, str)
                        ):
                            table[target.id] = node.value.value
                    elif isinstance(node, ast.ClassDef):
                        # Class-level string constants, keyed "Class.ATTR" so
                        # `ForeignClass.ACTION_X` hook keys resolve too.
                        for item in node.body:
                            if isinstance(item, ast.Assign) and len(item.targets) == 1:
                                target = item.targets[0]
                                if (
                                    isinstance(target, ast.Name)
                                    and isinstance(item.value, ast.Constant)
                                    and isinstance(item.value.value, str)
                                ):
                                    table[f"{node.name}.{target.id}"] = item.value.value
    _FOREIGN_CONSTANTS[module] = table
    return table


@dataclass
class _Scope:
    """Where an expression lives: its module, class, and function nesting."""

    index: _ModuleIndex
    class_name: str | None = None
    function_stack: tuple[ast.FunctionDef, ...] = ()


class _Resolver:
    """Conservative name resolution over one module index."""

    def __init__(self, index: _ModuleIndex) -> None:
        self.index = index

    # -- strings ------------------------------------------------------
    def resolve_string(self, expr: ast.expr, scope: _Scope) -> str | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            for function in reversed(scope.function_stack):
                local = self._local_string(function, expr.id)
                if local is not None:
                    return local
            if expr.id in self.index.constants:
                return self.index.constants[expr.id]
            if expr.id in self.index.from_imports:
                module, name = self.index.from_imports[expr.id]
                return _module_constants(module).get(name)
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = expr.value.id
            if owner == "self" and scope.class_name:
                return self._class_string(scope.class_name, expr.attr, scope)
            if owner in self.index.classes:
                return self._class_string(owner, expr.attr, scope)
            if owner in self.index.module_aliases:
                return _module_constants(self.index.module_aliases[owner]).get(expr.attr)
            if owner in self.index.from_imports:
                module, name = self.index.from_imports[owner]
                table = _module_constants(module)
                # `name` may be a class (Class.ATTR key) or a submodule.
                return table.get(
                    f"{name}.{expr.attr}",
                    _module_constants(f"{module}.{name}").get(expr.attr),
                )
        return None

    def _local_string(self, function: ast.FunctionDef, name: str) -> str | None:
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    return node.value.value
        return None

    def _class_string(self, class_name: str, attr: str, scope: _Scope) -> str | None:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.index.classes:
                continue
            seen.add(current)
            expr = self.index.class_constants.get(current, {}).get(attr)
            if expr is not None:
                narrowed = _Scope(self.index, class_name=None, function_stack=())
                return self.resolve_string(expr, narrowed)
            queue.extend(self.index.class_bases.get(current, []))
        return None

    # -- callables ----------------------------------------------------
    def resolve_callable(
        self, expr: ast.expr, scope: _Scope
    ) -> tuple[ast.FunctionDef | ast.Lambda, _Scope] | None:
        if isinstance(expr, ast.Lambda):
            return expr, scope
        if isinstance(expr, ast.Name):
            for depth in range(len(scope.function_stack), 0, -1):
                enclosing = scope.function_stack[depth - 1]
                found = self._find_def(enclosing.body, expr.id)
                if found is not None:
                    inner = _Scope(
                        self.index,
                        class_name=scope.class_name,
                        function_stack=scope.function_stack[:depth] + (found,),
                    )
                    return found, inner
            if expr.id in self.index.functions:
                found = self.index.functions[expr.id]
                return found, _Scope(self.index, function_stack=(found,))
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = expr.value.id
            if owner == "self" and scope.class_name:
                return self._class_method(scope.class_name, expr.attr)
            if owner in self.index.classes:
                return self._class_method(owner, expr.attr)
        return None

    @classmethod
    def _find_def(cls, body: Sequence[ast.stmt], name: str) -> ast.FunctionDef | None:
        """Find ``def name`` in ``body``, descending into compound statements
        (``if``/``for``/``while``/``with``/``try`` branches) but never into
        other function bodies -- their defs are out of scope for the caller."""
        for node in body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for child_body in (
                getattr(node, "body", ()),
                getattr(node, "orelse", ()),
                getattr(node, "finalbody", ()),
            ):
                found = cls._find_def(child_body, name)
                if found is not None:
                    return found
            for handler in getattr(node, "handlers", ()):
                found = cls._find_def(handler.body, name)
                if found is not None:
                    return found
        return None

    def _class_method(
        self, class_name: str, attr: str
    ) -> tuple[ast.FunctionDef, _Scope] | None:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.index.classes:
                continue
            seen.add(current)
            for node in self.index.classes[current].body:
                if isinstance(node, ast.FunctionDef) and node.name == attr:
                    return node, _Scope(
                        self.index, class_name=current, function_stack=(node,)
                    )
            queue.extend(self.index.class_bases.get(current, []))
        return None


@dataclass
class ActionSummary:
    """The statically-derived read/write footprint of one protocol action.

    The machine-readable artifact the future vectorized engine and the shard
    partitioner consume (:mod:`repro.lint.summary`).
    """

    module: str
    owner: str  # enclosing class (or "<module>")
    action: str
    line: int
    guard_reads_own: set[str] = field(default_factory=set)
    guard_reads_neighbor: set[str] = field(default_factory=set)
    statement_reads_own: set[str] = field(default_factory=set)
    statement_reads_neighbor: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    guard_resolved: bool = False
    statement_resolved: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "owner": self.owner,
            "action": self.action,
            "line": self.line,
            "guard_reads_own": sorted(self.guard_reads_own),
            "guard_reads_neighbor": sorted(self.guard_reads_neighbor),
            "statement_reads_own": sorted(self.statement_reads_own),
            "statement_reads_neighbor": sorted(self.statement_reads_neighbor),
            "writes": sorted(self.writes),
            "guard_resolved": self.guard_resolved,
            "statement_resolved": self.statement_resolved,
        }


class _FunctionChecker(ast.NodeVisitor):
    """Walk one guard/statement (and its helpers) applying the rules."""

    def __init__(
        self,
        analyzer: "_Analyzer",
        scope: _Scope,
        kind: str,  # "guard" | "statement"
        view_param: str | None,
        summary: ActionSummary,
        visited: set[tuple[str, int, str]] | None = None,
    ) -> None:
        self.analyzer = analyzer
        self.scope = scope
        self.kind = kind
        self.view_param = view_param
        self.summary = summary
        # Per-action: a helper shared by two actions must contribute its
        # footprint to both summaries (finding dedup is separate).
        self.visited = visited if visited is not None else set()
        self.resolver = analyzer.resolvers[scope.index.path]

    def check(self, body: Iterable[ast.stmt] | ast.expr) -> None:
        if isinstance(body, ast.expr):
            self.visit(body)
            return
        for stmt in body:
            self.visit(stmt)

    # Nested defs inside a guard/statement are only relevant if called; the
    # call-site recursion handles them, so do not descend here by default.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:  # noqa: N802
        return

    def visit_Attribute(self, node: ast.Attribute) -> None:  # noqa: N802
        if (
            self.view_param is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == self.view_param
            and node.attr.startswith("_")
        ):
            if self.kind == "guard":
                self.analyzer.report(
                    "RL004",
                    node,
                    self.scope,
                    f"guard reaches into the view's private state "
                    f"(`{self.view_param}.{node.attr}`), bypassing the neighbor-checked "
                    f"read API",
                    self.summary,
                )
            else:
                self.analyzer.report(
                    "RL005",
                    node,
                    self.scope,
                    f"statement reaches into the view's private state "
                    f"(`{self.view_param}.{node.attr}`): the only way to write a node "
                    f"other than its own",
                    self.summary,
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        func = node.func
        handled_attr = False
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self.view_param is not None
            and func.value.id == self.view_param
        ):
            handled_attr = self._check_view_call(node, func)
        if self.kind == "guard":
            self._check_purity(node, func)
        if not handled_attr:
            self._maybe_recurse(node, func)
        self.generic_visit(node)

    def _check_view_call(self, node: ast.Call, func: ast.Attribute) -> bool:
        method = func.attr
        if method == "write":
            if self.kind == "guard":
                self.analyzer.report(
                    "RL001",
                    node,
                    self.scope,
                    f"guard calls `{self.view_param}.write(...)`: guards must be pure "
                    f"predicates over the configuration",
                    self.summary,
                )
            name = self._variable_argument(node, 0)
            if name is not None:
                self.summary.writes.add(name)
                self._check_declared(node, name, "written")
            return True
        if method in _READ_METHODS:
            name = self._variable_argument(node, _READ_METHODS[method])
            if name is not None:
                neighbor = method in ("read_neighbor", "try_read_neighbor")
                if self.kind == "guard":
                    bucket = (
                        self.summary.guard_reads_neighbor
                        if neighbor
                        else self.summary.guard_reads_own
                    )
                else:
                    bucket = (
                        self.summary.statement_reads_neighbor
                        if neighbor
                        else self.summary.statement_reads_own
                    )
                bucket.add(name)
                self._check_declared(node, name, "read")
            return True
        return False

    def _variable_argument(self, node: ast.Call, position: int) -> str | None:
        if len(node.args) > position:
            return self.resolver.resolve_string(node.args[position], self.scope)
        for keyword in node.keywords:
            if keyword.arg == "variable":
                return self.resolver.resolve_string(keyword.value, self.scope)
        return None

    def _check_declared(self, node: ast.Call, name: str, verb: str) -> None:
        if name not in self.analyzer.variable_universe:
            self.analyzer.report(
                "RL006",
                node,
                self.scope,
                f"variable {name!r} is {verb} but never declared in any analyzed "
                f"layer's variable schema",
                self.summary,
            )

    def _check_purity(self, node: ast.Call, func: ast.expr) -> None:
        if isinstance(func, ast.Name) and func.id in _IO_CALLABLES:
            self.analyzer.report(
                "RL002",
                node,
                self.scope,
                f"guard calls `{func.id}(...)`: guards must not perform I/O",
                self.summary,
            )
            return
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in _IO_MODULES:
                self.analyzer.report(
                    "RL002",
                    node,
                    self.scope,
                    f"guard calls `{owner}.{func.attr}(...)`: guards must not perform I/O",
                    self.summary,
                )
                return
            if owner in _RNG_RECEIVERS or (
                func.attr in _RNG_METHODS and owner != self.view_param
            ):
                self.analyzer.report(
                    "RL003",
                    node,
                    self.scope,
                    f"guard calls `{owner}.{func.attr}(...)`: guards must be "
                    f"deterministic in the configuration",
                    self.summary,
                )

    def _maybe_recurse(self, node: ast.Call, func: ast.expr) -> None:
        """Propagate the rule context into same-module helpers.

        Only calls that *pass the view along* matter for locality; purity
        still matters regardless, so any resolvable helper is followed (with
        a visited-set to terminate cycles).
        """
        resolved = self.resolver.resolve_callable(func, self.scope)
        if resolved is None:
            return
        target, target_scope = resolved
        key = (self.scope.index.path, id(target), self.kind)
        if key in self.visited:
            return
        self.visited.add(key)
        view_param: str | None = None
        if isinstance(target, (ast.FunctionDef, ast.Lambda)):
            callee_view = _first_view_param(target)
            if callee_view is not None and self._passes_view(node):
                view_param = callee_view
        checker = _FunctionChecker(
            self.analyzer, target_scope, self.kind, view_param, self.summary, self.visited
        )
        checker.check(target.body)

    def _passes_view(self, node: ast.Call) -> bool:
        if self.view_param is None:
            return False
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id == self.view_param:
                return True
        return any(
            isinstance(kw.value, ast.Name) and kw.value.id == self.view_param
            for kw in node.keywords
        )


class _Analyzer:
    """One lint run over a set of source files."""

    def __init__(self, paths: Sequence[Path]) -> None:
        self.indexes: dict[str, _ModuleIndex] = {}
        self.resolvers: dict[str, _Resolver] = {}
        for path in paths:
            index = _index_module(path)
            self.indexes[index.path] = index
            self.resolvers[index.path] = _Resolver(index)
        self.variable_universe: set[str] = set()
        self.findings: list[Finding] = []
        self.summaries: list[ActionSummary] = []
        self._seen_findings: set[tuple[str, str, int, int]] = set()

    # -- reporting ----------------------------------------------------
    def report(
        self,
        rule: str,
        node: ast.AST,
        scope: _Scope,
        message: str,
        summary: ActionSummary,
    ) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (scope.index.path, rule, line, col)
        if key in self._seen_findings:
            return
        disabled = scope.index.disabled.get(line, ())
        if rule in disabled or "all" in disabled:
            return
        self._seen_findings.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=scope.index.path,
                line=line,
                message=message,
                severity=severity_of(rule),
                layer=summary.owner,
                function=summary.action,
            )
        )

    # -- passes -------------------------------------------------------
    def collect_variables(self) -> None:
        """Union of every ``variables()`` declaration across the file set."""
        for index in self.indexes.values():
            resolver = self.resolvers[index.path]
            for scope, function in _walk_functions(index):
                if function.name != "variables":
                    continue
                inner = _Scope(
                    index,
                    class_name=scope.class_name,
                    function_stack=scope.function_stack + (function,),
                )
                for node in ast.walk(function):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = node.func
                    callee_name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr
                        if isinstance(callee, ast.Attribute)
                        else None
                    )
                    if callee_name not in _VARIABLE_FACTORIES:
                        continue
                    name: str | None = None
                    if node.args:
                        name = resolver.resolve_string(node.args[0], inner)
                    if name is None:
                        for keyword in node.keywords:
                            if keyword.arg == "name":
                                name = resolver.resolve_string(keyword.value, inner)
                    if name is not None:
                        self.variable_universe.add(name)

    def check_actions(self) -> None:
        for index in self.indexes.values():
            resolver = self.resolvers[index.path]
            for scope, function in _walk_functions(index):
                inner = _Scope(
                    index,
                    class_name=scope.class_name,
                    function_stack=scope.function_stack + (function,),
                )
                for node in ast.walk(function):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = node.func
                    if isinstance(callee, ast.Name) and callee.id == "Action":
                        self._check_action_call(node, inner, resolver)
                    elif isinstance(callee, ast.Attribute) and callee.attr == "Action":
                        self._check_action_call(node, inner, resolver)
                if function.name == "hooks":
                    self._check_hooks(function, inner, resolver)

    def _check_action_call(
        self, node: ast.Call, scope: _Scope, resolver: _Resolver
    ) -> None:
        guard_expr = node.args[1] if len(node.args) > 1 else None
        statement_expr = node.args[2] if len(node.args) > 2 else None
        name_expr = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "guard":
                guard_expr = keyword.value
            elif keyword.arg == "statement":
                statement_expr = keyword.value
            elif keyword.arg == "name":
                name_expr = keyword.value
        action_name = (
            resolver.resolve_string(name_expr, scope) if name_expr is not None else None
        )
        summary = ActionSummary(
            module=scope.index.path,
            owner=scope.class_name or "<module>",
            action=action_name or f"<anonymous:{node.lineno}>",
            line=node.lineno,
        )
        if guard_expr is not None:
            summary.guard_resolved = self._check_callable(guard_expr, scope, "guard", summary)
        if statement_expr is not None:
            summary.statement_resolved = self._check_callable(
                statement_expr, scope, "statement", summary
            )
        self.summaries.append(summary)

    def _check_hooks(
        self, function: ast.FunctionDef, scope: _Scope, resolver: _Resolver
    ) -> None:
        """Composition hook mappings: every dict value is a statement."""
        for node in ast.walk(function):
            if not isinstance(node, ast.Dict):
                continue
            for key_expr, value_expr in zip(node.keys, node.values):
                hook_name = (
                    resolver.resolve_string(key_expr, scope)
                    if key_expr is not None
                    else None
                )
                summary = ActionSummary(
                    module=scope.index.path,
                    owner=scope.class_name or "<module>",
                    action=f"hook:{hook_name or value_expr.lineno}",
                    line=value_expr.lineno,
                )
                summary.guard_resolved = True  # hooks have no guard of their own
                summary.statement_resolved = self._check_callable(
                    value_expr, scope, "statement", summary
                )
                if summary.statement_resolved:
                    self.summaries.append(summary)

    def _check_callable(
        self, expr: ast.expr, scope: _Scope, kind: str, summary: ActionSummary
    ) -> bool:
        resolver = self.resolvers[scope.index.path]
        resolved = resolver.resolve_callable(expr, scope)
        if resolved is None:
            return False
        target, target_scope = resolved
        view_param = _first_view_param(target)
        checker = _FunctionChecker(self, target_scope, kind, view_param, summary)
        checker.check(target.body)
        return True

    def run(self) -> None:
        self.collect_variables()
        self.check_actions()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))


def _walk_functions(index: _ModuleIndex):
    """Yield ``(scope, function)`` for every def in the module (any nesting)."""

    def descend(body, class_name, stack):
        for node in body:
            if isinstance(node, ast.FunctionDef):
                yield _Scope(index, class_name=class_name, function_stack=stack), node
                yield from descend(node.body, class_name, stack + (node,))
            elif isinstance(node, ast.ClassDef):
                yield from descend(node.body, node.name, ())

    yield from descend(index.tree.body, None, ())


def iter_source_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise ValueError(f"not a Python source file or directory: {path}")
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def analyze_paths(paths: Iterable[str | Path]) -> _Analyzer:
    """Run the static pass; returns the analyzer (findings + action summaries)."""
    analyzer = _Analyzer(iter_source_files(paths))
    analyzer.run()
    return analyzer


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """The findings of a static pass over ``paths`` (files or directories)."""
    return analyze_paths(paths).findings


#: Protocol name -> the source modules that define its layers.  Used by the
#: ``repro-campaign run --lint`` pre-flight to lint exactly the substrates a
#: grid references.  Token circulation rides along with every stack that can
#: reference its variables cross-module (the DFS overlay does).
def modules_for_protocols(protocols: Iterable[str]) -> list[Path]:
    import repro.core.dftno
    import repro.core.specification
    import repro.core.stno
    import repro.substrates.spanning_tree
    import repro.substrates.token_circulation

    by_protocol = {
        "dftno": (repro.core.dftno, repro.substrates.token_circulation),
        "stno-bfs": (
            repro.core.stno,
            repro.substrates.spanning_tree,
            repro.substrates.token_circulation,
        ),
        "stno-dfs": (
            repro.core.stno,
            repro.substrates.spanning_tree,
            repro.substrates.token_circulation,
        ),
    }
    modules: list[Path] = []
    for protocol in protocols:
        if protocol not in by_protocol:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {sorted(by_protocol)}"
            )
        for module in by_protocol[protocol]:
            path = Path(module.__file__)
            if path not in modules:
                modules.append(path)
    return modules


__all__ = [
    "ActionSummary",
    "analyze_paths",
    "iter_source_files",
    "lint_paths",
    "modules_for_protocols",
]
