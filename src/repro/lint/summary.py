"""Per-layer static read/write sets, serialized for downstream consumers.

The static pass already derives, for every protocol action it can resolve,
which variables its guard reads (own vs. neighbor) and which its statement
writes.  This module turns those :class:`~repro.lint.static.ActionSummary`
records into one JSON-serializable artifact:

* the future vectorized engine needs the guard read-sets to build its
  dependency masks;
* the shard partitioner can weigh boundary edges by how many neighbor-read
  variables actually cross them;
* reviewers get a one-page answer to "what does this layer touch?".

Unresolvable guards/statements are reported with ``*_resolved: false`` rather
than silently omitted, so a consumer can tell "no reads" from "not analyzable".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.lint.static import analyze_paths


def build_summary(paths: Iterable[str | Path]) -> dict[str, object]:
    """``{module: {"<Owner>.<action>": footprint, ...}, ...}`` plus the universe."""
    analyzer = analyze_paths(paths)
    modules: dict[str, dict[str, object]] = {}
    for summary in analyzer.summaries:
        key = f"{summary.owner}.{summary.action}"
        modules.setdefault(summary.module, {})[key] = summary.as_dict()
    return {
        "variables": sorted(analyzer.variable_universe),
        "modules": modules,
    }


def write_summary(paths: Iterable[str | Path], out: str | Path) -> dict[str, object]:
    """Build the artifact and write it to ``out`` as JSON; returns the dict."""
    payload = build_summary(paths)
    Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return payload


__all__ = ["build_summary", "write_summary"]
