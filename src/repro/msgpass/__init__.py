"""A synchronous message-passing simulator.

The thesis motivates network orientation by its effect on the *message
complexity* of distributed computations (Section 1.3-1.4, citing Santoro and
Tel/Flocchini et al.): once processors share a sense of direction, traversal,
broadcast and election algorithms need far fewer messages.  Quantifying that
claim (experiment EXP-A1) requires a message-passing model rather than the
shared-variable model of the protocols themselves, so this small package
provides one:

* :class:`~repro.msgpass.simulator.SynchronousSimulator` runs node programs in
  lock-step rounds over the links of a :class:`~repro.graphs.network.RootedNetwork`,
  counting every message sent;
* :class:`~repro.msgpass.node.NodeProgram` is the per-processor behaviour
  interface (``on_start`` / ``on_message``), with a
  :class:`~repro.msgpass.node.Context` for sending messages and halting.

The simulator is deliberately simple (synchronous, reliable FIFO links); the
quantities compared in EXP-A1 are message *counts*, which the synchrony does
not distort.
"""

from repro.msgpass.node import Context, Message, NodeProgram
from repro.msgpass.simulator import SimulationResult, SynchronousSimulator

__all__ = [
    "Context",
    "Message",
    "NodeProgram",
    "SimulationResult",
    "SynchronousSimulator",
]
