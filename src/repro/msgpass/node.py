"""Per-processor programs for the synchronous message-passing simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError
from repro.graphs.network import RootedNetwork


@dataclass(frozen=True)
class Message:
    """A message in flight.

    Attributes
    ----------
    sender / receiver:
        Processor identifiers of the endpoints.
    payload:
        Arbitrary (immutable, ideally) content.
    round_sent:
        The round in which the message was sent; it is delivered at the start
        of the following round.
    """

    sender: int
    receiver: int
    payload: Any
    round_sent: int


class Context:
    """What a node program may do during one activation.

    The context exposes the processor's identity and local topology (its
    degree and ports), lets it send messages over its incident links, read and
    update its private state dictionary, and halt.  Knowledge beyond the local
    neighborhood (names of remote processors, the size of the network, an
    orientation) must be given to the program explicitly -- that is precisely
    the difference the sense-of-direction experiments measure.
    """

    def __init__(self, node: int, network: RootedNetwork, state: dict[str, Any], round_index: int) -> None:
        self._node = node
        self._network = network
        self._state = state
        self._round = round_index
        self._outbox: list[tuple[int, Any]] = []
        self._halted = False

    # -- identity and topology -----------------------------------------
    @property
    def node(self) -> int:
        """This processor's identifier (used only by the simulator harness)."""
        return self._node

    @property
    def is_root(self) -> bool:
        """Whether this processor is the distinguished initiator/root."""
        return self._network.is_root(self._node)

    @property
    def round(self) -> int:
        """The current round number (0-based)."""
        return self._round

    @property
    def neighbors(self) -> tuple[int, ...]:
        """Identifiers of the neighbors, in port order."""
        return self._network.neighbors(self._node)

    @property
    def degree(self) -> int:
        """Number of incident links."""
        return self._network.degree(self._node)

    # -- state -----------------------------------------------------------
    @property
    def state(self) -> dict[str, Any]:
        """The processor's private, persistent state dictionary."""
        return self._state

    # -- communication ----------------------------------------------------
    def send(self, neighbor: int, payload: Any) -> None:
        """Send ``payload`` to ``neighbor`` (delivered next round)."""
        if neighbor not in self._network.neighbor_set(self._node):
            raise SimulationError(f"processor {self._node} cannot send to non-neighbor {neighbor}")
        self._outbox.append((neighbor, payload))

    def send_all(self, payload: Any, exclude: int | None = None) -> None:
        """Send ``payload`` to every neighbor, optionally excluding one."""
        for neighbor in self.neighbors:
            if neighbor != exclude:
                self.send(neighbor, payload)

    def halt(self) -> None:
        """Mark this processor as terminated (it will not be activated again)."""
        self._halted = True

    # -- used by the simulator ---------------------------------------------
    @property
    def outbox(self) -> list[tuple[int, Any]]:
        """Messages queued during this activation."""
        return list(self._outbox)

    @property
    def halted(self) -> bool:
        """Whether :meth:`halt` was called during this activation."""
        return self._halted


class NodeProgram:
    """Behaviour of one processor in the synchronous model.

    Subclasses override :meth:`on_start` (called once, in round 0) and
    :meth:`on_message` (called once per delivered message).  The same program
    instance is shared by all processors; per-processor data lives in
    ``context.state``.
    """

    def on_start(self, context: Context) -> None:
        """Called once at the beginning of the execution."""

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        """Called for every message delivered to this processor."""

    def on_round(self, context: Context) -> None:
        """Called once per round after all of the round's messages were handled."""


__all__ = ["Message", "Context", "NodeProgram"]
