"""Lock-step execution of node programs with message accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import SimulationError
from repro.graphs.network import RootedNetwork
from repro.msgpass.node import Context, Message, NodeProgram
from repro.runtime.observers import Observer, dispatch_safely


@dataclass
class SimulationResult:
    """Outcome of a synchronous message-passing execution.

    Attributes
    ----------
    rounds:
        Number of rounds executed (a round delivers all messages sent in the
        previous one).
    messages_sent:
        Total number of messages, the quantity EXP-A1 compares.
    messages_per_round:
        Message count per round, for the time/traffic profile.
    states:
        Final private state dictionary of every processor.
    halted:
        Processors that called ``halt``.
    """

    rounds: int
    messages_sent: int
    messages_per_round: list[int] = field(default_factory=list)
    states: dict[int, dict[str, Any]] = field(default_factory=dict)
    halted: set[int] = field(default_factory=set)

    def state_of(self, node: int) -> dict[str, Any]:
        """Final private state of ``node``."""
        return self.states.get(node, {})


class SynchronousSimulator:
    """Runs a :class:`~repro.msgpass.node.NodeProgram` on a network in rounds.

    Round 0 calls ``on_start`` at every processor.  In each later round, every
    message sent in the previous round is delivered (``on_message``), then
    ``on_round`` fires once per still-active processor.  The execution stops
    when no message is in flight and every processor has halted or is idle, or
    when ``max_rounds`` is reached.

    ``observers`` receive ``on_round(simulator, round_index)`` after each
    completed round and ``on_converged(simulator, result)`` at quiescence --
    the message-passing half of the unified observer API.
    """

    def __init__(
        self,
        network: RootedNetwork,
        program: NodeProgram,
        max_rounds: int = 10_000,
        observers: Sequence[Observer] = (),
    ) -> None:
        self.network = network
        self.program = program
        self.max_rounds = max_rounds
        # A list, not a tuple: a raising observer is disabled in place.
        self.observers = list(observers)

    def run(self) -> SimulationResult:
        """Execute the program to quiescence and return the statistics."""
        states: dict[int, dict[str, Any]] = {node: {} for node in self.network.nodes()}
        halted: set[int] = set()
        in_flight: list[Message] = []
        messages_per_round: list[int] = []
        total_messages = 0

        # Round 0: on_start everywhere.
        round_index = 0
        sent_this_round = 0
        for node in self.network.nodes():
            context = Context(node, self.network, states[node], round_index)
            self.program.on_start(context)
            sent_this_round += self._collect(context, node, round_index, in_flight, halted)
        messages_per_round.append(sent_this_round)
        total_messages += sent_this_round
        # Observers receive the number of *completed* rounds, matching the
        # Scheduler's on_round semantics (round 0 completing -> 1).
        dispatch_safely(self.observers, "on_round", self, round_index + 1)

        while in_flight:
            round_index += 1
            if round_index > self.max_rounds:
                raise SimulationError(
                    f"synchronous simulation exceeded {self.max_rounds} rounds without quiescing"
                )
            deliveries = in_flight
            in_flight = []
            sent_this_round = 0

            # Deliver all of last round's messages.
            by_receiver: dict[int, list[Message]] = {}
            for message in deliveries:
                by_receiver.setdefault(message.receiver, []).append(message)

            active_nodes = set(by_receiver)
            for node in sorted(active_nodes):
                if node in halted:
                    continue
                context = Context(node, self.network, states[node], round_index)
                for message in by_receiver[node]:
                    self.program.on_message(context, message.sender, message.payload)
                self.program.on_round(context)
                sent_this_round += self._collect(context, node, round_index, in_flight, halted)

            messages_per_round.append(sent_this_round)
            total_messages += sent_this_round
            dispatch_safely(self.observers, "on_round", self, round_index + 1)

        result = SimulationResult(
            rounds=round_index + 1,
            messages_sent=total_messages,
            messages_per_round=messages_per_round,
            states=states,
            halted=halted,
        )
        dispatch_safely(self.observers, "on_converged", self, result)
        return result

    @staticmethod
    def _collect(
        context: Context,
        node: int,
        round_index: int,
        in_flight: list[Message],
        halted: set[int],
    ) -> int:
        for neighbor, payload in context.outbox:
            in_flight.append(Message(sender=node, receiver=neighbor, payload=payload, round_sent=round_index))
        if context.halted:
            halted.add(node)
        return len(context.outbox)


__all__ = ["SynchronousSimulator", "SimulationResult"]
