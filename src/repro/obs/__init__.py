"""Run-level observability: instrumentation registry, span traces, profiling.

Three opt-in layers, cheapest first:

* :class:`Instrumentation` -- counters, gauges and phase timers the engine
  cores populate; its summary lands in ``RunResult.perf`` and campaign rows.
  The default is the shared :data:`NULL_INSTRUMENTATION` no-op, so nothing is
  paid until a caller passes a live registry.
* :class:`SpanTracer` -- structured run → round → step spans emitted as
  JSONL (attach via ``Instrumentation(tracer=...)`` or ``REPRO_TRACE=...``).
* :func:`maybe_profile` -- cProfile dumps per run/task via ``REPRO_PROFILE``.

On top of those ride two protocol-health observers (opt-in, observer-stream
only -- zero hot-loop cost when absent):

* :class:`ConvergenceTelemetryObserver` -- compact convergence time-series
  (enabled-set drain, dirty frontier, guard heat map, writes per node),
  persisted as the ``telemetry`` blob in ``RunResult`` / campaign rows.
* :class:`HealthMonitor` -- stall / round-budget watchdog emitting
  structured anomalies into the span stream and the ``health`` blob.
"""

from repro.obs.health import (
    HEALTH_SCHEMA,
    HealthMonitor,
    configuration_fingerprint,
    health_summary,
)
from repro.obs.instrument import (
    Instrumentation,
    NullInstrumentation,
    NULL_INSTRUMENTATION,
    PHASE_ACTION_EXEC,
    PHASE_DAEMON_SELECT,
    PHASE_FRONTIER_EXCHANGE,
    PHASE_GUARD_EVAL,
    PHASE_OBSERVER_DISPATCH,
    SUMMARY_SCHEMA,
    merge_summaries,
    phase_seconds,
    summary_counter,
)
from repro.obs.profile import PROFILE_ENV, maybe_profile, profile_dir
from repro.obs.recorder import (
    DEFAULT_LOG_DIR,
    FlightRecorder,
    SCHEMA_VERSION as RECORDER_SCHEMA_VERSION,
)
from repro.obs.spans import (
    JsonlSpanSink,
    ListSpanSink,
    Span,
    SpanSink,
    SpanTracer,
    TRACE_ENV,
    tracer_from_env,
)
from repro.obs.telemetry import (
    ConvergenceTelemetryObserver,
    TELEMETRY_SCHEMA,
    enabled_trajectory,
    guard_heat_table,
)

__all__ = [
    "ConvergenceTelemetryObserver",
    "DEFAULT_LOG_DIR",
    "FlightRecorder",
    "HEALTH_SCHEMA",
    "HealthMonitor",
    "RECORDER_SCHEMA_VERSION",
    "Instrumentation",
    "JsonlSpanSink",
    "ListSpanSink",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "PHASE_ACTION_EXEC",
    "PHASE_DAEMON_SELECT",
    "PHASE_FRONTIER_EXCHANGE",
    "PHASE_GUARD_EVAL",
    "PHASE_OBSERVER_DISPATCH",
    "PROFILE_ENV",
    "Span",
    "SpanSink",
    "SpanTracer",
    "SUMMARY_SCHEMA",
    "TELEMETRY_SCHEMA",
    "TRACE_ENV",
    "configuration_fingerprint",
    "enabled_trajectory",
    "guard_heat_table",
    "health_summary",
    "maybe_profile",
    "merge_summaries",
    "phase_seconds",
    "profile_dir",
    "summary_counter",
    "tracer_from_env",
]
