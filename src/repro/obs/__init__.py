"""Run-level observability: instrumentation registry, span traces, profiling.

Three opt-in layers, cheapest first:

* :class:`Instrumentation` -- counters, gauges and phase timers the engine
  cores populate; its summary lands in ``RunResult.perf`` and campaign rows.
  The default is the shared :data:`NULL_INSTRUMENTATION` no-op, so nothing is
  paid until a caller passes a live registry.
* :class:`SpanTracer` -- structured run → round → step spans emitted as
  JSONL (attach via ``Instrumentation(tracer=...)`` or ``REPRO_TRACE=...``).
* :func:`maybe_profile` -- cProfile dumps per run/task via ``REPRO_PROFILE``.
"""

from repro.obs.instrument import (
    Instrumentation,
    NullInstrumentation,
    NULL_INSTRUMENTATION,
    PHASE_ACTION_EXEC,
    PHASE_DAEMON_SELECT,
    PHASE_FRONTIER_EXCHANGE,
    PHASE_GUARD_EVAL,
    PHASE_OBSERVER_DISPATCH,
    SUMMARY_SCHEMA,
    merge_summaries,
    phase_seconds,
    summary_counter,
)
from repro.obs.profile import PROFILE_ENV, maybe_profile, profile_dir
from repro.obs.spans import (
    JsonlSpanSink,
    ListSpanSink,
    Span,
    SpanSink,
    SpanTracer,
    TRACE_ENV,
    tracer_from_env,
)

__all__ = [
    "Instrumentation",
    "JsonlSpanSink",
    "ListSpanSink",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "PHASE_ACTION_EXEC",
    "PHASE_DAEMON_SELECT",
    "PHASE_FRONTIER_EXCHANGE",
    "PHASE_GUARD_EVAL",
    "PHASE_OBSERVER_DISPATCH",
    "PROFILE_ENV",
    "Span",
    "SpanSink",
    "SpanTracer",
    "SUMMARY_SCHEMA",
    "TRACE_ENV",
    "maybe_profile",
    "merge_summaries",
    "phase_seconds",
    "profile_dir",
    "summary_counter",
    "tracer_from_env",
]
