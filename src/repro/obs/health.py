"""Stall / divergence watchdog: structured anomaly events for unhealthy runs.

A self-stabilizing run is supposed to *drain*: the enabled set shrinks, the
configuration stops cycling, legitimacy arrives within the theorems' round
bounds.  :class:`HealthMonitor` rides the observer stream and raises a
structured **anomaly** when a run stops looking like that:

* ``stall`` -- the enabled set is nonempty but the configuration keeps
  revisiting the same global states (a livelock / limit cycle).  Detected by
  fingerprinting the configuration every ``check_every`` steps and counting
  repeats inside a sliding window; before emitting, the monitor *lazily*
  re-checks the protocol's legitimacy predicate, because several of the
  paper's protocols (token circulation, Dijkstra's ring, PIF waves) cycle
  through configurations forever *by design* once legitimate -- only an
  **illegitimate** cycle is an anomaly.
* ``round_budget`` -- the completed-round count exceeded
  ``budget_multiple x round_budget``.  The budget defaults to a generous
  multiple of ``n + m`` (the protocols' bounds are O(n) / O(h) rounds, so a
  healthy run never gets near it); it is the "this should have converged by
  now" alarm the future ``repro-campaign hunt`` mode searches for.

Anomalies are emitted three ways at once, so every consumer sees them:

* appended to :attr:`HealthMonitor.anomalies` (and the :meth:`snapshot`
  blob that lands in ``RunResult.health`` / campaign rows under ``health``);
* counted on the run's instrumentation registry (``anomalies`` counter)
  when one is attached;
* emitted as a zero-duration ``anomaly`` span through the span/trace layer
  when a tracer rides the instrumentation (``REPRO_TRACE``), parented on the
  current run span -- so a trace file carries its anomalies inline.

False positives are a contract, not a hope: the watchdog suite runs every
substrate x daemon in the equivalence matrix -- converged runs, frozen-node
scenarios, legitimately slow adversarial-daemon runs -- and asserts zero
anomalies with the defaults below.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.observers import Observer

#: The health blob schema version.
HEALTH_SCHEMA = 1

#: Fingerprint the configuration every this many steps by default.
DEFAULT_CHECK_EVERY = 16

#: Sliding window length, in *checks*, over which repeats are counted.
DEFAULT_CYCLE_WINDOW = 64

#: A fingerprint must repeat this many times inside the window to count as a
#: cycle (the first sighting is not a repeat).
DEFAULT_CYCLE_REPEATS = 3

#: Default round budget: ``factor * (n + m) + base`` completed rounds.  The
#: protocols' bounds are O(n)/O(h) *rounds*, so this is an order of magnitude
#: of slack -- a run that exceeds it is not "slow", it is not converging.
DEFAULT_BUDGET_FACTOR = 32
DEFAULT_BUDGET_BASE = 256

#: Stop recording after this many anomalies (the run is already condemned).
DEFAULT_MAX_ANOMALIES = 64


def configuration_fingerprint(configuration: Any) -> int:
    """A within-run fingerprint of a configuration's full global state.

    Values are hashed when hashable and ``repr``-ed otherwise; the
    fingerprint is only ever compared against fingerprints from the same
    process, so Python's per-process hash randomization is harmless.
    """
    items: list[tuple[int, tuple[tuple[str, Any], ...]]] = []
    for node in configuration.nodes():
        state = configuration.peek_state(node)
        items.append((node, tuple(sorted(state.items()))))
    try:
        return hash(tuple(items))
    except TypeError:  # an unhashable variable value somewhere in the state
        return hash(repr(items))


class HealthMonitor(Observer):
    """Watchdog observer detecting stalls and blown round budgets.

    Parameters
    ----------
    round_budget:
        Completed-round budget; ``None`` (default) derives
        ``DEFAULT_BUDGET_FACTOR * (n + m) + DEFAULT_BUDGET_BASE`` from the
        source's network on the first step.
    budget_multiple:
        The budget anomaly fires when ``rounds > budget_multiple *
        round_budget`` (a knob for hunt modes that want an early alarm).
    check_every:
        Fingerprint the configuration every this many steps.
    cycle_window / cycle_repeats:
        A ``stall`` anomaly needs ``cycle_repeats`` repeats of one
        fingerprint within the last ``cycle_window`` checks (plus a nonempty
        enabled set and a failing legitimacy predicate at emission time).
    max_anomalies:
        Hard cap on recorded anomalies per run.
    """

    def __init__(
        self,
        round_budget: int | None = None,
        budget_multiple: float = 1.0,
        check_every: int = DEFAULT_CHECK_EVERY,
        cycle_window: int = DEFAULT_CYCLE_WINDOW,
        cycle_repeats: int = DEFAULT_CYCLE_REPEATS,
        max_anomalies: int = DEFAULT_MAX_ANOMALIES,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if cycle_window < 2:
            raise ValueError("cycle_window must be >= 2")
        if cycle_repeats < 1:
            raise ValueError("cycle_repeats must be >= 1")
        if budget_multiple <= 0:
            raise ValueError("budget_multiple must be > 0")
        self.round_budget = round_budget
        self.budget_multiple = budget_multiple
        self.check_every = check_every
        self.cycle_window = cycle_window
        self.cycle_repeats = cycle_repeats
        self.max_anomalies = max_anomalies
        #: Structured anomaly records, oldest first.
        self.anomalies: list[dict[str, Any]] = []
        self.steps = 0
        self.rounds = 0
        self.checks = 0
        self._window: list[int] = []  # fingerprints, oldest first
        self._counts: dict[int, int] = {}  # fingerprint -> count in window
        self._budget_fired = False
        self._derived_budget: int | None = round_budget

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def on_step(self, source: Any, record: Any) -> None:
        self.steps = record.step + 1
        if self._derived_budget is None:
            network = getattr(source, "network", None)
            if network is not None:
                self._derived_budget = (
                    DEFAULT_BUDGET_FACTOR * (network.n + network.num_edges())
                    + DEFAULT_BUDGET_BASE
                )
        self._check_budget(source)
        if record.step % self.check_every == 0:
            self._check_cycle(source)

    def on_round(self, source: Any, round_index: int) -> None:
        self.rounds = round_index

    def on_event(self, source: Any, event: Any) -> None:
        # A scenario event just mutated the configuration (faults, crashes,
        # topology changes): earlier fingerprints no longer describe the same
        # system, so the cycle window restarts.
        self._reset_window()

    def on_converged(self, source: Any, result: Any) -> None:
        # Convergence ends the hunt; whatever the window holds is history.
        self._reset_window()

    # ------------------------------------------------------------------
    # Detectors
    # ------------------------------------------------------------------
    def _check_budget(self, source: Any) -> None:
        if self._budget_fired or self._derived_budget is None:
            return
        limit = self.budget_multiple * self._derived_budget
        if self.rounds > limit:
            self._budget_fired = True
            self._emit(
                source,
                kind="round_budget",
                detail=(
                    f"completed {self.rounds} rounds, budget "
                    f"{self._derived_budget} (x{self.budget_multiple:g})"
                ),
            )

    def _check_cycle(self, source: Any) -> None:
        configuration = getattr(source, "configuration", None)
        if configuration is None:
            return
        enabled_nodes = getattr(source, "enabled_nodes", None)
        if callable(enabled_nodes) and not enabled_nodes():
            # A terminated (silent) run is not stalling, whatever it looks
            # like; drop the window so stale fingerprints cannot fire later.
            self._reset_window()
            return
        self.checks += 1
        fingerprint = configuration_fingerprint(configuration)
        count = self._counts.get(fingerprint, 0) + 1
        self._counts[fingerprint] = count
        self._window.append(fingerprint)
        if len(self._window) > self.cycle_window:
            oldest = self._window.pop(0)
            remaining = self._counts.get(oldest, 0) - 1
            if remaining <= 0:
                self._counts.pop(oldest, None)
            else:
                self._counts[oldest] = remaining
        if count + 1 <= self.cycle_repeats:  # count includes this sighting
            return
        # The configuration keeps coming back.  Cycling is legal *after*
        # legitimacy (token rings circulate forever), so only an illegitimate
        # cycle is an anomaly -- checked lazily, exactly once per suspicion.
        if self._legitimate(source) is not False:
            self._reset_window()
            return
        self._emit(
            source,
            kind="stall",
            detail=(
                f"configuration revisited {count} times within the last "
                f"{len(self._window)} checks with a nonempty enabled set"
            ),
        )
        self._reset_window()

    @staticmethod
    def _legitimate(source: Any) -> bool | None:
        protocol = getattr(source, "protocol", None)
        network = getattr(source, "network", None)
        configuration = getattr(source, "configuration", None)
        if protocol is None or network is None or configuration is None:
            return None
        try:
            return bool(protocol.legitimate(network, configuration))
        except Exception:
            return None

    def _reset_window(self) -> None:
        self._window.clear()
        self._counts.clear()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, source: Any, kind: str, detail: str) -> None:
        if len(self.anomalies) >= self.max_anomalies:
            return
        record = {
            "kind": kind,
            "step": self.steps,
            "round": self.rounds,
            "detail": detail,
        }
        self.anomalies.append(record)
        instr = getattr(source, "instrumentation", None)
        if instr is not None and getattr(instr, "enabled", False):
            instr.count("anomalies")
            instr.count(f"anomaly_{kind}")
            tracer = instr.tracer
            if tracer is not None:
                span = tracer.span(
                    "anomaly",
                    kind="anomaly",
                    parent=tracer.current_run,
                    anomaly=kind,
                    step=self.steps,
                    round=self.rounds,
                    detail=detail,
                )
                span.close()

    # ------------------------------------------------------------------
    # The persisted blob
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable health record persisted with the run."""
        return {
            "schema": HEALTH_SCHEMA,
            "anomalies": [dict(anomaly) for anomaly in self.anomalies],
            "checks": self.checks,
            "round_budget": self._derived_budget,
            "steps": self.steps,
            "rounds": self.rounds,
        }

    @property
    def healthy(self) -> bool:
        """Whether the run has produced no anomalies so far."""
        return not self.anomalies


def health_summary(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate stored ``health`` blobs across campaign rows.

    Returns the total/monitored/anomalous row counts, per-kind anomaly
    totals, and the anomalous rows' identities -- the ``report --health``
    view, reusable programmatically.
    """
    monitored = 0
    anomaly_kinds: dict[str, int] = {}
    flagged: list[dict[str, Any]] = []
    for row in rows:
        health = row.get("health")
        if not isinstance(health, dict):
            continue
        monitored += 1
        anomalies = health.get("anomalies") or []
        if not anomalies:
            continue
        kinds = sorted({str(anomaly.get("kind")) for anomaly in anomalies})
        for anomaly in anomalies:
            kind = str(anomaly.get("kind"))
            anomaly_kinds[kind] = anomaly_kinds.get(kind, 0) + 1
        entry = {
            "task_index": row.get("task_index"),
            "config_hash": row.get("config_hash"),
            "task_type": row.get("task_type", "stabilize"),
            "anomalies": len(anomalies),
            "kinds": ",".join(kinds),
            "first_step": anomalies[0].get("step"),
        }
        # Recorded runs point their anomalies at the replayable flight log.
        log = health.get("flight_log") or row.get("flight_log")
        if log:
            entry["flight_log"] = log
        flagged.append(entry)
    if any("flight_log" in entry for entry in flagged):
        # Uniform keys so table renderers keyed on the first row keep the
        # column even when only some flagged rows were recorded.
        for entry in flagged:
            entry.setdefault("flight_log", "-")
    return {
        "rows": len(rows),
        "monitored": monitored,
        "anomalous": len(flagged),
        "by_kind": anomaly_kinds,
        "flagged": flagged,
    }


__all__ = [
    "DEFAULT_BUDGET_BASE",
    "DEFAULT_BUDGET_FACTOR",
    "DEFAULT_CHECK_EVERY",
    "DEFAULT_CYCLE_REPEATS",
    "DEFAULT_CYCLE_WINDOW",
    "DEFAULT_MAX_ANOMALIES",
    "HEALTH_SCHEMA",
    "HealthMonitor",
    "configuration_fingerprint",
    "health_summary",
]
