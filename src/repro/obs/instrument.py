"""The instrumentation registry: counters, gauges, and phase timers.

One :class:`Instrumentation` object accompanies one run.  The execution cores
feed it three kinds of measurements:

* **counters** -- monotonically accumulated totals (``guards_evaluated``,
  ``steps_timed``, ``frontier_bytes_sent``, fractional values like
  ``step_seconds`` are fine);
* **gauges** -- per-observation samples of a fluctuating quantity (dirty-set
  size, enabled-set size), summarized as count/sum/min/max so any two
  summaries merge associatively;
* **phase timers** -- wall-clock attributed to a named phase of the step loop
  (``guard_eval``, ``daemon_select``, ``action_exec``, ``observer_dispatch``,
  and -- sharded -- ``frontier_exchange``), as ``(seconds, count)`` pairs.

The sharded coordinator additionally files one *per-shard* summary per worker
(:meth:`Instrumentation.record_shard`), so a sharded run can report per-shard
skew next to its own coordinator-side phases.

**The disabled path costs (almost) nothing.**  Every scheduler holds an
instrumentation object; when none was requested it holds the shared
:data:`NULL_INSTRUMENTATION`, whose class attribute ``enabled`` is ``False``.
Hot loops hoist that flag once (``timed = instr.enabled``) and skip both the
``time.perf_counter()`` calls and the recording behind a single branch, so a
run without instrumentation executes the same step loop it did before the
layer existed, give or take a handful of predictable branches per step.

Summaries (:meth:`Instrumentation.summary`) are plain JSON-serializable
dictionaries -- exactly what lands in ``RunResult.perf`` and in campaign
store rows -- and merge associatively via :func:`merge_summaries`, which is
what lets per-worker summaries, per-trial summaries and per-campaign
aggregates all share one representation.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracer

#: Phase names the scheduler cores report.  Alternative cores may add their
#: own; these are the ones the step loop itself attributes.
PHASE_GUARD_EVAL = "guard_eval"
PHASE_DAEMON_SELECT = "daemon_select"
PHASE_ACTION_EXEC = "action_exec"
PHASE_OBSERVER_DISPATCH = "observer_dispatch"
PHASE_FRONTIER_EXCHANGE = "frontier_exchange"

#: The summary schema version, bumped if the dictionary shape ever changes.
SUMMARY_SCHEMA = 1


class Instrumentation:
    """Mutable per-run registry of counters, gauges and phase timers.

    ``tracer`` optionally attaches a :class:`~repro.obs.spans.SpanTracer`;
    cores that see one emit structured span records alongside the aggregate
    timers.  The registry itself is engine-agnostic: anything that can name a
    counter can use it.
    """

    #: Hot loops hoist this once per step; the null subclass flips it.
    enabled: bool = True

    __slots__ = ("counters", "gauges", "phases", "shards", "tracer")

    def __init__(self, tracer: "SpanTracer | None" = None) -> None:
        self.counters: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self.gauges: dict[str, list[float]] = {}
        #: name -> [seconds, count]
        self.phases: dict[str, list[float]] = {}
        #: shard index -> that worker's summary dictionary
        self.shards: dict[int, dict[str, Any]] = {}
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record one sample of gauge ``name``."""
        entry = self.gauges.get(name)
        if entry is None:
            self.gauges[name] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value

    def phase_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of wall clock to phase ``name``."""
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = [seconds, count]
        else:
            entry[0] += seconds
            entry[1] += count

    def phase(self, name: str) -> "_PhaseTimer":
        """Context manager timing a phase (convenience for cold paths)."""
        return _PhaseTimer(self, name)

    def record_shard(self, index: int, summary: Mapping[str, Any] | None) -> None:
        """File (or refresh) worker ``index``'s cumulative summary."""
        if summary:
            self.shards[index] = dict(summary)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """The JSON-serializable aggregate of everything recorded so far."""
        out: dict[str, Any] = {
            "schema": SUMMARY_SCHEMA,
            "counters": {name: value for name, value in sorted(self.counters.items())},
            "gauges": {
                name: {
                    "count": entry[0],
                    "sum": entry[1],
                    "min": entry[2],
                    "max": entry[3],
                    "mean": entry[1] / entry[0] if entry[0] else None,
                }
                for name, entry in sorted(self.gauges.items())
            },
            "phases": {
                name: {"seconds": entry[0], "count": entry[1]}
                for name, entry in sorted(self.phases.items())
            },
        }
        if self.shards:
            out["shards"] = {str(index): dict(summary) for index, summary in sorted(self.shards.items())}
        return out

    def merge_summary(self, summary: Mapping[str, Any]) -> None:
        """Fold a :meth:`summary`-shaped dictionary into this registry.

        The inverse of :meth:`summary` up to representation: counters and
        phase timers add, gauges combine their count/sum/min/max moments, and
        per-shard summaries are merged recursively by shard index.  Folding
        summaries in any order yields the same state (the merge is
        commutative and associative), which the instrumentation test suite
        pins down.
        """
        for name, value in summary.get("counters", {}).items():
            self.count(name, value)
        for name, stats in summary.get("gauges", {}).items():
            entry = self.gauges.get(name)
            if entry is None:
                self.gauges[name] = [stats["count"], stats["sum"], stats["min"], stats["max"]]
            else:
                entry[0] += stats["count"]
                entry[1] += stats["sum"]
                entry[2] = min(entry[2], stats["min"])
                entry[3] = max(entry[3], stats["max"])
        for name, stats in summary.get("phases", {}).items():
            self.phase_time(name, stats["seconds"], stats["count"])
        for index, shard_summary in summary.get("shards", {}).items():
            existing = self.shards.get(int(index))
            if existing is None:
                self.shards[int(index)] = dict(shard_summary)
            else:
                self.shards[int(index)] = merge_summaries(existing, shard_summary)


class _PhaseTimer:
    """``with instr.phase("name"):`` -- explicit timer for cold paths."""

    __slots__ = ("_instrumentation", "_name", "_started")

    def __init__(self, instrumentation: Instrumentation, name: str) -> None:
        self._instrumentation = instrumentation
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._instrumentation.phase_time(self._name, time.perf_counter() - self._started)


class NullInstrumentation(Instrumentation):
    """The do-nothing implementation the disabled path runs against.

    Every recording method is an explicit no-op (not inherited), so even a
    caller that skips the ``enabled`` check pays only an empty call.  Shared
    safely between any number of schedulers because it holds no state.
    """

    enabled = False

    __slots__ = ()

    def count(self, name: str, value: float = 1) -> None:  # noqa: D102 - no-op
        pass

    def gauge(self, name: str, value: float) -> None:  # noqa: D102 - no-op
        pass

    def phase_time(self, name: str, seconds: float, count: int = 1) -> None:  # noqa: D102
        pass

    def record_shard(self, index: int, summary: Mapping[str, Any] | None) -> None:  # noqa: D102
        pass

    def merge_summary(self, summary: Mapping[str, Any]) -> None:  # noqa: D102 - no-op
        pass

    def summary(self) -> dict[str, Any]:
        """Always empty: the null registry never accumulates anything."""
        return {}


#: The shared no-op instance every uninstrumented scheduler holds.
NULL_INSTRUMENTATION = NullInstrumentation()


def merge_summaries(*summaries: Mapping[str, Any] | None) -> dict[str, Any]:
    """Merge any number of :meth:`Instrumentation.summary` dictionaries.

    Associative and commutative: counters/phases add, gauges combine moments,
    shard maps union recursively.  ``None`` and empty summaries are ignored;
    merging nothing yields an empty dictionary.
    """
    merged = Instrumentation()
    for summary in summaries:
        if summary:
            merged.merge_summary(summary)
    if not (merged.counters or merged.gauges or merged.phases or merged.shards):
        return {}
    return merged.summary()


def phase_seconds(summary: Mapping[str, Any] | None, *names: str) -> float:
    """Total seconds attributed to ``names`` (all phases when none given)."""
    phases = (summary or {}).get("phases", {})
    if not names:
        names = tuple(phases)
    return float(sum(phases[name]["seconds"] for name in names if name in phases))


def summary_counter(summary: Mapping[str, Any] | None, name: str, default: float = 0.0) -> float:
    """Counter ``name`` out of a summary dictionary (``default`` if absent)."""
    return float((summary or {}).get("counters", {}).get(name, default))


__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "PHASE_ACTION_EXEC",
    "PHASE_DAEMON_SELECT",
    "PHASE_FRONTIER_EXCHANGE",
    "PHASE_GUARD_EVAL",
    "PHASE_OBSERVER_DISPATCH",
    "SUMMARY_SCHEMA",
    "merge_summaries",
    "phase_seconds",
    "summary_counter",
]
