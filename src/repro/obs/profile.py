"""Opt-in cProfile hook: ``REPRO_PROFILE=<dir>`` profiles runs to ``.prof``.

:func:`maybe_profile` wraps a region of work -- one :func:`repro.api.run`
call or one campaign task -- in a :class:`cProfile.Profile` when the
``REPRO_PROFILE`` environment variable names a directory, dumping a
``<label>.prof`` file there on exit.  When the variable is unset (the
default, and the only mode CI runs in) the context manager is a shared
no-op, so the hot path sees a single dictionary lookup per run.

Dump files load straight into the standard tooling::

    REPRO_PROFILE=/tmp/prof repro-campaign run campaign.json ...
    python -m pstats /tmp/prof/<task-id>.prof
"""

from __future__ import annotations

import cProfile
import contextlib
import os
import re
from typing import Iterator, Mapping

#: Environment variable naming the directory profile dumps land in.
PROFILE_ENV = "REPRO_PROFILE"

_LABEL_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def profile_dir(environ: Mapping[str, str] | None = None) -> str | None:
    """The configured profile directory, or ``None`` when profiling is off."""
    environ = os.environ if environ is None else environ
    path = environ.get(PROFILE_ENV, "").strip()
    return path or None


@contextlib.contextmanager
def maybe_profile(label: str, environ: Mapping[str, str] | None = None) -> Iterator[None]:
    """Profile the enclosed block into ``$REPRO_PROFILE/<label>.prof``.

    A no-op context manager when ``REPRO_PROFILE`` is unset.  ``label`` is
    sanitized to a safe filename; collisions get a numeric suffix rather than
    overwriting an earlier dump, so campaign tasks sharing a label keep every
    profile.
    """
    directory = profile_dir(environ)
    if directory is None:
        yield
        return
    os.makedirs(directory, exist_ok=True)
    safe = _LABEL_UNSAFE.sub("_", label).strip("_") or "run"
    path = os.path.join(directory, f"{safe}.prof")
    suffix = 0
    while os.path.exists(path):
        suffix += 1
        path = os.path.join(directory, f"{safe}.{suffix}.prof")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)


__all__ = ["PROFILE_ENV", "maybe_profile", "profile_dir"]
