"""The execution flight recorder: a causal, replayable event log per run.

The health watchdog and the shard race checker can *flag* an anomalous run;
the :class:`FlightRecorder` makes it a reproducible artifact.  Attached as an
ordinary :class:`~repro.runtime.observers.Observer`, it appends one compact
JSONL entry per observable event of the execution:

* ``header`` -- schema version, the :class:`~repro.api.RunSpec` (when known),
  the serialized topology, the protocol and daemon names;
* ``init`` -- the full initial configuration (it was drawn from the rng, so
  a replay cannot re-derive it) plus its fingerprint and the frozen set;
* ``step`` -- every daemon selection with the per-move write-sets (old and
  new values) and a fingerprint of the whole step record;
* ``mutation`` -- every out-of-band state surgery routed through the
  scheduler's seams (``set_configuration``, ``freeze``/``unfreeze``,
  ``set_network`` with the serialized new topology and the redrawn endpoint
  states, ``set_daemon``, ``replace_node``);
* ``event`` -- scenario recovery records (informational);
* ``exchange`` -- in sharded runs, every coordinator<->worker message
  stamped with a Lamport-style causal sequence (informational: replay
  re-executes on the single-process core, which the equivalence suite holds
  bit-identical to the sharded one);
* ``final`` -- the final configuration, metrics and totals on close.

Values are encoded exactly (tuples and non-string-keyed mappings survive the
JSON round trip via tagged forms), so a replay can assert byte-identical
:class:`~repro.runtime.scheduler.StepRecord` streams.  The replay side lives
in :mod:`repro.replay`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

from repro.runtime.observers import Observer

#: Bump on any change to the entry shapes below.
SCHEMA_VERSION = 1

#: Default directory ``record=True`` runs write into.
DEFAULT_LOG_DIR = "flightlogs"

_TAGS = ("__tuple__", "__map__", "__set__", "__frozenset__", "__repr__")


def encode_value(value: Any) -> Any:
    """``value`` as JSON-compatible data that decodes back *exactly*.

    Protocol variables hold ints, strings, ``None``, tuples (pointer pairs)
    and mappings -- sometimes with non-string keys (edge-label maps keyed by
    neighbor id), which plain JSON would silently stringify.  Tuples and such
    mappings are wrapped in tagged objects; everything JSON-native passes
    through untouched.  Unsupported types degrade to a ``__repr__`` tag: the
    log stays writable (and fingerprints deterministic), but a replay of that
    value raises instead of guessing.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, frozenset):
        items = sorted((encode_value(item) for item in value), key=_sort_key)
        return {"__frozenset__": items}
    if isinstance(value, set):
        items = sorted((encode_value(item) for item in value), key=_sort_key)
        return {"__set__": items}
    if isinstance(value, Mapping):
        if all(isinstance(key, str) and key not in _TAGS for key in value):
            return {key: encode_value(item) for key, item in value.items()}
        return {
            "__map__": [
                [encode_value(key), encode_value(item)] for key, item in value.items()
            ]
        }
    return {"__repr__": repr(value)}


def _sort_key(encoded: Any) -> str:
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def decode_value(value: Any) -> Any:
    """The inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(item) for item in value["__tuple__"])
        if "__map__" in value:
            return {
                decode_value(key): decode_value(item) for key, item in value["__map__"]
            }
        if "__set__" in value:
            return set(decode_value(item) for item in value["__set__"])
        if "__frozenset__" in value:
            return frozenset(decode_value(item) for item in value["__frozenset__"])
        if "__repr__" in value:
            from repro.errors import ReplayError

            raise ReplayError(
                f"value {value['__repr__']} was recorded by repr only and "
                f"cannot be replayed"
            )
        return {key: decode_value(item) for key, item in value.items()}
    return value


def encode_states(states: Mapping[int, Mapping[str, Any]]) -> dict[str, Any]:
    """A configuration's ``{node: {variable: value}}`` states, JSON-keyed."""
    return {
        str(node): {name: encode_value(value) for name, value in state.items()}
        for node, state in states.items()
    }


def decode_states(encoded: Mapping[str, Any]) -> dict[int, dict[str, Any]]:
    """The inverse of :func:`encode_states`."""
    return {
        int(node): {name: decode_value(value) for name, value in state.items()}
        for node, state in encoded.items()
    }


def fingerprint(encoded: Any) -> str:
    """Stable 16-hex digest of already-encoded data.

    Unlike Python's per-process ``hash()``, this survives process (and
    machine) boundaries, so logs shipped home from remote workers verify
    against local re-executions.
    """
    blob = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def encode_step(record: Any) -> dict[str, Any]:
    """A :class:`~repro.runtime.scheduler.StepRecord` as a log ``core`` blob."""
    return {
        "step": record.step,
        "round": record.round,
        "executed": [[node, action] for node, action in record.executed],
        "changed": list(record.changed_nodes),
        "moves": [
            {
                "node": move.node,
                "action": move.action,
                "layer": move.layer,
                "changes": {
                    name: [encode_value(old), encode_value(new)]
                    for name, (old, new) in move.changes.items()
                },
            }
            for move in record.moves
        ],
    }


class FlightRecorder(Observer):
    """Observer appending the run's causal event log to ``path``.

    Entries are buffered and flushed every ``flush_every`` entries (and on
    :meth:`close`), keeping the per-step overhead to one JSON encode.  The
    recorder is an ordinary observer: a failure inside any hook disables it
    (warn-once) without perturbing the run it was watching.

    ``spec`` (a :class:`~repro.api.RunSpec`) enriches the header so a replay
    can rebuild the protocol and validate the topology without guesswork;
    raw scheduler runs record ``protocol.name`` instead.
    """

    #: Opt into the sharded coordinator's per-message exchange stream.
    wants_exchanges = True

    def __init__(
        self,
        path: "str | Path",
        spec: Any = None,
        flush_every: int = 256,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._spec = spec
        self._flush_every = max(1, int(flush_every))
        self._fh = open(self.path, "w", encoding="utf-8")
        self._buffer: list[str] = []
        self._seq = 0
        self._source: Any = None
        self._started = False
        self._closed = False
        self.entries_written = 0

    # ------------------------------------------------------------------
    # Low-level writing
    # ------------------------------------------------------------------
    def _write(self, entry: dict[str, Any]) -> None:
        if self._closed:
            return
        entry["seq"] = self._seq
        self._line(json.dumps(entry, separators=(",", ":")))

    def _line(self, text: str) -> None:
        """Append one pre-serialized entry (sequence number already inside)."""
        self._seq += 1
        self._buffer.append(text)
        self.entries_written += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered entries to disk."""
        if self._buffer and not self._closed:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._fh.flush()

    def close(self) -> None:
        """Write the ``final`` entry (when a run was seen) and close the file."""
        if self._closed:
            return
        source = self._source
        if source is not None:
            try:
                states = source.configuration.to_dict()
                encoded = encode_states(states)
                self._write(
                    {
                        "type": "final",
                        "steps": source.steps_executed,
                        "rounds": source.rounds_completed,
                        "config": encoded,
                        "fingerprint": fingerprint(encoded),
                        "metrics": encode_value(source.metrics.as_dict()),
                    }
                )
            except Exception:  # a torn-down engine must not lose the log
                pass
        self.flush()
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def on_run_start(self, source: Any, payload: Any) -> None:
        if self._started:
            # A second engine construction inside one recorded run (e.g. a
            # presettle pass wired with observers) would interleave two step
            # streams; record the fact instead of corrupting the log.
            self._write({"type": "note", "note": "additional run start ignored"})
            return
        self._started = True
        self._source = source
        from repro.graphs import io as graph_io

        header: dict[str, Any] = {
            "type": "header",
            "version": SCHEMA_VERSION,
            "protocol": getattr(source.protocol, "name", None),
            "daemon": source.daemon.name,
            "network": graph_io.to_dict(source.network),
        }
        if self._spec is not None:
            header["spec"] = self._spec.to_dict()
            header["spec_hash"] = self._spec.canonical_hash
            header["engine"] = self._spec.engine
            header["protocol"] = self._spec.protocol
        self._write(header)
        states = source.configuration.to_dict()
        encoded = encode_states(states)
        self._write(
            {
                "type": "init",
                "config": encoded,
                "fingerprint": fingerprint(encoded),
                "frozen": sorted(source.frozen_nodes),
            }
        )

    def on_step(self, source: Any, record: Any) -> None:
        if self._closed:
            return
        self._source = source
        # The hot path serializes the core exactly once: the sorted-keys dump
        # both *is* the fingerprint input (matching :func:`fingerprint` on the
        # parsed-back core) and is spliced verbatim into the entry line.
        core_json = json.dumps(
            encode_step(record), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(core_json.encode("utf-8")).hexdigest()[:16]
        self._line(
            f'{{"type":"step","core":{core_json},"fp":"{digest}","seq":{self._seq}}}'
        )

    def on_mutation(self, source: Any, mutation: Mapping[str, Any]) -> None:
        self._source = source
        kind = mutation.get("kind")
        entry: dict[str, Any] = {"type": "mutation", "kind": kind}
        if kind == "set_configuration":
            encoded = encode_states(mutation["configuration"].to_dict())
            entry["config"] = encoded
            entry["fingerprint"] = fingerprint(encoded)
        elif kind == "set_network":
            from repro.graphs import io as graph_io

            entry["network"] = graph_io.to_dict(mutation["network"])
            entry["reinitialized"] = encode_states(mutation["reinitialized"])
        elif kind in ("freeze", "unfreeze"):
            entry["nodes"] = list(mutation["nodes"])
        elif kind == "set_daemon":
            entry["daemon"] = mutation["daemon"]
        elif kind == "replace_node":
            entry["node"] = mutation["node"]
            entry["state"] = {
                name: encode_value(value)
                for name, value in mutation["state"].items()
            }
        else:  # forward-compatible: record what arrived
            entry["data"] = encode_value(dict(mutation))
        self._write(entry)

    def on_event(self, source: Any, event: Any) -> None:
        entry: dict[str, Any] = {
            "type": "event",
            "kind": getattr(event, "kind", type(event).__name__),
        }
        for attr in ("description", "affected_nodes", "applied", "steps_consumed",
                     "recovery_steps", "recovery_rounds", "disturbance"):
            value = getattr(event, attr, None)
            if value is not None:
                entry[attr] = encode_value(value)
        self._write(entry)

    def on_exchange(self, source: Any, exchange: Mapping[str, Any]) -> None:
        entry = {"type": "exchange"}
        entry.update(exchange)
        self._write(entry)

    def on_converged(self, source: Any, result: Any) -> None:
        entry: dict[str, Any] = {"type": "converged"}
        as_row = getattr(result, "as_row", None)
        if callable(as_row):
            try:
                entry["row"] = encode_value(as_row())
            except Exception:
                entry["result"] = repr(result)
        else:
            entry["result"] = repr(result)
        self._write(entry)


__all__ = [
    "DEFAULT_LOG_DIR",
    "FlightRecorder",
    "SCHEMA_VERSION",
    "decode_states",
    "decode_value",
    "encode_states",
    "encode_step",
    "encode_value",
    "fingerprint",
]
