"""Span-based structured tracing: run → round → step → phase as JSONL.

A :class:`SpanTracer` hands out nested :class:`Span` context managers; every
span that closes is emitted to a pluggable sink as one flat record carrying
its name, kind, start offset, duration, parent id and any attached fields.
The default :class:`JsonlSpanSink` writes one JSON object per line, which is
trivially greppable and loads straight into pandas; tests use
:class:`ListSpanSink`.

Tracing rides on the instrumentation layer: the execution cores only emit
spans when a tracer is attached to their :class:`~repro.obs.Instrumentation`
(``REPRO_TRACE=/path/to/file.jsonl`` attaches one from the environment via
:func:`tracer_from_env`), so the default path never pays for it.  Spans are
deliberately coarser than phase timers -- rounds and steps, not every guard
probe -- because the aggregate timers already carry the per-phase totals.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, IO, Mapping

#: Environment variable naming the JSONL file spans are appended to.
TRACE_ENV = "REPRO_TRACE"


class SpanSink:
    """Receives one flat record per closed span."""

    def emit(self, record: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class ListSpanSink(SpanSink):
    """Collects span records in memory (tests, programmatic inspection)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))


class JsonlSpanSink(SpanSink):
    """Appends one JSON object per span to a file (or writes to a stream)."""

    def __init__(self, path_or_stream: str | IO[str]) -> None:
        if isinstance(path_or_stream, str):
            self._stream: IO[str] = open(path_or_stream, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = path_or_stream
            self._owns_stream = False

    def emit(self, record: Mapping[str, Any]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class Span:
    """One timed region.  Close it (or exit the ``with``) to emit."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "kind", "fields", "_started", "_closed")

    def __init__(
        self,
        tracer: "SpanTracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        fields: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.fields = fields
        self._started = time.perf_counter()
        self._closed = False

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields to the record this span will emit."""
        self.fields.update(fields)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tracer._finish(self, time.perf_counter() - self._started)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SpanTracer:
    """Builds the run → round → step span tree and feeds the sink.

    Span ids are sequential per tracer; ``t_offset`` is seconds since the
    tracer was created, so records from one run line up on a shared clock.
    The tracer keeps an explicit parent reference per span (passed by the
    caller as ``parent=``) instead of thread-local nesting -- the execution
    cores know their nesting statically.
    """

    def __init__(self, sink: SpanSink) -> None:
        self.sink = sink
        self._epoch = time.perf_counter()
        self._next_id = 0
        self.emitted = 0
        #: Cross-layer parenting points: the engine parks its open run span
        #: here and the step loop parents round/step spans on whichever is
        #: set, so the layers compose without passing spans through APIs.
        self.current_run: Span | None = None
        self.current_round: Span | None = None

    def span(
        self,
        name: str,
        kind: str = "span",
        parent: Span | None = None,
        **fields: Any,
    ) -> Span:
        self._next_id += 1
        return Span(
            self,
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            kind,
            fields,
        )

    def _finish(self, span: Span, duration: float) -> None:
        record: dict[str, Any] = {
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "t_offset": round(span._started - self._epoch, 9),
            "seconds": round(duration, 9),
        }
        if span.fields:
            record.update(span.fields)
        self.sink.emit(record)
        self.emitted += 1

    def close(self) -> None:
        self.sink.close()


def tracer_from_env(environ: Mapping[str, str] | None = None) -> SpanTracer | None:
    """Build a :class:`SpanTracer` from ``REPRO_TRACE``, or ``None`` if unset."""
    environ = os.environ if environ is None else environ
    path = environ.get(TRACE_ENV, "").strip()
    if not path:
        return None
    return SpanTracer(JsonlSpanSink(path))


# ----------------------------------------------------------------------
# Chrome-trace (Perfetto) export
# ----------------------------------------------------------------------

#: span kind -> Chrome trace thread id, so the viewer lays the run / round /
#: step hierarchy out as stacked tracks instead of one overlapping lane.
_CHROME_TRACKS = {"run": 1, "round": 2, "step": 3, "anomaly": 4}


def load_span_records(path: str) -> list[dict[str, Any]]:
    """The span records of one JSONL trace file, in emission order.

    Non-JSON lines are skipped (a live tracer may still be appending the
    last line when the exporter reads the file).
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def to_chrome_trace(records: list[Mapping[str, Any]]) -> dict[str, Any]:
    """Span records as a Chrome trace event object (Perfetto-loadable).

    Timed spans become complete (``ph="X"``) events with microsecond
    ``ts``/``dur`` on a per-kind track; zero-duration ``anomaly`` spans
    become instant (``ph="i"``) markers.  Load the written file in
    ``ui.perfetto.dev`` or ``chrome://tracing``.
    """
    events: list[dict[str, Any]] = []
    for record in records:
        kind = str(record.get("kind", "span"))
        start_us = float(record.get("t_offset", 0.0)) * 1e6
        duration_us = float(record.get("seconds", 0.0)) * 1e6
        args = {
            key: value
            for key, value in record.items()
            if key not in ("span", "parent", "name", "kind", "t_offset", "seconds")
        }
        args["span"] = record.get("span")
        if record.get("parent") is not None:
            args["parent"] = record.get("parent")
        event: dict[str, Any] = {
            "name": str(record.get("name", kind)),
            "cat": kind,
            "pid": 1,
            "tid": _CHROME_TRACKS.get(kind, 5),
            "ts": round(start_us, 3),
            "args": args,
        }
        if kind == "anomaly" or duration_us <= 0:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant marker
        else:
            event["ph"] = "X"
            event["dur"] = round(duration_us, 3)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(source: str, destination: str) -> int:
    """Convert a JSONL span trace to a Chrome trace file; returns #events."""
    trace = to_chrome_trace(load_span_records(source))
    with open(destination, "w", encoding="utf-8") as stream:
        json.dump(trace, stream)
    return len(trace["traceEvents"])


__all__ = [
    "JsonlSpanSink",
    "ListSpanSink",
    "Span",
    "SpanSink",
    "SpanTracer",
    "TRACE_ENV",
    "export_chrome_trace",
    "load_span_records",
    "to_chrome_trace",
    "tracer_from_env",
]
