"""Protocol-health telemetry: compact convergence time-series per run.

The instrumentation layer (:mod:`repro.obs.instrument`) answers *where the
wall clock goes*; this module answers *what the protocol is doing* while it
stabilizes.  A :class:`ConvergenceTelemetryObserver` rides any engine's
observer stream and samples, at a configurable step stride,

* the **enabled-set size** -- the paper's progress measure: a stabilizing run
  drains it, a diverging run does not;
* the **changed-node count** of each sampled step -- the per-step dirty
  frontier that feeds the incremental scheduler;
* the **selected-set size** -- how much parallelism the daemon granted;
* the **legitimacy bit** -- whether the protocol's legitimacy predicate held
  at the sample (evaluated only at the stride, never per step), plus an
  optional *convergence distance* for substrates that expose one (a
  ``convergence_distance(network, configuration)`` method returning a
  number; none of the built-ins do yet -- it is the forward hook the
  autotuning/hunt roadmap items want).

Alongside the series it accumulates whole-run aggregates that need no
sampling at all because they come straight from the step records:

* the **guard heat map** -- per-action fire counts keyed ``layer:action``,
  the quickest way to see which rule a protocol is burning its moves on;
* **writes per node** -- how many variable writes each processor performed,
  exposing hot spots (e.g. a root that keeps correcting its children);
* **per-shard move counts** when the run executes on the sharded engine
  (derived coordinator-side from the partition's owner map -- the same
  piggyback economy as the per-shard perf summaries: no extra round-trips).

The resulting :meth:`snapshot` is a plain JSON-serializable dictionary -- it
lands in ``RunResult.telemetry`` and, for campaigns run with
``--telemetry``, under the row's ``telemetry`` key, round-tripping
byte-stable through both store backends.  Like ``perf``, telemetry never
influences the measured execution or the row's config hash; a run without
the observer pays nothing (it is simply not registered).

The series is bounded: when it reaches ``max_samples`` it is decimated
(every other sample dropped, stride doubled), so arbitrarily long runs keep
a fixed-size, evenly-spaced trajectory instead of an unbounded log.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.runtime.observers import Observer

#: The telemetry blob schema version, bumped if the shape ever changes.
TELEMETRY_SCHEMA = 1

#: Default sampling stride (steps between series samples).
DEFAULT_STRIDE = 32

#: Default series bound; reaching it halves the resolution (doubles stride).
DEFAULT_MAX_SAMPLES = 512

#: Column names of each ``samples`` entry, in order.
SAMPLE_COLUMNS = (
    "step",
    "round",
    "enabled",
    "changed",
    "selected",
    "legitimate",
    "distance",
)


class ConvergenceTelemetryObserver(Observer):
    """Samples convergence time-series and guard/write heat maps from a run.

    Parameters
    ----------
    stride:
        Sample the series every this many steps (step 0 is always sampled).
        Doubles automatically whenever the series hits ``max_samples``.
    max_samples:
        Bound on the retained series length; reaching it decimates the series
        (every other sample dropped) instead of growing without bound.
    track_legitimacy:
        Evaluate the protocol's legitimacy predicate at each sample (only at
        the stride -- never per step).  Costs one predicate evaluation per
        sample; switch off for very hot sweeps.
    """

    def __init__(
        self,
        stride: int = DEFAULT_STRIDE,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        track_legitimacy: bool = True,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.stride = stride
        self.max_samples = max_samples
        self.track_legitimacy = track_legitimacy
        #: Retained series rows, each ordered like :data:`SAMPLE_COLUMNS`.
        self.samples: list[list[Any]] = []
        self.guard_heat: dict[str, int] = {}
        self.writes_per_node: dict[int, int] = {}
        self.shard_moves: dict[int, int] = {}
        self.events: list[list[Any]] = []
        self.steps = 0
        self.rounds = 0
        self.converged_step: int | None = None

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def on_step(self, source: Any, record: Any) -> None:
        self.steps = record.step + 1
        # Whole-run aggregates come straight off the record (cheap: they
        # iterate only the *selected* processors, not the network).
        partition = getattr(source, "partition", None)
        for move in getattr(record, "moves", ()):
            key = f"{move.layer}:{move.action}"
            self.guard_heat[key] = self.guard_heat.get(key, 0) + 1
            if move.changes:
                self.writes_per_node[move.node] = self.writes_per_node.get(
                    move.node, 0
                ) + len(move.changes)
            if partition is not None:
                shard = partition.owner_of(move.node)
                self.shard_moves[shard] = self.shard_moves.get(shard, 0) + 1
        if record.step % self.stride == 0:
            self._sample(source, record)

    def on_round(self, source: Any, round_index: int) -> None:
        self.rounds = round_index

    def on_event(self, source: Any, event: Any) -> None:
        kind = getattr(event, "kind", type(event).__name__)
        self.events.append([self.steps, str(kind)])

    def on_converged(self, source: Any, result: Any) -> None:
        if self.converged_step is None:
            self.converged_step = self.steps

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample(self, source: Any, record: Any) -> None:
        enabled: int | None = None
        enabled_nodes = getattr(source, "enabled_nodes", None)
        if callable(enabled_nodes):
            enabled = len(enabled_nodes())
        legitimate: int | None = None
        if self.track_legitimacy:
            legitimate = self._legitimacy(source)
        self.samples.append(
            [
                record.step,
                record.round,
                enabled,
                len(getattr(record, "changed_nodes", ())),
                len(getattr(record, "executed", ())),
                legitimate,
                self._distance(source),
            ]
        )
        if len(self.samples) >= self.max_samples:
            # Decimate: keep every other sample, double the stride.  The
            # retained rows stay evenly spaced and the blob stays bounded.
            self.samples = self.samples[::2]
            self.stride *= 2

    @staticmethod
    def _legitimacy(source: Any) -> int | None:
        """0/1 legitimacy of the source's current configuration (or ``None``).

        Substrates may additionally expose ``convergence_distance(network,
        configuration)``; :meth:`_distance` reads it when present.
        """
        protocol = getattr(source, "protocol", None)
        network = getattr(source, "network", None)
        configuration = getattr(source, "configuration", None)
        if protocol is None or network is None or configuration is None:
            return None
        try:
            return int(bool(protocol.legitimate(network, configuration)))
        except Exception:  # a partial stack mid-scenario must not kill the run
            return None

    @staticmethod
    def _distance(source: Any) -> float | None:
        protocol = getattr(source, "protocol", None)
        distance = getattr(protocol, "convergence_distance", None)
        if not callable(distance):
            return None
        try:
            value = distance(source.network, source.configuration)
        except Exception:
            return None
        return float(value) if value is not None else None

    # ------------------------------------------------------------------
    # The persisted blob
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The JSON-serializable telemetry blob persisted with the run.

        All keys are strings and all values are ints / ``None`` / strings,
        so the blob round-trips byte-stable through JSONL and SQLite stores.
        """
        out: dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA,
            "stride": self.stride,
            "columns": list(SAMPLE_COLUMNS),
            "samples": [list(sample) for sample in self.samples],
            "guard_heat": {
                name: count for name, count in sorted(self.guard_heat.items())
            },
            "writes_per_node": {
                str(node): count for node, count in sorted(self.writes_per_node.items())
            },
            "steps": self.steps,
            "rounds": self.rounds,
            "converged_step": self.converged_step,
        }
        if self.events:
            out["events"] = [list(event) for event in self.events]
        if self.shard_moves:
            out["shard_moves"] = {
                str(shard): count for shard, count in sorted(self.shard_moves.items())
            }
        return out


def guard_heat_table(snapshot: Mapping[str, Any], limit: int | None = None) -> list[dict[str, Any]]:
    """Render a telemetry blob's guard heat map as table rows (hottest first).

    Each row carries the ``layer:action`` key split apart, the fire count,
    and the share of all fires -- the "reading a guard heat map" view the
    README documents.
    """
    heat = snapshot.get("guard_heat", {})
    total = sum(heat.values()) or 1
    rows = [
        {
            "layer": key.split(":", 1)[0],
            "action": key.split(":", 1)[1] if ":" in key else key,
            "fires": count,
            "share": f"{100.0 * count / total:.1f}%",
        }
        for key, count in sorted(heat.items(), key=lambda item: item[1], reverse=True)
    ]
    return rows[:limit] if limit is not None else rows


def enabled_trajectory(snapshot: Mapping[str, Any]) -> list[tuple[int, int]]:
    """The (step, enabled-set size) series out of a telemetry blob.

    Skips samples where the engine did not expose an enabled set (e.g. the
    message-passing simulator).  This is the drain curve the paper's
    convergence claims are about.
    """
    columns = snapshot.get("columns", list(SAMPLE_COLUMNS))
    try:
        step_index = columns.index("step")
        enabled_index = columns.index("enabled")
    except ValueError:
        return []
    return [
        (sample[step_index], sample[enabled_index])
        for sample in snapshot.get("samples", [])
        if sample[enabled_index] is not None
    ]


__all__ = [
    "ConvergenceTelemetryObserver",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_STRIDE",
    "SAMPLE_COLUMNS",
    "TELEMETRY_SCHEMA",
    "enabled_trajectory",
    "guard_heat_table",
]
