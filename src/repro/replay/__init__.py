"""Deterministic replay of flight-recorder logs (see :mod:`repro.obs.recorder`).

The write side is the :class:`~repro.obs.recorder.FlightRecorder` observer;
this package is the read side:

* :class:`FlightLog` -- the parsed, validated log;
* :class:`ReplayRun` / :class:`ReplayReport` / :class:`Divergence` -- lockstep
  re-execution with first-divergence localization;
* :class:`ReplayEngine` -- the ``scheduler-replay`` engine behind
  :func:`repro.api.run` (importing this package registers it);
* the ``repro-replay`` command line (:mod:`repro.replay.cli`) with ``show``,
  ``verify`` and ``bisect``.
"""

from repro.replay.engine import (
    Divergence,
    ReplayDaemon,
    ReplayEngine,
    ReplayReport,
    ReplayRun,
    replay_spec,
)
from repro.replay.log import FlightLog, decoded_step_record

__all__ = [
    "Divergence",
    "FlightLog",
    "ReplayDaemon",
    "ReplayEngine",
    "ReplayReport",
    "ReplayRun",
    "decoded_step_record",
    "replay_spec",
]
