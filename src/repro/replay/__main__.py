"""``python -m repro.replay`` -- the ``repro-replay`` command line."""

import sys

from repro.replay.cli import main

if __name__ == "__main__":
    sys.exit(main())
