"""Command-line interface for flight-recorder logs.

::

    repro-replay show results/flightlogs/run-6f1f….flight.jsonl --start 10 --end 20
    repro-replay verify results/flightlogs/run-6f1f….flight.jsonl
    repro-replay bisect results/flightlogs/run-6f1f….flight.jsonl

``show`` pretty-prints a step range with per-node state diffs (plus the
mutations and scenario events interleaved between them).  ``verify``
re-executes the log in lockstep and exits 0 iff every step record, the final
configuration and the metrics are byte-identical to the recording.
``bisect`` localizes the *first* point of damage: it checks the recorded
per-step fingerprints for in-log corruption (an entry whose body no longer
matches its stamp), replays to the first live divergence, and reports
whichever comes first as ``file:line`` -- exit 0 when something was
localized, 1 when the log replays clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.errors import ReproError
from repro.obs.recorder import fingerprint
from repro.replay.engine import ReplayRun
from repro.replay.log import FlightLog, decoded_step_record


def _entry_line(log: FlightLog, entry: dict[str, Any]) -> str:
    """The ``file:line`` position of ``entry`` (entries are written in seq
    order, one line each, so line = seq + 1)."""
    seq = entry.get("seq")
    return f"{log.path}:{seq + 1}" if isinstance(seq, int) else str(log.path)


# ----------------------------------------------------------------------
# show
# ----------------------------------------------------------------------
def _format_step(entry: dict[str, Any]) -> list[str]:
    record = decoded_step_record(entry)
    executed = ", ".join(f"{node}:{action}" for node, action in record.executed)
    lines = [f"step {record.step} (round {record.round})  executed [{executed}]"]
    for move in record.moves:
        if not move.changes:
            lines.append(f"    node {move.node} {move.layer}/{move.action}: no-op")
            continue
        diffs = ", ".join(
            f"{name}: {old!r} -> {new!r}"
            for name, (old, new) in sorted(move.changes.items())
        )
        lines.append(f"    node {move.node} {move.layer}/{move.action}: {diffs}")
    return lines


def _format_mutation(entry: dict[str, Any]) -> str:
    kind = entry.get("kind")
    if kind in ("freeze", "unfreeze"):
        return f"mutation {kind}: nodes {entry.get('nodes')}"
    if kind == "replace_node":
        return f"mutation replace_node: node {entry.get('node')}"
    if kind == "set_network":
        touched = sorted((entry.get("reinitialized") or {}))
        return f"mutation set_network: reinitialized nodes {touched}"
    if kind == "set_daemon":
        return f"mutation set_daemon: {entry.get('daemon')}"
    if kind == "set_configuration":
        return f"mutation set_configuration: fingerprint {entry.get('fingerprint')}"
    return f"mutation {kind}"


def _cmd_show(args: argparse.Namespace) -> int:
    log = FlightLog.load(args.log)
    print(f"{log.path}: {log.describe()}")
    print(f"initial configuration fingerprint {log.init.get('fingerprint')}")
    end = args.end if args.end is not None else float("inf")
    shown = 0
    pending: list[str] = []
    for entry in log.entries:
        kind = entry["type"]
        if kind == "mutation":
            pending.append(_format_mutation(entry))
            continue
        if kind == "event":
            pending.append(f"event {entry.get('kind')}: {entry.get('description', '')}")
            continue
        if kind != "step":
            continue
        step = entry["core"]["step"]
        if step < args.start:
            pending.clear()
            continue
        if step > end:
            break
        for line in pending:
            print(f"  -- {line}")
        pending.clear()
        for line in _format_step(entry):
            print(f"  {line}")
        shown += 1
        if args.limit is not None and shown >= args.limit:
            break
    if log.final is not None:
        print(
            f"final: steps={log.final.get('steps')} rounds={log.final.get('rounds')} "
            f"fingerprint={log.final.get('fingerprint')}"
        )
    return 0


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def _cmd_verify(args: argparse.Namespace) -> int:
    log = FlightLog.load(args.log)
    report = ReplayRun(log).run()
    if report.verified:
        print(
            f"verified: {report.steps_replayed} steps and "
            f"{report.mutations_applied} mutations replayed byte-identically "
            f"({log.describe()})"
        )
        return 0
    if report.divergence is not None:
        print(report.divergence.format(), file=sys.stderr)
    if report.final_ok is False and report.final_detail:
        print(report.final_detail, file=sys.stderr)
    if report.metrics_ok is False:
        print("recorded metrics differ from the replayed run's", file=sys.stderr)
    print(
        f"verify FAILED after {report.steps_replayed} matching steps", file=sys.stderr
    )
    return 1


# ----------------------------------------------------------------------
# bisect
# ----------------------------------------------------------------------
def _first_corrupt_step(log: FlightLog) -> "dict[str, Any] | None":
    """The first step entry whose body belies its stamp.

    Each step entry carries ``fp = fingerprint(core)`` written at record
    time, so in-log damage (a flipped value, a hand-edited entry) is exactly
    a fingerprint mismatch at the damaged entry.  Damage need not be
    contiguous, so every stamp is checked (one hash per entry -- cheaper
    than a single replayed step); the earliest mismatch wins.
    """
    steps = [entry for entry in log.entries if entry["type"] == "step"]
    bad = [
        index
        for index, entry in enumerate(steps)
        if fingerprint(entry.get("core")) != entry.get("fp")
    ]
    if not bad:
        return None
    # The scan above is the ground truth (damage need not be contiguous);
    # report the earliest damaged entry.
    return steps[bad[0]]


def _cmd_bisect(args: argparse.Namespace) -> int:
    log = FlightLog.load(args.log)
    corrupt = _first_corrupt_step(log)
    report = None
    if corrupt is None or corrupt["core"].get("step", 0) > 0:
        report = ReplayRun(log).run()
    findings: list[tuple[int, str]] = []
    if corrupt is not None:
        step = corrupt["core"].get("step")
        findings.append(
            (
                step,
                f"{_entry_line(log, corrupt)}: step {step} entry is corrupt -- "
                f"its body no longer matches its recorded fingerprint "
                f"{corrupt.get('fp')}",
            )
        )
    if report is not None and report.divergence is not None:
        divergence = report.divergence
        entry = next(
            (
                e
                for e in log.entries
                if e["type"] == "step" and e.get("seq") == divergence.seq
            ),
            None,
        )
        position = _entry_line(log, entry) if entry is not None else str(log.path)
        findings.append(
            (
                divergence.step if divergence.step is not None else 0,
                f"{position}: first live divergence\n{divergence.format()}",
            )
        )
    if report is not None and report.divergence is None and report.final_ok is False:
        findings.append(
            (
                report.steps_replayed,
                f"{log.path}: every step matches but the recorded final "
                f"configuration does not ({report.final_detail})",
            )
        )
    if not findings:
        print(
            f"nothing to bisect: the log replays clean "
            f"({report.steps_replayed if report else 0} steps verified)"
        )
        return 1
    findings.sort(key=lambda item: item[0])
    step, message = findings[0]
    print(f"first divergence localized to step {step}:")
    print(message)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-replay",
        description="Inspect, verify and bisect execution flight-recorder logs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="pretty-print a step range with per-node diffs")
    show.add_argument("log", metavar="LOG", help="flight log (.flight.jsonl)")
    show.add_argument("--start", type=int, default=0, metavar="STEP", help="first step")
    show.add_argument("--end", type=int, default=None, metavar="STEP", help="last step")
    show.add_argument(
        "--limit", type=int, default=None, metavar="N", help="show at most N steps"
    )

    verify = sub.add_parser(
        "verify", help="replay the log and check byte-identical step records"
    )
    verify.add_argument("log", metavar="LOG", help="flight log (.flight.jsonl)")

    bisect = sub.add_parser(
        "bisect", help="localize the first corrupt entry / live divergence"
    )
    bisect.add_argument("log", metavar="LOG", help="flight log (.flight.jsonl)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "verify":
            return _cmd_verify(args)
        return _cmd_bisect(args)
    except (ValueError, OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
