"""Deterministic re-execution of flight-recorder logs.

The recorded run's only sources of nondeterminism are the rng-drawn initial
configuration, the daemon's per-step selections, and the rng-consuming
scenario mutations -- all of which the log captures verbatim.  Replay
therefore needs no random stream at all: a :class:`ReplayDaemon` returns the
recorded selection of each step, mutations re-apply their recorded effects
through the scheduler's seams, and the live execution is asserted in
lockstep against the recorded step records and fingerprints.

Replay always runs on the single-process incremental
:class:`~repro.runtime.scheduler.Scheduler`; logs recorded from the sharded
or vectorized engines replay against it because the equivalence suite holds
every engine to bit-identical step streams.

The first mismatch is returned as a :class:`Divergence` -- the debugging
primitive behind ``repro-replay bisect`` -- rather than raised: a divergent
log is a *finding*, not a failure of the replay machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.api.engines import Engine, build_protocol, register_engine
from repro.api.spec import RunResult, RunSpec
from repro.errors import ReplayError
from repro.graphs import io as graph_io
from repro.obs.recorder import decode_states, decode_value, encode_states, fingerprint
from repro.replay.log import FlightLog, decoded_step_record
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import Daemon
from repro.runtime.observers import Observer
from repro.runtime.scheduler import Scheduler, StepRecord


class ReplayDaemon(Daemon):
    """A daemon that returns the recorded selection of each step.

    The scheduler's ``StepRecord.executed`` pairs are exactly the daemon's
    selection in selection order, so feeding them back reproduces the
    original scheduling decision for decision -- no rng involved.
    """

    name = "replay"

    def __init__(self) -> None:
        self._next: list[int] | None = None

    def arm(self, selection: Sequence[int]) -> None:
        self._next = list(selection)

    def reset(self) -> None:
        self._next = None

    def select(self, enabled: Sequence[int], step: int, rng: random.Random) -> list[int]:
        if self._next is None:
            raise ReplayError(
                f"replay daemon asked to select at step {step} with no recorded "
                f"selection armed (stepping a replay scheduler outside the log?)"
            )
        selection, self._next = self._next, None
        return selection


@dataclass(frozen=True)
class Divergence:
    """The first point where a live re-execution left the recorded log."""

    seq: int | None
    step: int | None
    reason: str
    details: tuple[str, ...] = ()

    def format(self) -> str:
        lines = [f"divergence at step {self.step} (log seq {self.seq}): {self.reason}"]
        lines.extend(f"  {detail}" for detail in self.details)
        return "\n".join(lines)


@dataclass
class ReplayReport:
    """Outcome of replaying one log against a live execution."""

    log_path: Path
    steps_replayed: int = 0
    mutations_applied: int = 0
    divergence: Divergence | None = None
    final_checked: bool = False
    final_ok: bool | None = None
    final_detail: str | None = None
    metrics_ok: bool | None = None

    @property
    def verified(self) -> bool:
        """Byte-identical replay: every step matched and the final state too."""
        return (
            self.divergence is None
            and self.final_ok is not False
            and self.metrics_ok is not False
        )

    def as_row(self) -> dict[str, object]:
        return {
            "converged": self.verified,
            "verified": self.verified,
            "steps_replayed": self.steps_replayed,
            "mutations_applied": self.mutations_applied,
            "divergence": self.divergence.format() if self.divergence else None,
            "divergence_step": self.divergence.step if self.divergence else None,
            "final_ok": self.final_ok,
            "metrics_ok": self.metrics_ok,
            "flight_log": str(self.log_path),
        }


def _record_diff(expected: StepRecord, live: StepRecord) -> list[str]:
    """Field-level explanation of two unequal step records."""
    details: list[str] = []
    if expected.step != live.step:
        details.append(f"step index: recorded {expected.step}, live {live.step}")
    if expected.round != live.round:
        details.append(f"round index: recorded {expected.round}, live {live.round}")
    if expected.executed != live.executed:
        details.append(
            f"executed: recorded {list(expected.executed)}, live {list(live.executed)}"
        )
    if expected.changed_nodes != live.changed_nodes:
        details.append(
            f"changed nodes: recorded {list(expected.changed_nodes)}, "
            f"live {list(live.changed_nodes)}"
        )
    expected_moves = {move.node: move for move in expected.moves}
    live_moves = {move.node: move for move in live.moves}
    for node in sorted(set(expected_moves) | set(live_moves)):
        recorded_move = expected_moves.get(node)
        live_move = live_moves.get(node)
        if recorded_move == live_move:
            continue
        if recorded_move is None or live_move is None:
            details.append(
                f"node {node}: move {'missing live' if live_move is None else 'not recorded'}"
            )
            continue
        if (recorded_move.action, recorded_move.layer) != (live_move.action, live_move.layer):
            details.append(
                f"node {node}: action recorded {recorded_move.action!r}"
                f"/{recorded_move.layer!r}, live {live_move.action!r}/{live_move.layer!r}"
            )
        variables = set(recorded_move.changes) | set(live_move.changes)
        for name in sorted(variables):
            recorded_change = recorded_move.changes.get(name)
            live_change = live_move.changes.get(name)
            if recorded_change != live_change:
                details.append(
                    f"node {node} variable {name!r}: recorded "
                    f"{recorded_change}, live {live_change}"
                )
    if not details:
        details.append("records differ in an unattributed field")
    return details


class ReplayRun:
    """Drives one log through a fresh scheduler in verified lockstep.

    ``protocol`` / ``network`` override the header's (needed for raw logs of
    substrate protocols whose names the canonical
    :func:`~repro.api.engines.build_protocol` cannot resolve).  ``observers``
    are attached to the replay scheduler, so a verification harness can
    capture the replayed :class:`~repro.runtime.scheduler.StepRecord` stream
    or metrics exactly as it would on a live run.
    """

    def __init__(
        self,
        log: "FlightLog | str | Path",
        protocol=None,
        network=None,
        observers: Sequence[Observer] = (),
    ) -> None:
        self.log = log if isinstance(log, FlightLog) else FlightLog.load(log)
        header = self.log.header
        self.network = network if network is not None else graph_io.from_dict(
            header["network"]
        )
        if protocol is None:
            name = header.get("protocol")
            try:
                from repro.campaign.grid import normalize_protocol

                protocol = build_protocol(normalize_protocol(str(name)))
            except Exception as exc:
                raise ReplayError(
                    f"cannot rebuild protocol {name!r} from the log header; "
                    f"pass protocol= explicitly (raw logs of substrate "
                    f"protocols need it)"
                ) from exc
        self.protocol = protocol
        self.daemon = ReplayDaemon()
        self.scheduler = Scheduler(
            self.network,
            self.protocol,
            daemon=self.daemon,
            configuration=Configuration(self.log.initial_states()),
            observers=observers,
        )
        frozen = self.log.initial_frozen()
        if frozen:
            self.scheduler.freeze(frozen)
        self.report = ReplayReport(log_path=self.log.path)

    # ------------------------------------------------------------------
    def run(self) -> ReplayReport:
        """Replay every entry; stop at (and report) the first divergence."""
        for entry in self.log.entries:
            kind = entry["type"]
            if kind == "step":
                divergence = self._replay_step(entry)
                if divergence is not None:
                    self.report.divergence = divergence
                    return self.report
            elif kind == "mutation":
                self._apply_mutation(entry)
                self.report.mutations_applied += 1
            # event / exchange / note / converged entries are observational.
        self._check_final()
        return self.report

    def _replay_step(self, entry: dict[str, Any]) -> Divergence | None:
        expected = decoded_step_record(entry)
        seq = entry.get("seq")
        selection = [node for node, _ in expected.executed]
        enabled = set(self.scheduler.enabled_nodes())
        missing = [node for node in selection if node not in enabled]
        if missing:
            return Divergence(
                seq=seq,
                step=expected.step,
                reason=(
                    f"recorded selection {selection} includes processors not "
                    f"enabled live: {missing}"
                ),
                details=(f"live enabled set: {sorted(enabled)}",),
            )
        self.daemon.arm(selection)
        live = self.scheduler.step()
        if live is None:
            return Divergence(
                seq=seq,
                step=expected.step,
                reason="no processor is enabled live but the log records a step",
            )
        if live != expected:
            return Divergence(
                seq=seq,
                step=expected.step,
                reason="live step record differs from the recorded one",
                details=tuple(_record_diff(expected, live)),
            )
        self.report.steps_replayed += 1
        return None

    def _apply_mutation(self, entry: dict[str, Any]) -> None:
        kind = entry.get("kind")
        scheduler = self.scheduler
        if kind == "freeze":
            scheduler.freeze(tuple(entry["nodes"]))
        elif kind == "unfreeze":
            scheduler.unfreeze(tuple(entry["nodes"]))
        elif kind == "set_configuration":
            scheduler.set_configuration(Configuration(decode_states(entry["config"])))
        elif kind == "set_network":
            network = graph_io.from_dict(entry["network"])
            # Apply the recorded post-change states instead of re-running the
            # rng-consuming reinitialization.
            scheduler.set_network(network, reinitialize=())
            for node, state in sorted(decode_states(entry["reinitialized"]).items()):
                scheduler.replace_node(node, state)
        elif kind == "set_daemon":
            # The recorded daemon's selections are in the step entries; the
            # replay daemon stays in place.  set_daemon touches no run state.
            pass
        elif kind == "replace_node":
            state = {
                name: decode_value(value) for name, value in entry["state"].items()
            }
            scheduler.replace_node(int(entry["node"]), state)
        else:
            raise ReplayError(
                f"unknown mutation kind {kind!r} at log seq {entry.get('seq')}"
            )

    def _check_final(self) -> None:
        final = self.log.final
        if final is None:
            return
        self.report.final_checked = True
        live_states = self.scheduler.configuration.to_dict()
        live_fp = fingerprint(encode_states(live_states))
        recorded_fp = final.get("fingerprint")
        self.report.final_ok = live_fp == recorded_fp
        if not self.report.final_ok:
            self.report.final_detail = (
                f"final configuration fingerprint mismatch: recorded "
                f"{recorded_fp}, live {live_fp}"
            )
        recorded_metrics = final.get("metrics")
        if recorded_metrics is not None:
            # Compare in encoded space: both sides went through the codec, so
            # equality is exact without risking a __repr__ decode error.
            from repro.obs.recorder import encode_value

            live = encode_value(self.scheduler.metrics.as_dict())
            self.report.metrics_ok = live == recorded_metrics


def replay_spec(path: "str | Path") -> RunSpec:
    """A ``scheduler-replay`` :class:`~repro.api.RunSpec` for a recorded log.

    Rebuilt from the log's recorded spec (raw logs without one cannot be
    turned into a spec -- replay them with :class:`ReplayRun` directly).
    Fields only other engines understand (scenario, shards, record) move out
    of the spec; the log itself carries everything replay needs.
    """
    log = FlightLog.load(path)
    spec = log.spec_dict
    if spec is None:
        raise ReplayError(
            f"{path} has no recorded RunSpec in its header; replay it "
            f"programmatically with repro.replay.ReplayRun"
        )
    return RunSpec(
        engine="scheduler-replay",
        protocol=str(spec.get("protocol", "dftno")),
        network=spec.get("network") or {},
        daemon=str(spec.get("daemon", "distributed")),
        seed=int(spec.get("seed", 0)),
        stop=spec.get("stop") or {},
        parameter=spec.get("parameter"),
        debug={"replay_log": str(path)},
    )


class ReplayEngine(Engine):
    """The ``scheduler-replay`` engine: verify a log through :func:`repro.api.run`.

    The log path travels in ``spec.debug["replay_log"]`` -- hash-excluded
    like every debug switch, because a replay checks a computation rather
    than performing a new one.  The row is a replay-verification row (see
    :meth:`ReplayReport.as_row`); the report object is the
    :class:`ReplayReport`.
    """

    name = "scheduler-replay"

    def execute(
        self,
        spec: RunSpec,
        observers: Sequence[Observer] = (),
        instrumentation=None,
    ) -> RunResult:
        path = (spec.debug or {}).get("replay_log")
        if not path:
            raise ReplayError(
                "the scheduler-replay engine needs the log path in "
                "spec.debug['replay_log'] (see repro.replay.replay_spec)"
            )
        run = ReplayRun(FlightLog.load(path), observers=observers)
        report = run.run()
        return RunResult(engine=self.name, spec=spec, row=report.as_row(), report=report)


# Importing this module registers the engine (repro.api.engines defers the
# import to avoid a cycle; see get_engine).
register_engine(ReplayEngine())


__all__ = [
    "Divergence",
    "ReplayDaemon",
    "ReplayEngine",
    "ReplayReport",
    "ReplayRun",
    "replay_spec",
]
