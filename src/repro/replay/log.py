"""Reading flight-recorder logs (the write side is :mod:`repro.obs.recorder`).

A :class:`FlightLog` is the parsed, validated form of one recorded run: the
header, the initial configuration, and the ordered entry stream.  Parsing is
strict about structure (a malformed line raises :class:`~repro.errors.ReplayError`
with its file:line position) but agnostic about content -- a *divergent* log
is perfectly readable; divergence is the replay engine's verdict, not the
parser's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ReplayError
from repro.obs.recorder import SCHEMA_VERSION, decode_states, decode_value


@dataclass
class FlightLog:
    """One parsed flight-recorder log."""

    path: Path
    header: dict[str, Any]
    init: dict[str, Any]
    entries: list[dict[str, Any]] = field(default_factory=list)
    final: dict[str, Any] | None = None

    @classmethod
    def load(cls, path: "str | Path") -> "FlightLog":
        """Parse ``path``; raises :class:`ReplayError` on structural damage."""
        path = Path(path)
        if not path.exists():
            raise ReplayError(f"flight log {path} does not exist")
        header: dict[str, Any] | None = None
        init: dict[str, Any] | None = None
        final: dict[str, Any] | None = None
        entries: list[dict[str, Any]] = []
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            raw = raw.strip()
            if not raw:
                continue
            try:
                entry = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ReplayError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(entry, dict) or "type" not in entry:
                raise ReplayError(f"{path}:{lineno}: entry without a type")
            kind = entry["type"]
            if kind == "header":
                if header is not None:
                    raise ReplayError(f"{path}:{lineno}: duplicate header")
                version = entry.get("version")
                if version != SCHEMA_VERSION:
                    raise ReplayError(
                        f"{path}:{lineno}: log schema version {version!r} is not "
                        f"the supported {SCHEMA_VERSION}"
                    )
                header = entry
            elif kind == "init":
                if header is None:
                    raise ReplayError(f"{path}:{lineno}: init before header")
                if init is not None:
                    raise ReplayError(f"{path}:{lineno}: duplicate init entry")
                init = entry
            elif kind == "final":
                final = entry
            else:
                entries.append(entry)
        if header is None:
            raise ReplayError(f"{path}: no header entry (not a flight log?)")
        if init is None:
            raise ReplayError(f"{path}: no init entry (truncated before step 0?)")
        return cls(path=path, header=header, init=init, entries=entries, final=final)

    # ------------------------------------------------------------------
    # Decoded views
    # ------------------------------------------------------------------
    def initial_states(self) -> dict[int, dict[str, Any]]:
        """The recorded initial configuration's states, exactly decoded."""
        return decode_states(self.init["config"])

    def initial_frozen(self) -> tuple[int, ...]:
        return tuple(self.init.get("frozen") or ())

    def final_states(self) -> "dict[int, dict[str, Any]] | None":
        if self.final is None or "config" not in self.final:
            return None
        return decode_states(self.final["config"])

    def steps(self) -> Iterator[dict[str, Any]]:
        """The ``step`` entries in order."""
        return (entry for entry in self.entries if entry["type"] == "step")

    def step_count(self) -> int:
        return sum(1 for _ in self.steps())

    @property
    def spec_dict(self) -> "dict[str, Any] | None":
        """The recorded :class:`~repro.api.RunSpec` dictionary, when present."""
        spec = self.header.get("spec")
        return dict(spec) if isinstance(spec, dict) else None

    def describe(self) -> str:
        """One-line human summary for CLI banners."""
        network = self.header.get("network") or {}
        parts = [
            f"protocol={self.header.get('protocol')}",
            f"daemon={self.header.get('daemon')}",
            f"n={network.get('num_nodes')}",
            f"entries={len(self.entries)}",
            f"steps={self.step_count()}",
        ]
        if self.header.get("engine"):
            parts.insert(0, f"engine={self.header['engine']}")
        return " ".join(str(part) for part in parts)


def decoded_step_record(entry: dict[str, Any]):
    """A log ``step`` entry as a live :class:`~repro.runtime.scheduler.StepRecord`.

    The decoded record compares equal (dataclass equality, which is what the
    equivalence suite uses between engines) to the record the original run
    produced -- that is the round-trip guarantee the value codec exists for.
    """
    from repro.runtime.scheduler import MoveRecord, StepRecord

    core = entry.get("core")
    if not isinstance(core, dict):
        raise ReplayError(f"step entry seq={entry.get('seq')} has no core blob")
    try:
        moves = tuple(
            MoveRecord(
                node=move["node"],
                action=move["action"],
                layer=move["layer"],
                changes={
                    name: (decode_value(pair[0]), decode_value(pair[1]))
                    for name, pair in move["changes"].items()
                },
            )
            for move in core["moves"]
        )
        return StepRecord(
            step=core["step"],
            round=core["round"],
            executed=tuple((node, action) for node, action in core["executed"]),
            changed_nodes=tuple(core["changed"]),
            moves=moves,
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise ReplayError(
            f"step entry seq={entry.get('seq')} is malformed: {exc!r}"
        ) from exc


__all__ = ["FlightLog", "decoded_step_record"]
