"""The shared-variable self-stabilization runtime (Chapter 2 of the thesis).

This package implements the execution model the paper's protocols are written
in:

* processors own *locally shared variables* that only they may write and that
  they and their neighbors may read (:mod:`~repro.runtime.variables`,
  :mod:`~repro.runtime.configuration`);
* programs are finite sets of *guarded actions* ``<label> :: <guard> -->
  <statement>`` executed atomically (:mod:`~repro.runtime.actions`,
  :mod:`~repro.runtime.protocol`);
* a *daemon* (scheduler adversary) selects, at each computation step, a
  non-empty set of enabled processors -- the distributed daemon of the paper,
  plus central, synchronous and adversarial variants, all with the weak
  fairness guarantee the paper assumes (:mod:`~repro.runtime.daemon`);
* the :class:`~repro.runtime.scheduler.Scheduler` drives executions, counts
  steps, moves and rounds, detects convergence to a legitimacy predicate and
  records traces (:mod:`~repro.runtime.scheduler`, :mod:`~repro.runtime.trace`,
  :mod:`~repro.runtime.metrics`);
* transient faults are modeled by starting from arbitrary configurations or by
  corrupting variables mid-execution (:mod:`~repro.runtime.faults`).
"""

from repro.runtime.variables import VariableSpec, int_variable, pointer_variable, map_variable, enum_variable
from repro.runtime.configuration import Configuration
from repro.runtime.actions import Action
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.composition import LayeredProtocol, HookedComposition, HookingLayer
from repro.runtime.daemon import (
    Daemon,
    CentralDaemon,
    SynchronousDaemon,
    DistributedDaemon,
    AdversarialDaemon,
    make_daemon,
)
from repro.runtime.scheduler import MoveRecord, Scheduler, RunResult, StepRecord
from repro.runtime.observers import (
    CallbackObserver,
    MetricsObserver,
    Observer,
    ProgressObserver,
    TraceObserver,
)
from repro.runtime.trace import Trace, TraceEvent
from repro.runtime.metrics import ExecutionMetrics, space_bits_per_node, space_summary
from repro.runtime.faults import random_configuration, corrupt_configuration, FaultInjector

__all__ = [
    "VariableSpec",
    "int_variable",
    "pointer_variable",
    "map_variable",
    "enum_variable",
    "Configuration",
    "Action",
    "ProcessorView",
    "Protocol",
    "LayeredProtocol",
    "HookedComposition",
    "HookingLayer",
    "Daemon",
    "CentralDaemon",
    "SynchronousDaemon",
    "DistributedDaemon",
    "AdversarialDaemon",
    "make_daemon",
    "Scheduler",
    "RunResult",
    "StepRecord",
    "MoveRecord",
    "Observer",
    "MetricsObserver",
    "TraceObserver",
    "ProgressObserver",
    "CallbackObserver",
    "Trace",
    "TraceEvent",
    "ExecutionMetrics",
    "space_bits_per_node",
    "space_summary",
    "random_configuration",
    "corrupt_configuration",
    "FaultInjector",
]
