"""Guarded actions (``<label> :: <guard> --> <statement>``)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.arrayview import ArrayView
    from repro.runtime.processor import ProcessorView

GuardFn = Callable[["ProcessorView"], bool]
StatementFn = Callable[["ProcessorView"], None]

# Batch kernels receive the struct-of-arrays view; guards return a boolean
# mask over all nodes, steps return ``{variable name: full-length value
# array}`` for the written columns.  Typed loosely so this module never
# imports numpy.
BatchGuardFn = Callable[["ArrayView"], Any]
BatchStepFn = Callable[["ArrayView", Any], "dict[str, Any]"]


@dataclass(frozen=True)
class Action:
    """One guarded action of a processor's program.

    Attributes
    ----------
    name:
        The action label (e.g. ``"Forward"``, ``"RN"``).  Labels are what hook
        compositions attach to and what traces report.
    guard:
        Boolean function of the processor's view (its own variables and its
        neighbors' variables).
    statement:
        Mutation of zero or more of the processor's *own* variables, applied
        through the view's ``write``; reads inside the statement see the
        writes already performed in the same atomic step.
    layer:
        Name of the protocol layer the action belongs to (for traces and
        move accounting of composed protocols).
    priority:
        Lower values run first when a processor has several enabled actions;
        protocols list error-correction rules before normal rules, matching
        the usual "rules are tried in order" reading of guarded-command
        programs.
    """

    name: str
    guard: GuardFn
    statement: StatementFn
    layer: str = ""
    priority: int = 0

    def enabled(self, view: "ProcessorView") -> bool:
        """Evaluate the guard against ``view``."""
        return bool(self.guard(view))

    def execute(self, view: "ProcessorView") -> None:
        """Run the statement against ``view`` (writes are collected by the view)."""
        self.statement(view)

    def with_extra_statement(self, extra: StatementFn, suffix: str = "+hook") -> "Action":
        """A copy of this action whose statement additionally runs ``extra``.

        Used by :class:`~repro.runtime.composition.HookedComposition` to let an
        upper layer piggy-back on a lower layer's action (e.g. DFTNO's
        ``Nodelabel`` macro running when the token-circulation ``Forward``
        action fires), preserving the single-atomic-step semantics the paper
        assumes.
        """

        base_statement = self.statement

        def combined(view: "ProcessorView") -> None:
            base_statement(view)
            extra(view)

        return replace(self, statement=combined, name=f"{self.name}{suffix}")


@dataclass(frozen=True)
class BatchAction:
    """A whole-array kernel mirroring one per-node :class:`Action`.

    Substrates may return these from ``Protocol.batch_actions(network)``; the
    vectorized scheduler uses them to evaluate guards and compute writes for
    *all* processors at once under the synchronous daemon, while every other
    execution path keeps using the per-node actions.  A kernel must compute
    exactly what its per-node twin computes -- the lockstep equivalence suite
    holds the vectorized engine to byte-identical step records.

    Attributes
    ----------
    name:
        Must equal the per-node action's label; the scheduler matches kernels
        to actions (and their priority order) by this name within the layer.
    guard:
        ``f(view) -> bool mask`` over all nodes: where the per-node guard
        holds on the begin-of-step configuration.
    step:
        ``f(view, mask) -> {variable: values}`` with full-length value
        columns for every written variable.  Only rows selected by the daemon
        are applied; the kernel may compute the rest speculatively.
    layer:
        The owning protocol layer (same role as on :class:`Action`).
    reads / writes:
        The variable names the kernel reads and writes.  Purely declarative
        -- ``repro-lint --kernels`` cross-checks them against the per-node
        action's statically extracted read/write sets (rule RL007).
    """

    name: str
    guard: BatchGuardFn
    step: BatchStepFn
    layer: str = ""
    reads: tuple = ()
    writes: tuple = ()


__all__ = [
    "Action",
    "BatchAction",
    "BatchGuardFn",
    "BatchStepFn",
    "GuardFn",
    "StatementFn",
]
