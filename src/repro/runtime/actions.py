"""Guarded actions (``<label> :: <guard> --> <statement>``)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.processor import ProcessorView

GuardFn = Callable[["ProcessorView"], bool]
StatementFn = Callable[["ProcessorView"], None]


@dataclass(frozen=True)
class Action:
    """One guarded action of a processor's program.

    Attributes
    ----------
    name:
        The action label (e.g. ``"Forward"``, ``"RN"``).  Labels are what hook
        compositions attach to and what traces report.
    guard:
        Boolean function of the processor's view (its own variables and its
        neighbors' variables).
    statement:
        Mutation of zero or more of the processor's *own* variables, applied
        through the view's ``write``; reads inside the statement see the
        writes already performed in the same atomic step.
    layer:
        Name of the protocol layer the action belongs to (for traces and
        move accounting of composed protocols).
    priority:
        Lower values run first when a processor has several enabled actions;
        protocols list error-correction rules before normal rules, matching
        the usual "rules are tried in order" reading of guarded-command
        programs.
    """

    name: str
    guard: GuardFn
    statement: StatementFn
    layer: str = ""
    priority: int = 0

    def enabled(self, view: "ProcessorView") -> bool:
        """Evaluate the guard against ``view``."""
        return bool(self.guard(view))

    def execute(self, view: "ProcessorView") -> None:
        """Run the statement against ``view`` (writes are collected by the view)."""
        self.statement(view)

    def with_extra_statement(self, extra: StatementFn, suffix: str = "+hook") -> "Action":
        """A copy of this action whose statement additionally runs ``extra``.

        Used by :class:`~repro.runtime.composition.HookedComposition` to let an
        upper layer piggy-back on a lower layer's action (e.g. DFTNO's
        ``Nodelabel`` macro running when the token-circulation ``Forward``
        action fires), preserving the single-atomic-step semantics the paper
        assumes.
        """

        base_statement = self.statement

        def combined(view: "ProcessorView") -> None:
            base_statement(view)
            extra(view)

        return replace(self, statement=combined, name=f"{self.name}{suffix}")


__all__ = ["Action", "GuardFn", "StatementFn"]
