"""Struct-of-arrays view of a :class:`~repro.runtime.configuration.Configuration`.

The dict-of-nodes configuration is the authoritative state everywhere in the
runtime; this module adds an *opt-in* columnar mirror of it -- one flat numpy
array per declared variable plus a CSR neighbor index -- which is what the
batch guard/action kernels of the vectorized engine
(:mod:`repro.runtime.vectorized`) operate on, and what the sharded engine's
shared-memory mirrors serialize through.

Coherence is watcher-driven: the view registers a change watcher on the
configuration, so every journal event (``set``, ``apply_writes``,
``replace_node``, ``mark_dirty`` -- every mutation path funnels through
``Configuration._journal``) marks the touched nodes pending, and the next
array access re-encodes exactly those nodes from the dict state.  Draining
the scheduler's dirty journal never blinds the view, because the watcher
stream is independent of the journal.

Encodings (all arrays are ``int64``):

* ``int``     -- the value itself;
* ``enum``    -- the index into the declaration's ``enum_values`` tuple;
* ``pointer`` -- the neighbor id, ``None`` as ``-1``;
* ``map``     -- an edge-indexed array: node ``p``'s per-neighbor map occupies
  the CSR slice ``indptr[p]:indptr[p+1]`` in port order.

A value outside its encoding (a non-integer, a negative pointer, an enum
value not in the declared tuple, a map whose keys are not exactly the
neighbors) raises :class:`ArrayViewUnsupported`; consumers treat that as
"this run cannot be vectorized" and fall back to per-node dispatch -- the
encoding is allowed to be partial, never allowed to be wrong.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.network import RootedNetwork
    from repro.runtime.configuration import Configuration
    from repro.runtime.protocol import Protocol

try:  # numpy is an optional extra (``pip install .[vectorized]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    _np = None

#: Whether numpy is importable in this environment.
HAVE_NUMPY = _np is not None

#: The numpy module (``None`` when :data:`HAVE_NUMPY` is false).  Kernels
#: reach it through ``ArrayView.np`` so they never import numpy themselves.
np = _np

#: Variable kinds the array encoding understands.
ENCODABLE_KINDS = ("int", "enum", "pointer", "map")


class ArrayViewUnsupported(ReproError):
    """The protocol or a stored value cannot be encoded into flat arrays."""


class NeighborIndex:
    """CSR adjacency of a :class:`~repro.graphs.network.RootedNetwork`.

    ``indices[indptr[p]:indptr[p+1]]`` lists ``p``'s neighbors in *port
    order* -- the order every protocol scans them -- so segment reductions
    (``np.minimum.reduceat`` and friends) reproduce first-in-port-order
    tie-breaking exactly.
    """

    __slots__ = ("n", "indptr", "indices", "degrees")

    def __init__(self, network: "RootedNetwork") -> None:
        if not HAVE_NUMPY:
            raise ArrayViewUnsupported("numpy is required for the CSR neighbor index")
        counts = [network.degree(node) for node in network.nodes()]
        self.n = network.n
        self.degrees = _np.asarray(counts, dtype=_np.int64)
        self.indptr = _np.zeros(network.n + 1, dtype=_np.int64)
        _np.cumsum(self.degrees, out=self.indptr[1:])
        flat: list[int] = []
        for node in network.nodes():
            flat.extend(network.neighbors(node))
        self.indices = _np.asarray(flat, dtype=_np.int64)

    def slice_of(self, node: int) -> slice:
        """The ``indices`` slice holding ``node``'s neighbors."""
        return slice(int(self.indptr[node]), int(self.indptr[node + 1]))


def _collect_specs(
    network: "RootedNetwork", protocol: "Protocol"
) -> dict[str, tuple[str, tuple]]:
    """``name -> (kind, enum_values)`` across all nodes, or raise.

    Every node must declare every variable with one consistent encodable
    kind; anything else (an unknown kind, per-node kind disagreement, a
    variable only some nodes own) makes whole-protocol columns meaningless.
    """
    table: dict[str, tuple[str, tuple]] = {}
    counts: dict[str, int] = {}
    for node in network.nodes():
        for spec in protocol.variables(network, node):
            if spec.kind not in ENCODABLE_KINDS:
                raise ArrayViewUnsupported(
                    f"variable {spec.name!r} has no encodable kind "
                    f"(got {spec.kind!r}); declare it through the "
                    f"int/enum/pointer/map variable factories"
                )
            key = (spec.kind, tuple(spec.enum_values))
            if table.setdefault(spec.name, key) != key:
                raise ArrayViewUnsupported(
                    f"variable {spec.name!r} is declared with different kinds "
                    f"on different processors"
                )
            counts[spec.name] = counts.get(spec.name, 0) + 1
    for name, count in counts.items():
        if count != network.n:
            raise ArrayViewUnsupported(
                f"variable {name!r} is declared on {count} of {network.n} "
                f"processors; array columns need it everywhere"
            )
    return table


def column_sizes(network: "RootedNetwork", protocol: "Protocol") -> dict[str, int]:
    """``name -> array length`` without building a view (shm pre-allocation).

    The sharded coordinator sizes its shared-memory segment *before* forking
    workers, so this computes the exact layout :class:`ArrayView` will demand
    of its ``buffers``: ``n`` entries per scalar column, one entry per
    directed edge (``2m``) for map columns.  Raises
    :class:`ArrayViewUnsupported` for protocols that cannot be encoded.
    """
    edge_slots = sum(network.degree(node) for node in network.nodes())
    return {
        name: edge_slots if kind == "map" else network.n
        for name, (kind, _values) in _collect_specs(network, protocol).items()
    }


class ArrayView:
    """A coherent columnar mirror of one configuration.

    Parameters
    ----------
    network / protocol / configuration:
        The run the view mirrors.  The protocol supplies the variable
        declarations (kinds come from the variable factories); the
        configuration is watched for changes.
    buffers:
        Optional pre-allocated ``{name: int64 array}`` backing storage (the
        sharded engine passes views over a ``multiprocessing.shared_memory``
        segment).  Arrays must have the exact per-kind length (``n`` for
        scalars, ``2m`` for maps); by default the view allocates its own.

    Use :meth:`detach` (or the context manager protocol) to unregister the
    configuration watcher when the view is abandoned.
    """

    def __init__(
        self,
        network: "RootedNetwork",
        protocol: "Protocol",
        configuration: "Configuration",
        buffers: Mapping[str, Any] | None = None,
    ) -> None:
        if not HAVE_NUMPY:
            raise ArrayViewUnsupported(
                "numpy is required for the struct-of-arrays view "
                "(pip install .[vectorized])"
            )
        self.network = network
        self.configuration = configuration
        self.index = NeighborIndex(network)
        self.np = _np
        self._kinds: dict[str, str] = {}
        self._enum_values: dict[str, tuple] = {}
        self._enum_codes: dict[str, dict] = {}
        self._arrays: dict[str, Any] = {}
        self._neighbors: tuple[tuple[int, ...], ...] = tuple(
            network.neighbors(node) for node in network.nodes()
        )
        for name, (kind, enum_values) in _collect_specs(network, protocol).items():
            self._kinds[name] = kind
            length = int(self.index.indptr[-1]) if kind == "map" else network.n
            if buffers is not None:
                array = buffers[name]
                if array.dtype != _np.int64 or array.shape != (length,):
                    raise ArrayViewUnsupported(
                        f"backing buffer for {name!r} must be int64[{length}]"
                    )
                self._arrays[name] = array
            else:
                self._arrays[name] = _np.zeros(length, dtype=_np.int64)
            if kind == "enum":
                self._enum_values[name] = enum_values
                try:
                    self._enum_codes[name] = {
                        value: code for code, value in enumerate(enum_values)
                    }
                except TypeError as exc:
                    raise ArrayViewUnsupported(
                        f"enum variable {name!r} has unhashable values"
                    ) from exc
        # node -> None (all variables) or a set of names awaiting re-encode.
        self._pending: dict[int, set[str] | None] = {
            node: None for node in network.nodes()
        }
        self._absorbing = False
        configuration.add_watcher(self._on_change)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variable_names(self) -> tuple[str, ...]:
        """The encoded variables, sorted."""
        return tuple(sorted(self._arrays))

    def kind_of(self, name: str) -> str:
        """The encoding kind of variable ``name``."""
        return self._kinds[name]

    def sizes(self) -> dict[str, int]:
        """``name -> array length`` (the shared-memory layout contract)."""
        return {name: int(array.shape[0]) for name, array in self._arrays.items()}

    # ------------------------------------------------------------------
    # Coherence machinery
    # ------------------------------------------------------------------
    def _on_change(self, node: int, variables: "tuple[str, ...] | None") -> None:
        if self._absorbing:
            return
        if variables is None:
            self._pending[node] = None
        else:
            names = self._pending.setdefault(node, set())
            if names is not None:
                names.update(variables)

    def detach(self) -> None:
        """Unregister the configuration watcher."""
        self.configuration.discard_watcher(self._on_change)

    def __enter__(self) -> "ArrayView":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def begin_absorb(self) -> None:
        """Ignore journal events until :meth:`end_absorb`.

        Used by the vectorized scheduler for the write-application window of
        its own fast-path step: it has already assigned the kernel's output
        arrays in bulk (:meth:`absorb_writes`), so re-encoding the identical
        values from the dict state would be pure per-node overhead.  Anything
        journaled outside that window still marks pending normally.
        """
        self._absorbing = True

    def end_absorb(self) -> None:
        """Resume watcher-driven pending tracking."""
        self._absorbing = False

    def absorb_writes(self, updates: Mapping[str, Any], nodes: Any) -> None:
        """Bulk-assign kernel output columns for ``nodes``.

        ``updates`` maps scalar variable names to full-length value arrays;
        only the ``nodes`` rows are taken.  Callers pair this with
        :meth:`begin_absorb`/:meth:`end_absorb` around the dict-state
        application of the *same* values.
        """
        for name, values in updates.items():
            self._arrays[name][nodes] = values[nodes]

    def sync(self) -> None:
        """Re-encode every pending node from the dict state."""
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        n = self.network.n
        states = self.configuration
        for node, names in pending.items():
            if not 0 <= node < n:
                continue  # foreign id journaled by hand-built state
            state = states.peek_state(node)
            targets = self._arrays if names is None else names
            for name in targets:
                if name not in self._arrays:
                    continue  # variable outside the declared schema
                if name not in state:
                    raise ArrayViewUnsupported(
                        f"variable {name!r} disappeared from processor {node}; "
                        f"the array view cannot represent partial states"
                    )
                self._encode(node, name, state[name])

    def _encode(self, node: int, name: str, value: Any) -> None:
        kind = self._kinds[name]
        if kind == "map":
            neighbors = self._neighbors[node]
            if not isinstance(value, dict) or len(value) != len(neighbors):
                raise ArrayViewUnsupported(
                    f"map variable {name!r} at {node} does not cover exactly "
                    f"the node's neighbors"
                )
            row = []
            for neighbor in neighbors:
                try:
                    entry = value[neighbor]
                except (KeyError, TypeError) as exc:
                    raise ArrayViewUnsupported(
                        f"map variable {name!r} at {node} is missing neighbor "
                        f"{neighbor}"
                    ) from exc
                if not isinstance(entry, int):
                    raise ArrayViewUnsupported(
                        f"map variable {name!r} at {node} holds a non-integer"
                    )
                row.append(entry)
            self._arrays[name][self.slice_of(node)] = row
            return
        if kind == "pointer":
            if value is None:
                code = -1
            elif isinstance(value, int) and value >= 0:
                code = value
            else:
                raise ArrayViewUnsupported(
                    f"pointer variable {name!r} at {node} holds {value!r}"
                )
        elif kind == "enum":
            try:
                code = self._enum_codes[name][value]
            except (KeyError, TypeError) as exc:
                raise ArrayViewUnsupported(
                    f"enum variable {name!r} at {node} holds undeclared value "
                    f"{value!r}"
                ) from exc
        else:  # int
            if not isinstance(value, int):
                raise ArrayViewUnsupported(
                    f"int variable {name!r} at {node} holds non-integer {value!r}"
                )
            code = value
        self._arrays[name][node] = code

    def slice_of(self, node: int) -> slice:
        """The edge-array slice of ``node`` (for ``map`` columns)."""
        return self.index.slice_of(node)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def array(self, name: str) -> Any:
        """The (synced) column of variable ``name``.

        Callers must treat the returned array as read-only; kernel outputs
        are separate arrays handed back through the scheduler.
        """
        self.sync()
        return self._arrays[name]

    def value_at(self, node: int, name: str) -> Any:
        """Decode one value back to its python form (tests, assertions)."""
        self.sync()
        return self._decode_one(node, name)

    def _decode_one(self, node: int, name: str) -> Any:
        kind = self._kinds[name]
        array = self._arrays[name]
        if kind == "map":
            row = array[self.slice_of(node)].tolist()
            return dict(zip(self._neighbors[node], row))
        code = int(array[node])
        if kind == "pointer":
            return None if code < 0 else code
        if kind == "enum":
            return self._enum_values[name][code]
        return code

    def decode_values(self, name: str, values: Any, nodes: Iterable[int]) -> list:
        """Decode ``values[node]`` for each node back to python values.

        ``values`` is a full-length scalar column (typically a kernel output,
        not necessarily ``self.array(name)``); ``map`` columns cannot be
        decoded this way.
        """
        kind = self._kinds[name]
        if kind == "map":
            raise ArrayViewUnsupported("map columns have no scalar decoding")
        nodes = _np.asarray(nodes, dtype=_np.int64)
        raw = values[nodes].tolist()
        if kind == "pointer":
            return [None if code < 0 else code for code in raw]
        if kind == "enum":
            enum_values = self._enum_values[name]
            return [enum_values[code] for code in raw]
        return raw

    def states_of(self, nodes: Sequence[int]) -> dict[int, dict[str, Any]]:
        """Decode whole local states (the shared-memory mirror read path)."""
        self.sync()
        return {
            node: {name: self._decode_one(node, name) for name in self._arrays}
            for node in nodes
        }

    def decode_node(self, node: int, names: Iterable[str]) -> dict[str, Any]:
        """Decode the named variables of one node (no sync: caller-managed)."""
        return {name: self._decode_one(node, name) for name in names}


__all__ = [
    "ArrayView",
    "ArrayViewUnsupported",
    "ENCODABLE_KINDS",
    "HAVE_NUMPY",
    "NeighborIndex",
    "column_sizes",
    "np",
]
