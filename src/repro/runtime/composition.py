"""Protocol composition.

The paper's two orientation protocols are *layered* on top of an underlying
protocol (depth-first token circulation for DFTNO, spanning-tree construction
for STNO): the upper layer reads the lower layer's variables but never writes
them, and the lower layer ignores the upper layer entirely.  This is the
classic fair/collateral composition of self-stabilizing protocols, and it is
what :class:`LayeredProtocol` implements.

DFTNO additionally attaches its ``Nodelabel`` and ``UpdateMax`` macros to the
*moments* the token moves: "``Forward(p) --> Nodelabel_p``" means the node
labels itself in the same atomic step in which it receives the token.
:class:`HookedComposition` supports exactly that: an upper
:class:`HookingLayer` can register extra statements on named actions of the
base layer; they run after the base statement inside the same atomic step.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import ProtocolError
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action, BatchAction, StatementFn
from repro.runtime.configuration import Configuration
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec


def _check_disjoint_variables(layers: Sequence[Protocol], network: RootedNetwork) -> None:
    for node in network.nodes():
        seen: dict[str, str] = {}
        for layer in layers:
            for spec in layer.variables(network, node):
                if spec.name in seen:
                    raise ProtocolError(
                        f"variable {spec.name!r} is declared by both layer {seen[spec.name]!r} "
                        f"and layer {layer.name!r} at processor {node}"
                    )
                seen[spec.name] = layer.name


class LayeredProtocol(Protocol):
    """Fair composition of protocol layers (lowest layer first).

    * variables are the union of the layers' variables (names must be
      disjoint);
    * the program of a processor is the concatenation of the layers' programs,
      lower layers first (so substrate error-correction runs before the upper
      layer reacts to it);
    * the composition is legitimate when every layer is legitimate.
    """

    def __init__(self, layers: Sequence[Protocol], name: str | None = None) -> None:
        if not layers:
            raise ProtocolError("a layered protocol needs at least one layer")
        self._layers = tuple(layers)
        self.name = name or "+".join(layer.name for layer in self._layers)

    def layers(self) -> tuple[Protocol, ...]:
        nested: list[Protocol] = []
        for layer in self._layers:
            nested.extend(layer.layers())
        return tuple(nested)

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        specs: list[VariableSpec] = []
        for layer in self._layers:
            specs.extend(layer.variables(network, node))
        return specs

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        actions: list[Action] = []
        for layer in self._layers:
            actions.extend(layer.actions(network, node))
        return actions

    def batch_actions(self, network: RootedNetwork) -> Sequence[BatchAction]:
        kernels: list[BatchAction] = []
        for layer in self._layers:
            kernels.extend(layer.batch_actions(network))
        return kernels

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        return all(layer.legitimate(network, configuration) for layer in self._layers)

    def validate(self, network: RootedNetwork) -> None:
        _check_disjoint_variables(self._layers, network)
        super().validate(network)


HookFn = Callable[..., None]


class HookingLayer(Protocol):
    """A protocol layer that can also piggy-back statements on a base layer.

    In addition to the usual :meth:`variables` / :meth:`actions` /
    :meth:`legitimate` interface, a hooking layer implements :meth:`hooks`,
    returning a mapping ``base action name -> statement`` for a given
    processor.  :class:`HookedComposition` splices those statements into the
    base layer's matching actions.
    """

    def hooks(self, network: RootedNetwork, node: int) -> Mapping[str, StatementFn]:
        """Extra statements keyed by the base-layer action name they extend."""
        return {}

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:  # pragma: no cover
        return []


class HookedComposition(Protocol):
    """Compose a base protocol with a :class:`HookingLayer` on top of it.

    The composed program of a processor consists of

    1. the base layer's actions, where any action named in the overlay's
       :meth:`~HookingLayer.hooks` has the hook statement appended (same
       atomic step, hook runs after the base statement and sees its writes);
    2. followed by the overlay's own stand-alone actions (e.g. DFTNO's edge
       relabeling rule).
    """

    def __init__(self, base: Protocol, overlay: HookingLayer, name: str | None = None) -> None:
        self._base = base
        self._overlay = overlay
        self.name = name or f"{overlay.name}@{base.name}"

    @property
    def base(self) -> Protocol:
        """The underlying protocol layer."""
        return self._base

    @property
    def overlay(self) -> HookingLayer:
        """The upper (hooking) protocol layer."""
        return self._overlay

    def layers(self) -> tuple[Protocol, ...]:
        return tuple(self._base.layers()) + tuple(self._overlay.layers())

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return list(self._base.variables(network, node)) + list(
            self._overlay.variables(network, node)
        )

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        hooks = dict(self._overlay.hooks(network, node))
        composed: list[Action] = []
        for action in self._base.actions(network, node):
            if action.name in hooks:
                composed.append(action.with_extra_statement(hooks[action.name], suffix=""))
            else:
                composed.append(action)
        composed.extend(self._overlay.actions(network, node))
        return composed

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        return self._base.legitimate(network, configuration) and self._overlay.legitimate(
            network, configuration
        )

    def validate(self, network: RootedNetwork) -> None:
        _check_disjoint_variables((self._base, self._overlay), network)
        for node in network.nodes():
            base_names = {action.name for action in self._base.actions(network, node)}
            for hooked_name in self._overlay.hooks(network, node):
                if hooked_name not in base_names:
                    raise ProtocolError(
                        f"layer {self._overlay.name!r} hooks unknown base action "
                        f"{hooked_name!r} at processor {node}"
                    )
        super().validate(network)


__all__ = ["LayeredProtocol", "HookingLayer", "HookedComposition"]
