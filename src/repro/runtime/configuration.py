"""Global configurations (the paper's product of processor states)."""

from __future__ import annotations

import copy
from typing import Any, Iterator, Mapping

from repro.errors import ProtocolError


class Configuration:
    """The state of the whole system: one variable assignment per processor.

    A configuration is a mapping ``node -> {variable name -> value}``.  The
    scheduler reads the configuration at the start of a computation step to
    evaluate guards, and applies the writes of all selected processors at the
    end of the step, which gives the composite-atomicity semantics of the
    paper's model (guard evaluation and statement execution of an action are a
    single atomic step).

    Every write path additionally journals *which processors' variables
    changed* (:meth:`drain_dirty`); the incremental scheduler consumes that
    journal to re-evaluate guards only around the changed nodes.  The journal
    is sound as long as all mutations go through the write methods below --
    mutating a value obtained from :meth:`get` in place bypasses it (the
    runtime never does: :class:`~repro.runtime.processor.ProcessorView`
    deep-copies on write).
    """

    __slots__ = ("_states", "_dirty", "_watchers")

    def __init__(self, states: Mapping[int, Mapping[str, Any]] | None = None) -> None:
        self._states: dict[int, dict[str, Any]] = {}
        # node -> changed variable names, or None when the whole local state
        # was replaced (a variable may have been *dropped*, so a name list
        # cannot describe the change).
        self._dirty: dict[int, set[str] | None] = {}
        # Change watchers (e.g. the struct-of-arrays view): called as
        # ``watcher(node, variables_or_None)`` on every journal event.  A
        # watcher keeps its own pending-set, so draining the journal (which
        # the scheduler does every step) never blinds it.
        self._watchers: list = []
        if states is not None:
            for node, variables in states.items():
                self._states[int(node)] = dict(variables)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, node: int, variable: str) -> Any:
        """Value of ``variable`` at ``node``."""
        try:
            return self._states[node][variable]
        except KeyError as exc:
            raise ProtocolError(
                f"configuration has no value for variable {variable!r} at processor {node}"
            ) from exc

    def state_of(self, node: int) -> dict[str, Any]:
        """A copy of the full local state of ``node``."""
        return copy.deepcopy(self._states.get(node, {}))

    def peek_state(self, node: int) -> Mapping[str, Any]:
        """The live local state of ``node`` -- **not** a copy.

        For read-only hot paths that cannot afford :meth:`state_of`'s deep
        copy, such as the sharded coordinator's frontier payloads (pickled
        straight onto a pipe, or shallow-copied by the receiving worker).
        Callers must never mutate the returned mapping or its values; the
        runtime itself never mutates stored values in place (writes always
        replace them), which is what makes sharing safe.
        """
        return self._states.get(node, {})

    def has(self, node: int, variable: str) -> bool:
        """Whether ``variable`` is defined at ``node``."""
        return variable in self._states.get(node, {})

    def nodes(self) -> Iterator[int]:
        """Processors that have at least one variable."""
        return iter(self._states)

    def variables_of(self, node: int) -> tuple[str, ...]:
        """Names of the variables defined at ``node``."""
        return tuple(self._states.get(node, {}))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def set(self, node: int, variable: str, value: Any) -> None:
        """Set ``variable`` at ``node`` (creating the slot if needed)."""
        state = self._states.setdefault(node, {})
        if variable not in state or state[variable] != value:
            self._journal(node, (variable,))
        state[variable] = value

    def _journal(self, node: int, variables: "tuple[str, ...] | None") -> None:
        """Record changed ``variables`` at ``node`` (``None``: whole state)."""
        if variables is None:
            self._dirty[node] = None
        else:
            names = self._dirty.setdefault(node, set())
            if names is not None:
                names.update(variables)
        if self._watchers:
            for watcher in self._watchers:
                watcher(node, variables)

    def add_watcher(self, watcher) -> None:
        """Register a ``watcher(node, variables_or_None)`` change callback.

        Watchers see every journal event as it happens, independently of the
        scheduler draining the journal; they must be cheap and must never
        mutate the configuration.
        """
        if watcher not in self._watchers:
            self._watchers.append(watcher)

    def discard_watcher(self, watcher) -> None:
        """Remove a previously registered watcher (no-op if absent)."""
        try:
            self._watchers.remove(watcher)
        except ValueError:
            pass

    def update_node(self, node: int, values: Mapping[str, Any]) -> None:
        """Apply several writes at ``node`` at once."""
        self.apply_writes(node, values)

    def apply_writes(self, node: int, values: Mapping[str, Any]) -> dict[str, tuple[Any, Any]]:
        """Apply writes at ``node`` and return ``variable -> (old, new)`` changes.

        ``old`` is ``None`` for a variable the write created, and such a write
        only counts as a change when the new value differs from ``None``
        (matching the scheduler's historical ``MoveRecord`` semantics).  The
        journal is stricter: creating a slot always marks the node dirty, so
        guards keyed on a variable's *existence* are re-evaluated.  This is
        the scheduler's single compare-journal-apply pass per move.
        """
        state = self._states.setdefault(node, {})
        changes: dict[str, tuple[Any, Any]] = {}
        touched: list[str] = []
        for name, value in values.items():
            if name not in state:
                touched.append(name)
                if value is not None:
                    changes[name] = (None, value)
            elif state[name] != value:
                touched.append(name)
                changes[name] = (state[name], value)
        state.update(values)
        if touched:
            self._journal(node, tuple(touched))
        return changes

    def replace_node(self, node: int, values: Mapping[str, Any]) -> None:
        """Replace the *whole* local state of ``node``.

        Unlike :meth:`update_node` this drops variables absent from
        ``values`` -- needed when a topology change alters which variables a
        processor's program declares (e.g. per-neighbor maps).
        """
        if self._states.get(node) != dict(values):
            self._journal(node, None)
        self._states[node] = dict(values)

    # ------------------------------------------------------------------
    # Change journal
    # ------------------------------------------------------------------
    def mark_dirty(self, nodes: "int | Any") -> None:
        """Journal ``nodes`` (an id or an iterable of ids) as changed.

        For callers that mutate state outside the write methods (none in this
        repository) or want to force guard re-evaluation around some nodes.
        An externally marked node is journaled as fully changed.
        """
        if isinstance(nodes, int):
            self._journal(nodes, None)
        else:
            for node in nodes:
                self._journal(node, None)

    @property
    def dirty_nodes(self) -> frozenset[int]:
        """Nodes with journaled changes not yet drained."""
        return frozenset(self._dirty)

    def drain_dirty(self) -> frozenset[int]:
        """Return the journaled changed nodes and clear the journal."""
        drained = frozenset(self._dirty)
        self._dirty.clear()
        return drained

    def drain_dirty_detail(self) -> dict[int, "frozenset[str] | None"]:
        """Per-node change detail: changed variable names, or ``None`` when
        the whole local state was replaced.  Clears the journal.

        The sharded coordinator consumes this to ship *deltas* across shard
        boundaries -- only the written variables of a step travel; a full
        state goes only where a ``replace_node`` (crash rejoin, topology
        reinitialization) genuinely replaced one.
        """
        drained = {
            node: (None if names is None else frozenset(names))
            for node, names in self._dirty.items()
        }
        self._dirty.clear()
        return drained

    # ------------------------------------------------------------------
    # Whole-configuration operations
    # ------------------------------------------------------------------
    def copy(self) -> "Configuration":
        """A deep copy (mutable values such as edge-label maps are duplicated)."""
        return Configuration(copy.deepcopy(self._states))

    def to_dict(self) -> dict[int, dict[str, Any]]:
        """A plain-dictionary snapshot (deep copied)."""
        return copy.deepcopy(self._states)

    def diff(self, other: "Configuration") -> dict[int, dict[str, tuple[Any, Any]]]:
        """Per-node ``variable -> (self value, other value)`` differences."""
        changed: dict[int, dict[str, tuple[Any, Any]]] = {}
        nodes = set(self._states) | set(other._states)
        for node in nodes:
            mine = self._states.get(node, {})
            theirs = other._states.get(node, {})
            names = set(mine) | set(theirs)
            for name in names:
                if mine.get(name) != theirs.get(name):
                    changed.setdefault(node, {})[name] = (mine.get(name), theirs.get(name))
        return changed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __repr__(self) -> str:
        return f"Configuration(nodes={len(self._states)})"

    def format(self, variables: tuple[str, ...] | None = None) -> str:
        """A readable multi-line rendering, optionally restricted to some variables."""
        lines = []
        for node in sorted(self._states):
            state = self._states[node]
            if variables is not None:
                state = {name: state[name] for name in variables if name in state}
            rendered = ", ".join(f"{name}={value!r}" for name, value in sorted(state.items()))
            lines.append(f"  {node}: {rendered}")
        return "\n".join(lines)


__all__ = ["Configuration"]
