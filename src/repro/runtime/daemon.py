"""Daemons: the scheduling adversaries of the self-stabilization model.

The paper assumes the *distributed daemon* with *weak fairness*: at each
computation step the daemon selects a non-empty subset of the enabled
processors (each executes at most one action), and a continuously enabled
processor is eventually selected.  This module provides that daemon plus the
other standard ones used in the literature and in our ablation experiment
(EXP-R2):

* :class:`CentralDaemon` -- exactly one enabled processor per step (the
  "serial" daemon); selection policy is random or round-robin.
* :class:`SynchronousDaemon` -- every enabled processor executes each step.
* :class:`DistributedDaemon` -- a random non-empty subset executes.
* :class:`AdversarialDaemon` -- a central daemon that tries to delay
  convergence by preferring the most recently enabled processor, while still
  honoring weak fairness through a bounded-bypass counter.

All daemons are deterministic functions of the supplied random generator, so
experiments are reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.errors import SchedulingError


class Daemon(ABC):
    """Selects which enabled processors execute in each computation step."""

    #: Human readable identifier used in experiment reports.
    name: str = "daemon"

    @abstractmethod
    def select(
        self,
        enabled: Sequence[int],
        step: int,
        rng: random.Random,
    ) -> list[int]:
        """Return the non-empty subset of ``enabled`` that executes this step.

        ``enabled`` is given in ascending processor order.  Implementations
        must return a non-empty subset (the scheduler verifies this).
        """

    def reset(self) -> None:
        """Forget any internal bookkeeping (called when a run starts)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CentralDaemon(Daemon):
    """The serial daemon: exactly one enabled processor executes per step.

    ``policy`` is either ``"random"`` (uniform choice) or ``"round_robin"``
    (cycle through processor identifiers), both weakly fair.
    """

    def __init__(self, policy: str = "random") -> None:
        if policy not in ("random", "round_robin"):
            raise SchedulingError(f"unknown central daemon policy {policy!r}")
        self.policy = policy
        self.name = f"central-{policy}"
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(self, enabled: Sequence[int], step: int, rng: random.Random) -> list[int]:
        if self.policy == "random":
            # ``enabled`` is already an (immutable) sequence; rng.choice
            # indexes it directly, so no per-step copy is made.
            return [rng.choice(enabled)]
        # Round-robin: pick the first enabled processor at or after the cursor
        # (the scheduler hands the enabled set over in ascending order).
        chosen = next((node for node in enabled if node >= self._cursor), enabled[0])
        self._cursor = chosen + 1
        return [chosen]


class SynchronousDaemon(Daemon):
    """Every enabled processor executes in every step (one round per step)."""

    name = "synchronous"

    def select(self, enabled: Sequence[int], step: int, rng: random.Random) -> list[int]:
        return list(enabled)


class DistributedDaemon(Daemon):
    """A random non-empty subset of the enabled processors executes.

    Each enabled processor is included independently with probability
    ``activation_probability``; if the coin flips exclude everyone, one
    processor is chosen uniformly so the step is never empty.
    """

    def __init__(self, activation_probability: float = 0.5) -> None:
        if not 0.0 < activation_probability <= 1.0:
            raise SchedulingError("activation_probability must lie in (0, 1]")
        self.activation_probability = activation_probability
        self.name = f"distributed-p{activation_probability:g}"

    def select(self, enabled: Sequence[int], step: int, rng: random.Random) -> list[int]:
        chosen = [node for node in enabled if rng.random() < self.activation_probability]
        if not chosen:
            chosen = [rng.choice(enabled)]
        return chosen


class AdversarialDaemon(Daemon):
    """A weakly fair central daemon that tries to slow convergence down.

    It prefers the processor that became enabled most recently (starving
    long-enabled processors as long as it legally can) but guarantees weak
    fairness: any processor that has been bypassed ``fairness_bound``
    consecutive times while enabled is selected unconditionally.
    """

    def __init__(self, fairness_bound: int = 8) -> None:
        if fairness_bound < 1:
            raise SchedulingError("fairness_bound must be >= 1")
        self.fairness_bound = fairness_bound
        self.name = f"adversarial-b{fairness_bound}"
        self._enabled_since: dict[int, int] = {}
        self._bypassed: dict[int, int] = {}

    def reset(self) -> None:
        self._enabled_since.clear()
        self._bypassed.clear()

    def select(self, enabled: Sequence[int], step: int, rng: random.Random) -> list[int]:
        enabled_set = set(enabled)
        # Forget processors that are no longer enabled; they restart their clock.
        for node in list(self._enabled_since):
            if node not in enabled_set:
                del self._enabled_since[node]
                self._bypassed.pop(node, None)
        for node in enabled_set:
            self._enabled_since.setdefault(node, step)
            self._bypassed.setdefault(node, 0)

        overdue = [node for node in enabled if self._bypassed[node] >= self.fairness_bound]
        if overdue:
            chosen = min(overdue, key=lambda node: self._enabled_since[node])
        else:
            # Most recently enabled first; tie-break with the random stream so
            # different seeds explore different adversarial schedules.
            latest = max(self._enabled_since[node] for node in enabled)
            candidates = [node for node in enabled if self._enabled_since[node] == latest]
            chosen = rng.choice(candidates)

        for node in enabled_set:
            if node != chosen:
                self._bypassed[node] += 1
        self._bypassed[chosen] = 0
        del self._enabled_since[chosen]
        return [chosen]


_DAEMONS: Mapping[str, type[Daemon]] = {
    "central": CentralDaemon,
    "synchronous": SynchronousDaemon,
    "distributed": DistributedDaemon,
    "adversarial": AdversarialDaemon,
}


def make_daemon(kind: str, **kwargs: object) -> Daemon:
    """Build a daemon by name (``central``, ``synchronous``, ``distributed``, ``adversarial``)."""
    try:
        factory = _DAEMONS[kind]
    except KeyError as exc:
        raise SchedulingError(f"unknown daemon kind {kind!r}; choose from {sorted(_DAEMONS)}") from exc
    return factory(**kwargs)  # type: ignore[arg-type]


__all__ = [
    "Daemon",
    "CentralDaemon",
    "SynchronousDaemon",
    "DistributedDaemon",
    "AdversarialDaemon",
    "make_daemon",
]
