"""Transient-fault modelling.

Self-stabilization (Definition 2.1.2) quantifies over *every* initial
configuration, which is the abstraction of transient faults: whatever a burst
of memory corruption leaves behind, the protocol recovers.  This module makes
that concrete for experiments:

* :func:`random_configuration` draws a fully arbitrary configuration from the
  protocol's variable domains (the worst case the definition allows);
* :func:`corrupt_configuration` perturbs an existing configuration at a chosen
  fraction of processors/variables (a "partial" fault);
* :class:`FaultInjector` applies corruption bursts to a running scheduler at
  chosen steps, for recovery experiments (EXP-R1) and the fault-recovery
  example application.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.network import RootedNetwork
from repro.runtime.configuration import Configuration
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler


def random_configuration(
    protocol: Protocol,
    network: RootedNetwork,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> Configuration:
    """An arbitrary configuration of ``protocol`` on ``network``."""
    return protocol.random_configuration(network, rng=rng, seed=seed)


def corrupt_configuration(
    configuration: Configuration,
    protocol: Protocol,
    network: RootedNetwork,
    node_fraction: float = 1.0,
    variable_fraction: float = 1.0,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> Configuration:
    """A copy of ``configuration`` with some variables replaced by arbitrary values.

    ``node_fraction`` of the processors are hit, chosen at random; at each hit
    processor, ``variable_fraction`` of its variables are replaced by fresh
    arbitrary values from their domains.  A *positive* fraction always hits at
    least one processor / variable (so tiny bursts are not silently rounded
    away), while a fraction of exactly ``0.0`` means **zero**: the returned
    configuration is an identical copy.
    """
    if not 0.0 <= node_fraction <= 1.0:
        raise ValueError("node_fraction must lie in [0, 1]")
    if not 0.0 <= variable_fraction <= 1.0:
        raise ValueError("variable_fraction must lie in [0, 1]")
    rng = rng or random.Random(seed)
    corrupted = configuration.copy()

    nodes = list(network.nodes())
    hit_count = _fraction_count(node_fraction, len(nodes))
    hit_nodes = rng.sample(nodes, hit_count) if hit_count else []

    for node in hit_nodes:
        arbitrary = protocol.random_state(network, node, rng)
        names = list(arbitrary)
        chosen_count = _fraction_count(variable_fraction, len(names))
        chosen = rng.sample(names, chosen_count) if chosen_count else []
        for name in chosen:
            corrupted.set(node, name, arbitrary[name])
    return corrupted


def _fraction_count(fraction: float, total: int) -> int:
    """How many of ``total`` items a fraction selects: 0.0 -> 0, else >= 1."""
    if fraction <= 0.0:
        return 0
    return max(1, round(fraction * total))


@dataclass
class FaultInjector:
    """Injects corruption bursts into a running :class:`Scheduler`.

    ``schedule`` maps step indices to ``(node_fraction, variable_fraction)``
    pairs; :meth:`maybe_inject` is called by the experiment loop after each
    step and applies the burst when its step arrives.
    """

    protocol: Protocol
    network: RootedNetwork
    schedule: dict[int, tuple[float, float]] = field(default_factory=dict)
    seed: int | None = None
    injected_at: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def maybe_inject(self, scheduler: Scheduler) -> bool:
        """Apply a scheduled burst if one is due at the scheduler's current step."""
        step = scheduler.steps_executed
        if step not in self.schedule or step in self.injected_at:
            return False
        node_fraction, variable_fraction = self.schedule[step]
        corrupted = corrupt_configuration(
            scheduler.configuration,
            self.protocol,
            self.network,
            node_fraction=node_fraction,
            variable_fraction=variable_fraction,
            rng=self._rng,
        )
        scheduler.set_configuration(corrupted)
        self.injected_at.append(step)
        return True


__all__ = ["random_configuration", "corrupt_configuration", "FaultInjector"]
