"""Execution and space metrics.

The paper states its results in three currencies:

* *steps* / *moves* -- DFTNO stabilizes in O(n) steps after the token layer;
* *rounds* -- the asynchronous round complexity used for STNO's O(h) bound;
* *bits of locally shared memory per processor* -- O(Delta * log N) for both
  orientation layers, plus the underlying protocol's own cost.

:class:`ExecutionMetrics` accumulates the first two during a run;
:func:`space_bits_per_node` and :func:`space_summary` compute the third
directly from the protocol's variable declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.graphs.network import RootedNetwork
from repro.runtime.protocol import Protocol


@dataclass
class ExecutionMetrics:
    """Counters accumulated by the scheduler during one execution."""

    steps: int = 0
    moves: int = 0
    rounds: int = 0
    moves_per_node: dict[int, int] = field(default_factory=dict)
    moves_per_action: dict[str, int] = field(default_factory=dict)
    moves_per_layer: dict[str, int] = field(default_factory=dict)

    def record_move(self, node: int, action: str, layer: str) -> None:
        """Account for one executed action."""
        self.moves += 1
        self.moves_per_node[node] = self.moves_per_node.get(node, 0) + 1
        self.moves_per_action[action] = self.moves_per_action.get(action, 0) + 1
        self.moves_per_layer[layer] = self.moves_per_layer.get(layer, 0) + 1

    def merge(self, other: "ExecutionMetrics") -> None:
        """Add another run's counters into this one (used by repeated trials)."""
        self.steps += other.steps
        self.moves += other.moves
        self.rounds += other.rounds
        for node, count in other.moves_per_node.items():
            self.moves_per_node[node] = self.moves_per_node.get(node, 0) + count
        for action, count in other.moves_per_action.items():
            self.moves_per_action[action] = self.moves_per_action.get(action, 0) + count
        for layer, count in other.moves_per_layer.items():
            self.moves_per_layer[layer] = self.moves_per_layer.get(layer, 0) + count

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for reports."""
        return {
            "steps": self.steps,
            "moves": self.moves,
            "rounds": self.rounds,
            "moves_per_node": dict(self.moves_per_node),
            "moves_per_action": dict(self.moves_per_action),
            "moves_per_layer": dict(self.moves_per_layer),
        }


def space_bits_per_node(protocol: Protocol, network: RootedNetwork) -> dict[int, int]:
    """Bits of locally shared memory each processor needs for ``protocol``."""
    return {node: protocol.space_bits(network, node) for node in network.nodes()}


def space_summary(protocol: Protocol, network: RootedNetwork) -> dict[str, object]:
    """Aggregate space report: totals, per-node maximum, and per-layer breakdown."""
    per_node = space_bits_per_node(protocol, network)
    per_layer: dict[str, dict[str, int]] = {}
    for layer in protocol.layers():
        layer_bits = {node: layer.space_bits(network, node) for node in network.nodes()}
        per_layer[layer.name] = {
            "total_bits": sum(layer_bits.values()),
            "max_bits_per_node": max(layer_bits.values()),
        }
    return {
        "protocol": protocol.name,
        "network": network.name,
        "n": network.n,
        "max_degree": network.max_degree,
        "total_bits": sum(per_node.values()),
        "max_bits_per_node": max(per_node.values()),
        "mean_bits_per_node": sum(per_node.values()) / network.n,
        "per_layer": per_layer,
    }


def theoretical_orientation_bits(network: RootedNetwork) -> int:
    """The paper's O(Delta * log N) orientation-layer bound, evaluated exactly.

    Used by EXP-T3 to compare measured space against the bound's shape:
    ``Delta * ceil(log2 N)`` for the edge labels plus ``2 * ceil(log2 N)`` for
    the node name and the auxiliary counter.
    """
    from repro.runtime.variables import bits_for_values

    log_n = bits_for_values(network.n)
    return network.max_degree * log_n + 2 * log_n


__all__ = [
    "ExecutionMetrics",
    "space_bits_per_node",
    "space_summary",
    "theoretical_orientation_bits",
]
