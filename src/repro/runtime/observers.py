"""Pluggable execution observers: the instrumentation seam of every engine.

Historically each consumer of the :class:`~repro.runtime.scheduler.Scheduler`
hard-wired its own bookkeeping -- the scheduler updated metrics and trace
inline, the scenario runner kept recovery records, experiments re-implemented
progress printing.  Observers replace that plumbing with one small protocol
shared by every execution engine (the daemon-step scheduler, the scenario
runner and the synchronous message-passing simulator):

* :meth:`Observer.on_step` -- after every computation step, with the
  :class:`~repro.runtime.scheduler.StepRecord` (whose ``moves`` carry the
  per-processor action, layer and variable changes);
* :meth:`Observer.on_round` -- whenever an asynchronous round (or a
  message-passing round) completes;
* :meth:`Observer.on_event` -- when a scenario event fires (the payload is
  the per-event recovery record);
* :meth:`Observer.on_converged` -- once, when the engine's stop condition is
  reached (legitimacy, quiescence, scenario completion).

The scheduler's own metrics and trace are themselves observers
(:class:`MetricsObserver`, :class:`TraceObserver`) registered by the
constructor, so ``scheduler.metrics`` / ``scheduler.trace`` keep working
unchanged while external observers plug into exactly the same stream.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable, Mapping, MutableSequence

from repro.runtime.metrics import ExecutionMetrics
from repro.runtime.trace import Trace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.scheduler import StepRecord


class ObserverFailureWarning(UserWarning):
    """An observer raised inside a notification hook and was disabled."""


def dispatch_safely(
    observers: MutableSequence[Observer], hook: str, source: Any, payload: Any
) -> None:
    """Notify every observer, isolating failures from the run.

    An observer whose hook raises must not corrupt the computation it is
    merely watching: the exception is converted to a single
    :class:`ObserverFailureWarning` and the observer is removed from
    ``observers`` in place, so it is never called again.  Control-flow
    exceptions (``KeyboardInterrupt`` and friends are not ``Exception``
    subclasses) still propagate.

    Every engine's notification loops route through this helper, so the
    fault-isolation contract is identical for the daemon-step scheduler, the
    scenario runner and the message-passing simulator.
    """
    failed: list[Observer] | None = None
    for observer in observers:
        try:
            getattr(observer, hook)(source, payload)
        except Exception as exc:
            warnings.warn(
                f"observer {type(observer).__name__} raised in {hook} and was "
                f"disabled for the rest of the run: {type(exc).__name__}: {exc}",
                ObserverFailureWarning,
                stacklevel=2,
            )
            if failed is None:
                failed = []
            failed.append(observer)
    if failed is not None:
        for observer in failed:
            try:
                observers.remove(observer)
            except ValueError:  # already removed (re-entrant dispatch)
                pass


class Observer:
    """Base class for execution observers; every hook is optional.

    ``source`` is the engine notifying the observer -- a ``Scheduler`` for
    step/round notifications in the shared-variable model, a
    ``SynchronousSimulator`` for message-passing rounds, a ``ScenarioRunner``
    context for scenario events.  Observers that only care about one engine
    kind can ignore it.
    """

    def on_run_start(self, source: Any, payload: Any) -> None:
        """The engine finished constructing its execution state.

        Dispatched once by the scheduler at the end of ``__init__``, before
        any step executes -- the only point where an observer can capture the
        *initial* configuration (the flight recorder does).  ``payload`` is
        currently ``None``.
        """

    def on_step(self, source: Any, record: "StepRecord") -> None:
        """One computation step was executed."""

    def on_round(self, source: Any, round_index: int) -> None:
        """Round ``round_index`` completed (asynchronous or message-passing)."""

    def on_event(self, source: Any, event: Any) -> None:
        """A scenario event fired; ``event`` is its recovery record."""

    def on_mutation(self, source: Any, mutation: Mapping[str, Any]) -> None:
        """Out-of-band state surgery happened between steps.

        ``mutation`` is a dictionary whose ``"kind"`` names the scheduler
        seam that fired -- ``set_configuration``, ``set_daemon``,
        ``set_network``, ``freeze``, ``unfreeze`` or ``replace_node`` -- with
        kind-specific payload entries.  Scenario events mutate exclusively
        through these seams, so an observer seeing every step *and* every
        mutation has the complete causal record of the execution.
        """

    def on_exchange(self, source: Any, exchange: Mapping[str, Any]) -> None:
        """One coordinator<->worker message exchange completed (sharded runs).

        Only dispatched to observers whose ``wants_exchanges`` attribute is
        truthy -- the exchange stream is per-message hot-path traffic, so the
        coordinator skips it entirely unless someone asked.  ``exchange``
        carries the command name, the shard index, payload sizes and
        Lamport-style causal stamps (see :mod:`repro.shard.coordinator`).
        """

    def on_converged(self, source: Any, result: Any) -> None:
        """The engine's stop condition was reached; ``result`` is its outcome."""


class MetricsObserver(Observer):
    """Accumulates :class:`~repro.runtime.metrics.ExecutionMetrics` from steps.

    This is what used to be the scheduler's inline ``record_move`` calls; the
    scheduler registers one instance by default and exposes its counters as
    ``scheduler.metrics``.
    """

    def __init__(self, metrics: ExecutionMetrics | None = None) -> None:
        self.metrics = metrics if metrics is not None else ExecutionMetrics()

    def on_step(self, source: Any, record: "StepRecord") -> None:
        for move in record.moves:
            self.metrics.record_move(move.node, move.action, move.layer)
        self.metrics.steps = record.step + 1

    def on_round(self, source: Any, round_index: int) -> None:
        self.metrics.rounds = round_index


class TraceObserver(Observer):
    """Records a :class:`~repro.runtime.trace.Trace` of every executed move.

    Registered by the scheduler when ``record_trace=True``; usable explicitly
    to trace any engine that emits step records.  ``max_records`` bounds the
    trace with a ring buffer (the newest ``max_records`` moves are retained,
    ``trace.dropped`` counts evictions), so long chaotic-phase runs can trace
    without unbounded growth; it takes precedence over the legacy ``limit``
    alias when both are given.
    """

    def __init__(
        self,
        limit: int | None = 100_000,
        trace: Trace | None = None,
        max_records: int | None = None,
    ) -> None:
        if trace is None:
            trace = Trace(limit=max_records if max_records is not None else limit)
        self.trace = trace

    def on_step(self, source: Any, record: "StepRecord") -> None:
        for move in record.moves:
            self.trace.record(
                TraceEvent(
                    step=record.step,
                    round=record.round,
                    node=move.node,
                    action=move.action,
                    layer=move.layer,
                    changes=dict(move.changes),
                )
            )


class ProgressObserver(Observer):
    """Periodic progress reporting: calls ``emit`` every ``every_steps`` steps.

    The default ``emit`` is :func:`print`; campaigns and long examples pass
    their own sink.  Also reports scenario events and convergence, so a silent
    multi-minute run stays legible.
    """

    def __init__(
        self,
        every_steps: int = 1_000,
        emit: Callable[[str], None] = print,
    ) -> None:
        if every_steps < 1:
            raise ValueError("every_steps must be >= 1")
        self.every_steps = every_steps
        self.emit = emit
        self.steps = 0
        self.rounds = 0

    def on_step(self, source: Any, record: "StepRecord") -> None:
        self.steps = record.step + 1
        if self.steps % self.every_steps == 0:
            self.emit(f"progress: {self.steps} steps, {self.rounds} rounds")

    def on_round(self, source: Any, round_index: int) -> None:
        self.rounds = round_index

    def on_event(self, source: Any, event: Any) -> None:
        kind = getattr(event, "kind", type(event).__name__)
        description = getattr(event, "description", "")
        self.emit(f"event: {kind} {description}".rstrip())

    def on_converged(self, source: Any, result: Any) -> None:
        self.emit(f"converged after {self.steps} steps, {self.rounds} rounds")


class CallbackObserver(Observer):
    """Adapter turning plain callables into an observer.

    >>> CallbackObserver(on_step=lambda source, record: counts.append(record))
    """

    def __init__(
        self,
        on_step: Callable[[Any, Any], None] | None = None,
        on_round: Callable[[Any, int], None] | None = None,
        on_event: Callable[[Any, Any], None] | None = None,
        on_converged: Callable[[Any, Any], None] | None = None,
    ) -> None:
        self._on_step = on_step
        self._on_round = on_round
        self._on_event = on_event
        self._on_converged = on_converged

    def on_step(self, source: Any, record: "StepRecord") -> None:
        if self._on_step is not None:
            self._on_step(source, record)

    def on_round(self, source: Any, round_index: int) -> None:
        if self._on_round is not None:
            self._on_round(source, round_index)

    def on_event(self, source: Any, event: Any) -> None:
        if self._on_event is not None:
            self._on_event(source, event)

    def on_converged(self, source: Any, result: Any) -> None:
        if self._on_converged is not None:
            self._on_converged(source, result)


__all__ = [
    "CallbackObserver",
    "MetricsObserver",
    "Observer",
    "ObserverFailureWarning",
    "ProgressObserver",
    "TraceObserver",
    "dispatch_safely",
]
