"""The read/write window a processor has onto the system state.

The model of Chapter 2 allows a processor to *read* its own variables and the
variables of its neighbors, and to *write* only its own variables.
:class:`ProcessorView` enforces exactly that: neighbor reads go to the
configuration snapshot taken at the beginning of the computation step, own
reads see writes already made during the same atomic step, and writes are
collected so the scheduler can apply the step atomically.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.errors import ProtocolError
from repro.graphs.network import RootedNetwork
from repro.runtime.configuration import Configuration


class _ReadTrackingConfiguration:
    """Debug-mode proxy recording every ``(node, variable)`` a view reads.

    Wrapping the configuration (rather than only instrumenting the view's
    read methods) means even code that reaches *around* the view's API --
    ``view._configuration.get(far_node, ...)`` in a sneaky guard -- still
    lands in the read log, so the locality tracker catches it.
    """

    __slots__ = ("_inner", "_log")

    def __init__(self, inner: Configuration, log: set) -> None:
        self._inner = inner
        self._log = log

    def get(self, node: int, variable: str) -> Any:
        self._log.add((node, variable))
        return self._inner.get(node, variable)

    def has(self, node: int, variable: str) -> bool:
        self._log.add((node, variable))
        return self._inner.has(node, variable)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class ProcessorView:
    """Restricted view of a :class:`Configuration` for one processor.

    With ``track_reads=True`` the view also records every ``(processor,
    variable)`` pair it read (:attr:`read_variables`, node-level rollup in
    :attr:`read_nodes`).  The incremental scheduler's debug mode uses this to
    assert the locality invariant its dirty-frontier propagation relies on: a
    guard's value may depend only on the node itself and its neighbors, so a
    change at ``p`` can only flip enabled-status inside ``N_p ∪ {p}``.  The
    variable granularity is what the sharded race checker and the
    guard-attribution of :class:`~repro.errors.GuardLocalityError` consume.
    """

    __slots__ = ("_node", "_network", "_configuration", "_writes", "_read_vars")

    def __init__(
        self,
        node: int,
        network: RootedNetwork,
        configuration: Configuration,
        track_reads: bool = False,
    ) -> None:
        self._node = node
        self._network = network
        self._writes: dict[str, Any] = {}
        self._read_vars: set[tuple[int, str]] | None = set() if track_reads else None
        if track_reads:
            configuration = _ReadTrackingConfiguration(configuration, self._read_vars)
        self._configuration = configuration

    # ------------------------------------------------------------------
    # Identity / topology helpers
    # ------------------------------------------------------------------
    @property
    def node(self) -> int:
        """The processor this view belongs to."""
        return self._node

    @property
    def network(self) -> RootedNetwork:
        """The network the processor lives in."""
        return self._network

    @property
    def is_root(self) -> bool:
        """Whether this processor is the distinguished root ``r``."""
        return self._network.is_root(self._node)

    @property
    def neighbors(self) -> tuple[int, ...]:
        """The processor's neighbors ``N_p`` in port order."""
        return self._network.neighbors(self._node)

    @property
    def degree(self) -> int:
        """The processor's degree ``Delta_p``."""
        return self._network.degree(self._node)

    def port(self, neighbor: int) -> int:
        """Local port number of ``neighbor``."""
        return self._network.port(self._node, neighbor)

    # ------------------------------------------------------------------
    # Reads and writes
    # ------------------------------------------------------------------
    def read(self, variable: str) -> Any:
        """Read one of the processor's own variables.

        Writes performed earlier in the same atomic step are visible, so a
        statement (or a composition hook running after it) sees the values it
        just assigned -- matching the sequential reading of the paper's
        macros.
        """
        if self._read_vars is not None:
            self._read_vars.add((self._node, variable))
        if variable in self._writes:
            return self._writes[variable]
        return self._configuration.get(self._node, variable)

    def read_pre(self, variable: str) -> Any:
        """Read one of the processor's own variables as of the *start* of the step.

        Unlike :meth:`read`, writes performed earlier in the same atomic step
        are ignored.  Composition hooks use this when they need the value a
        base action is about to overwrite (e.g. DFTNO's ``UpdateMax`` macro
        needs the descendant the token just returned from, before the token
        layer repoints its child variable).
        """
        if self._read_vars is not None:
            self._read_vars.add((self._node, variable))
        return self._configuration.get(self._node, variable)

    def read_neighbor(self, neighbor: int, variable: str) -> Any:
        """Read a variable owned by a neighboring processor.

        Neighbor reads always observe the configuration as it stood at the
        beginning of the step (composite atomicity: all processors selected in
        the same step read the old configuration).
        """
        if neighbor not in self._network.neighbor_set(self._node):
            raise ProtocolError(
                f"processor {self._node} tried to read non-neighbor {neighbor}"
            )
        if self._read_vars is not None:
            self._read_vars.add((neighbor, variable))
        return self._configuration.get(neighbor, variable)

    def try_read_neighbor(self, neighbor: int, variable: str, default: Any = None) -> Any:
        """Like :meth:`read_neighbor` but returning ``default`` when undefined."""
        if neighbor not in self._network.neighbor_set(self._node):
            raise ProtocolError(
                f"processor {self._node} tried to read non-neighbor {neighbor}"
            )
        if self._read_vars is not None:
            self._read_vars.add((neighbor, variable))
        if not self._configuration.has(neighbor, variable):
            return default
        return self._configuration.get(neighbor, variable)

    def write(self, variable: str, value: Any) -> None:
        """Assign one of the processor's own variables.

        Mutable values (per-neighbor maps) are copied so that later in-place
        modification by the caller cannot retroactively alter the step.
        """
        self._writes[variable] = copy.deepcopy(value)

    @property
    def pending_writes(self) -> dict[str, Any]:
        """The writes collected so far in this atomic step."""
        return dict(self._writes)

    @property
    def read_nodes(self) -> frozenset[int]:
        """Processors whose state was read (only tracked with ``track_reads``)."""
        return frozenset(node for node, _ in self._read_vars or ())

    @property
    def read_variables(self) -> frozenset[tuple[int, str]]:
        """``(processor, variable)`` pairs read (only tracked with ``track_reads``)."""
        return frozenset(self._read_vars or ())

    def __repr__(self) -> str:
        return f"ProcessorView(node={self._node}, writes={sorted(self._writes)})"


__all__ = ["ProcessorView"]
