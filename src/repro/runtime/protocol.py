"""Base class for distributed protocols written as guarded-action programs."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import ProtocolError
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action, BatchAction
from repro.runtime.configuration import Configuration
from repro.runtime.variables import VariableSpec


class Protocol(ABC):
    """A distributed protocol: per-processor variables and guarded actions.

    Subclasses describe, for every processor of a given network, which
    variables it owns (:meth:`variables`) and which guarded actions form its
    program (:meth:`actions`).  They also provide the protocol's *legitimacy
    predicate* (:meth:`legitimate`), which is what self-stabilization
    (Definition 2.1.2) is stated against.

    The base class derives everything the scheduler and the fault injector
    need from those three methods: clean and arbitrary configurations and the
    per-processor space cost in bits.
    """

    #: Short identifier used in traces, metrics and composition error messages.
    name: str = "protocol"

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abstractmethod
    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        """Variable declarations of ``node``'s program."""

    @abstractmethod
    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        """Guarded actions of ``node``'s program, in priority order."""

    @abstractmethod
    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Whether ``configuration`` satisfies the protocol's legitimacy predicate."""

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def variable_names(self, network: RootedNetwork, node: int) -> tuple[str, ...]:
        """Names of the variables ``node`` owns."""
        return tuple(spec.name for spec in self.variables(network, node))

    def initial_state(self, network: RootedNetwork, node: int) -> dict[str, object]:
        """The clean designed-for initial state of ``node`` (not relied upon)."""
        return {spec.name: spec.initial(network, node) for spec in self.variables(network, node)}

    def random_state(
        self, network: RootedNetwork, node: int, rng: random.Random
    ) -> dict[str, object]:
        """An arbitrary state of ``node`` drawn from each variable's domain."""
        return {spec.name: spec.random(network, node, rng) for spec in self.variables(network, node)}

    def initial_configuration(self, network: RootedNetwork) -> Configuration:
        """The clean initial configuration of the whole system."""
        return Configuration({node: self.initial_state(network, node) for node in network.nodes()})

    def random_configuration(
        self, network: RootedNetwork, rng: random.Random | None = None, seed: int | None = None
    ) -> Configuration:
        """An arbitrary configuration (models the aftermath of transient faults)."""
        if rng is None:
            rng = random.Random(seed)
        return Configuration(
            {node: self.random_state(network, node, rng) for node in network.nodes()}
        )

    def space_bits(self, network: RootedNetwork, node: int) -> int:
        """Total bits of locally shared memory ``node`` needs for this protocol."""
        return sum(spec.space_bits(network, node) for spec in self.variables(network, node))

    def batch_actions(self, network: RootedNetwork) -> Sequence[BatchAction]:
        """Whole-array kernels mirroring this protocol's per-node actions.

        Optional: the default (no kernels) simply keeps the protocol on the
        per-node dispatch path everywhere.  A protocol that returns kernels
        must cover *every* action of *every* node for the vectorized
        scheduler to engage its fast path; partial coverage falls back
        cleanly.  Composed protocols concatenate their layers' kernels
        (see :mod:`repro.runtime.composition`).
        """
        return ()

    def layers(self) -> tuple["Protocol", ...]:
        """The protocol layers this protocol is composed of (itself by default)."""
        return (self,)

    def validate(self, network: RootedNetwork) -> None:
        """Sanity-check the protocol definition against ``network``.

        Raises
        ------
        ProtocolError
            If a processor declares duplicate variable names or has no
            actions.  Called once by the scheduler before execution starts.
        """
        for node in network.nodes():
            names = [spec.name for spec in self.variables(network, node)]
            if len(names) != len(set(names)):
                raise ProtocolError(
                    f"protocol {self.name!r} declares duplicate variables at processor {node}: {names}"
                )
            if not list(self.actions(network, node)):
                raise ProtocolError(
                    f"protocol {self.name!r} defines no actions for processor {node}"
                )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["Protocol"]
