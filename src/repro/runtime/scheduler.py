"""The execution engine: computation steps, rounds, and convergence detection.

A *computation step* follows the paper's distributed-daemon semantics: the
daemon selects a non-empty subset of the enabled processors; each selected
processor atomically evaluates its first enabled action against the
configuration at the beginning of the step and its writes are applied at the
end of the step.

A *round* is the standard asynchronous round: the shortest suffix of the
execution in which every processor that was continuously enabled since the
beginning of the round has executed at least one action or has become
disabled.  Rounds are what the O(n) / O(h) stabilization bounds of the two
orientation protocols are measured in.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConvergenceError, GuardLocalityError, SchedulingError
from repro.graphs.network import RootedNetwork
from repro.obs.instrument import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    PHASE_ACTION_EXEC,
    PHASE_DAEMON_SELECT,
    PHASE_GUARD_EVAL,
    PHASE_OBSERVER_DISPATCH,
)
from repro.runtime.actions import Action
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import Daemon, DistributedDaemon
from repro.runtime.metrics import ExecutionMetrics
from repro.runtime.observers import MetricsObserver, Observer, TraceObserver, dispatch_safely
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.trace import Trace


def first_enabled_action(
    node: int,
    network: RootedNetwork,
    configuration: Configuration,
    actions: Sequence[Action],
    check_guard_locality: bool = False,
) -> Action | None:
    """The first action of ``node`` whose guard holds in ``configuration``.

    The single guard-evaluation primitive shared by the scheduler and the
    sharded execution workers (:mod:`repro.shard`), so both paths evaluate
    guards -- and enforce the guard-locality invariant in debug mode --
    identically.
    """
    if not check_guard_locality:
        view = ProcessorView(node, network, configuration)
        for action in actions:
            if action.enabled(view):
                return action
        return None
    # Debug path: diff the (node, variable) read log around each guard so a
    # violation is attributed to the exact action/layer/variable that tripped.
    view = ProcessorView(node, network, configuration, track_reads=True)
    allowed = set(network.neighbor_set(node))
    allowed.add(node)
    for action in actions:
        before = view.read_variables
        enabled = action.enabled(view)
        illegal = sorted(
            (source, name)
            for source, name in view.read_variables - before
            if source not in allowed
        )
        if illegal:
            reads = ", ".join(f"{name!r} of processor {source}" for source, name in illegal)
            raise GuardLocalityError(
                f"guard locality violated (RL004): guard of action {action.name!r} "
                f"(layer {action.layer!r}) on processor {node} read {reads} outside "
                f"its closed neighborhood {sorted(allowed)}",
                node=node,
                layer=action.layer,
                action=action.name,
                rule="RL004",
                reads=illegal,
            )
        if enabled:
            return action
    return None


@dataclass(frozen=True)
class MoveRecord:
    """One processor's move within a step: what executed and what it changed."""

    node: int
    action: str
    layer: str
    changes: Mapping[str, tuple[object, object]]  # variable -> (old, new)


@dataclass(frozen=True)
class StepRecord:
    """What happened during one computation step."""

    step: int
    round: int
    executed: tuple[tuple[int, str], ...]  # (node, action name) pairs
    changed_nodes: tuple[int, ...]
    moves: tuple[MoveRecord, ...] = ()


@dataclass
class RunResult:
    """Outcome of a (bounded) execution.

    Attributes
    ----------
    steps, moves, rounds:
        Totals over the executed portion.
    terminated:
        ``True`` when no action was enabled anymore (silent protocols).
    converged:
        ``True`` when the requested stop predicate (usually legitimacy) was
        reached.
    first_legitimate_step / first_legitimate_round:
        The step/round at which the protocol's legitimacy predicate first
        became true and then remained true until the end of the observed
        execution; ``None`` if it never did.
    configuration:
        The final configuration.
    metrics:
        Full per-node / per-action counters.
    trace:
        The recorded trace (``None`` unless tracing was requested).
    """

    steps: int
    moves: int
    rounds: int
    terminated: bool
    converged: bool
    first_legitimate_step: int | None
    first_legitimate_round: int | None
    configuration: Configuration
    metrics: ExecutionMetrics
    trace: Trace | None = None

    @property
    def stabilization_steps(self) -> int | None:
        """Alias for :attr:`first_legitimate_step` (readability in experiments)."""
        return self.first_legitimate_step

    @property
    def stabilization_rounds(self) -> int | None:
        """Alias for :attr:`first_legitimate_round`."""
        return self.first_legitimate_round


class Scheduler:
    """Drives a protocol on a network under a daemon.

    Parameters
    ----------
    network:
        The rooted network the protocol runs on.
    protocol:
        The protocol (possibly a layered composition).
    daemon:
        Scheduling adversary; defaults to the paper's distributed daemon.
    configuration:
        Starting configuration.  Defaults to an *arbitrary* configuration
        drawn from the variables' domains (the self-stabilization setting);
        pass ``protocol.initial_configuration(network)`` for a clean start.
    seed / rng:
        Randomness used by the daemon and by arbitrary initialization.
    record_trace:
        Whether to keep a :class:`~repro.runtime.trace.Trace` of every move.
    observers:
        Extra :class:`~repro.runtime.observers.Observer` instances notified of
        every step and completed round.  Metrics (and, with ``record_trace``,
        the trace) are themselves observers registered before these.
    incremental:
        With ``True`` (the default) the scheduler maintains a persistent
        enabled-set and re-evaluates guards only for the *dirty frontier* of
        each mutation -- the nodes whose variables changed plus their closed
        neighborhoods -- instead of rescanning all ``n`` processors per step.
        This is sound because a guard may read only its own node and its
        neighbors (:class:`~repro.runtime.processor.ProcessorView` enforces
        it), so results are bit-identical to ``incremental=False``, which
        keeps the historical full scan for differential testing (the
        ``scheduler-fullscan`` engine).
    check_guard_locality:
        Debug mode: track every configuration read during guard evaluation
        and raise :class:`~repro.errors.GuardLocalityError` (a
        :class:`~repro.errors.ProtocolError`, carrying the layer, action and
        offending variables) if a guard reads
        outside its closed neighborhood -- the invariant the incremental path
        relies on.  Defaults to the ``REPRO_DEBUG_GUARDS`` environment
        variable.
    instrumentation:
        An :class:`~repro.obs.Instrumentation` registry the step loop feeds
        with phase timers (guard-eval, daemon-select, action-exec,
        observer-dispatch), guard-evaluation counters, and dirty/enabled-set
        gauges.  Defaults to the shared no-op
        :data:`~repro.obs.NULL_INSTRUMENTATION`; the disabled path hoists its
        ``enabled`` flag once per call and skips all timing behind it.
    """

    #: The phase name :meth:`_refresh_enabled` attributes its time to; the
    #: sharded coordinator overrides its refresh with a frontier exchange and
    #: re-labels accordingly.
    _refresh_phase = PHASE_GUARD_EVAL

    def __init__(
        self,
        network: RootedNetwork,
        protocol: Protocol,
        daemon: Daemon | None = None,
        configuration: Configuration | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        record_trace: bool = False,
        trace_limit: int | None = 100_000,
        observers: Sequence[Observer] = (),
        incremental: bool = True,
        check_guard_locality: bool | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.daemon = daemon or DistributedDaemon()
        #: The daemon the run was configured with; :meth:`set_daemon` does not
        #: touch it, so scenario events can restore it after a switch.
        self.initial_daemon = self.daemon
        self.rng = rng or random.Random(seed)
        protocol.validate(network)
        self.daemon.reset()

        if configuration is None:
            configuration = protocol.random_configuration(network, rng=self.rng)
        self.configuration = configuration.copy()

        self._actions: dict[int, tuple[Action, ...]] = {
            node: tuple(protocol.actions(network, node)) for node in network.nodes()
        }
        # Metrics and trace are observers like any other; keeping them first in
        # the list preserves the historical update order (counters before any
        # external consumer sees the step).
        self._metrics_observer = MetricsObserver()
        self._trace_observer = TraceObserver(limit=trace_limit) if record_trace else None
        self._observers: list[Observer] = [self._metrics_observer]
        if self._trace_observer is not None:
            self._observers.append(self._trace_observer)
        self._observers.extend(observers)

        self._step_index = 0
        self._round_index = 0
        self._round_pending: set[int] | None = None
        self._frozen: set[int] = set()

        self._instr = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION

        self.incremental = incremental
        if check_guard_locality is None:
            check_guard_locality = bool(os.environ.get("REPRO_DEBUG_GUARDS"))
        self.check_guard_locality = check_guard_locality
        # The persistent enabled-set of the incremental path: node -> first
        # enabled action, for every node *ignoring* frozen status (freezing
        # does not touch guards, so keeping crashed nodes cached makes
        # freeze/unfreeze invalidation-free; the accessors filter them).
        self._enabled: dict[int, Action] = {}
        self._needs_full_rescan = True
        # Maintained sorted/immutable view of the non-frozen enabled nodes.
        # Steps used to re-sort the enabled-set (and daemons to copy it) every
        # step, which is what flattened the incremental core's win near ~5x in
        # BENCH_scheduler.json; the view is rebuilt only when enabled-set
        # *membership* (or the frozen set) actually changes.
        self._enabled_order: tuple[int, ...] | None = None
        self._enabled_members: frozenset[int] | None = None

        # The one point where an observer can still see the *initial*
        # configuration (the flight recorder captures it here).
        dispatch_safely(self._observers, "on_run_start", self, None)

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> ExecutionMetrics:
        """Per-run counters, accumulated by the built-in metrics observer."""
        return self._metrics_observer.metrics

    @property
    def trace(self) -> Trace | None:
        """The recorded trace, or ``None`` when tracing was not requested."""
        return self._trace_observer.trace if self._trace_observer is not None else None

    @property
    def observers(self) -> tuple[Observer, ...]:
        """Every registered observer (built-ins first)."""
        return tuple(self._observers)

    @property
    def instrumentation(self) -> Instrumentation:
        """The run's instrumentation registry (the shared no-op by default)."""
        return self._instr

    def add_observer(self, observer: Observer) -> None:
        """Register ``observer`` for subsequent step/round notifications."""
        self._observers.append(observer)

    def _notify_step(self, record: StepRecord) -> None:
        dispatch_safely(self._observers, "on_step", self, record)

    def _notify_mutation(self, kind: str, **payload: object) -> None:
        """Tell every observer about out-of-band state surgery.

        Mutations are rare (scenario events, test fixtures), so unlike the
        sharded exchange stream this always dispatches to the full observer
        list.
        """
        mutation = {"kind": kind}
        mutation.update(payload)
        dispatch_safely(self._observers, "on_mutation", self, mutation)

    def _notify_round(self, round_index: int) -> None:
        dispatch_safely(self._observers, "on_round", self, round_index)

    def notify_converged(self, result: object) -> None:
        """Tell every observer the run's stop condition was reached."""
        dispatch_safely(self._observers, "on_converged", self, result)

    # ------------------------------------------------------------------
    # Enabled actions
    # ------------------------------------------------------------------
    def enabled_actions(self) -> dict[int, Action]:
        """The first enabled action of every enabled processor.

        Frozen (crashed) processors are treated as disabled: whatever their
        guards evaluate to, the daemon never sees them.  On the incremental
        path this reads the maintained enabled-set (after folding in any
        journaled configuration changes); with ``incremental=False`` it is
        the historical full scan.
        """
        order, lookup, _ = self._enabled_view()
        return {node: lookup[node] for node in order}

    def _enabled_view(self) -> tuple[tuple[int, ...], Mapping[int, Action], frozenset[int]]:
        """The enabled set as ``(sorted order, node -> action, member set)``.

        The step loop's view of the enabled processors.  On the incremental
        path the order tuple and member set are maintained across steps and
        rebuilt only when membership changed, so neither the per-step sort nor
        the daemon's selection copies scale with the enabled count; the
        full-scan path keeps its historical rebuild-per-call behavior.
        """
        if self.incremental:
            self._refresh_enabled()
            if self._enabled_order is None:
                # The rebuild is enabled-set maintenance like the refresh
                # itself, so it books under the same phase.
                instr = self._instr
                timed = instr.enabled
                started = time.perf_counter() if timed else 0.0
                order = tuple(
                    sorted(node for node in self._enabled if node not in self._frozen)
                )
                self._enabled_order = order
                self._enabled_members = frozenset(order)
                if timed:
                    instr.phase_time(self._refresh_phase, time.perf_counter() - started)
            assert self._enabled_members is not None
            return self._enabled_order, self._enabled, self._enabled_members
        instr = self._instr
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        enabled: dict[int, Action] = {}
        for node in self.network.nodes():
            if node in self._frozen:
                continue
            action = self._first_enabled(node)
            if action is not None:
                enabled[node] = action
        order = tuple(enabled)  # network.nodes() iterates ascending
        if timed:
            instr.count("guards_evaluated", self.network.n - len(self._frozen))
            instr.phase_time(PHASE_GUARD_EVAL, time.perf_counter() - started)
        return order, enabled, frozenset(order)

    def enabled_nodes(self) -> tuple[int, ...]:
        """Identifiers of the processors with at least one enabled action."""
        return self._enabled_view()[0]

    def is_enabled(self, node: int) -> bool:
        """Whether ``node`` has an enabled action in the current configuration.

        Frozen (crashed) processors are never enabled, matching
        :meth:`enabled_actions`.  Always evaluates the guards directly, so it
        is correct on both the incremental and the full-scan path.
        """
        return node not in self._frozen and self._first_enabled(node) is not None

    def _first_enabled(self, node: int) -> Action | None:
        return first_enabled_action(
            node,
            self.network,
            self.configuration,
            self._actions[node],
            check_guard_locality=self.check_guard_locality,
        )

    def _invalidate_enabled(self) -> None:
        """Force a full guard rescan on the next enabled-set access."""
        self._needs_full_rescan = True
        self._invalidate_enabled_view()

    def _invalidate_enabled_view(self) -> None:
        """Drop the maintained sorted view (membership or frozen set changed)."""
        self._enabled_order = None
        self._enabled_members = None

    def _refresh_enabled(self) -> None:
        """Fold journaled configuration changes into the persistent enabled-set.

        The re-evaluated *dirty frontier* is the changed nodes plus their
        closed neighborhoods: a guard reads only its own node and its
        neighbors, so no other processor's enabled-status can have flipped.

        Attributes its own wall clock to the ``guard_eval`` phase (the
        sharded subclass re-labels it ``frontier_exchange``), so callers --
        including the nested re-check round bookkeeping performs -- never
        double-count it.
        """
        instr = self._instr
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        if self._needs_full_rescan:
            self.configuration.drain_dirty()
            self._enabled = {}
            for node in self.network.nodes():
                action = self._first_enabled(node)
                if action is not None:
                    self._enabled[node] = action
            self._needs_full_rescan = False
            self._invalidate_enabled_view()
            if timed:
                instr.count("guards_evaluated", self.network.n)
                instr.count("full_rescans")
                instr.phase_time(self._refresh_phase, time.perf_counter() - started)
            return
        dirty = self.configuration.drain_dirty()
        if not dirty:
            if timed:
                instr.phase_time(self._refresh_phase, time.perf_counter() - started)
            return
        frontier: set[int] = set()
        for node in dirty:
            if node not in self._actions:
                continue  # a foreign node id journaled by hand-built state
            frontier.add(node)
            frontier.update(self.network.neighbor_set(node))
        for node in frontier:
            action = self._first_enabled(node)
            if action is None:
                if self._enabled.pop(node, None) is not None:
                    self._invalidate_enabled_view()
            else:
                if node not in self._enabled:
                    self._invalidate_enabled_view()
                self._enabled[node] = action
        if timed:
            instr.count("guards_evaluated", len(frontier))
            instr.gauge("dirty_set_size", len(dirty))
            instr.gauge("frontier_size", len(frontier))
            instr.phase_time(self._refresh_phase, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> StepRecord | None:
        """Execute one computation step; ``None`` if no processor is enabled."""
        instr = self._instr
        timed = instr.enabled
        step_started = time.perf_counter() if timed else 0.0

        order, enabled, members = self._enabled_view()
        if not order:
            return None

        tracer = instr.tracer if timed else None
        if self._round_pending is None:
            self._round_pending = set(order)
            if tracer is not None:
                tracer.current_round = tracer.span(
                    "round", kind="round", parent=tracer.current_run, round=self._round_index
                )
        step_span = (
            tracer.span(
                "step",
                kind="step",
                parent=tracer.current_round or tracer.current_run,
                step=self._step_index,
            )
            if tracer is not None
            else None
        )

        if timed:
            instr.gauge("enabled_set_size", len(order))
            mark = time.perf_counter()
        selected = self.daemon.select(order, self._step_index, self.rng)
        if not selected:
            raise SchedulingError(f"daemon {self.daemon.name!r} selected an empty set")
        invalid = [node for node in selected if node not in members]
        if invalid:
            raise SchedulingError(
                f"daemon {self.daemon.name!r} selected processors that are not enabled: {invalid}"
            )
        if timed:
            now = time.perf_counter()
            instr.phase_time(PHASE_DAEMON_SELECT, now - mark)
            mark = now

        executed, pending_writes = self._execute_selected(enabled, selected)

        # Apply all writes after every selected processor has read the
        # beginning-of-step configuration (composite atomicity).  apply_writes
        # journals the changed nodes, which is what feeds the incremental
        # path's dirty frontier.
        changed_nodes: list[int] = []
        moves: list[MoveRecord] = []
        action_names = dict(executed)
        for node, writes in pending_writes.items():
            changes = self.configuration.apply_writes(node, writes)
            if changes:
                changed_nodes.append(node)
            moves.append(
                MoveRecord(
                    node=node,
                    action=action_names[node],
                    layer=enabled[node].layer,
                    changes=changes,
                )
            )

        record = StepRecord(
            step=self._step_index,
            round=self._round_index,
            executed=tuple(executed),
            changed_nodes=tuple(changed_nodes),
            moves=tuple(moves),
        )
        if timed:
            now = time.perf_counter()
            instr.phase_time(PHASE_ACTION_EXEC, now - mark)
            instr.gauge("selected_set_size", len(selected))

        self._step_index += 1
        completed_round = self._advance_round(set(selected))
        if timed:
            mark = time.perf_counter()
        self._notify_step(record)
        if completed_round is not None:
            self._notify_round(completed_round)
        if timed:
            now = time.perf_counter()
            instr.phase_time(PHASE_OBSERVER_DISPATCH, now - mark)
            instr.count("steps_timed")
            instr.count("step_seconds", now - step_started)
            instr.count("moves_executed", len(selected))
            if step_span is not None:
                step_span.annotate(selected=len(selected), changed=len(changed_nodes))
                step_span.close()
            if completed_round is not None and tracer is not None:
                round_span = tracer.current_round
                if round_span is not None:
                    round_span.annotate(completed=completed_round)
                    round_span.close()
                tracer.current_round = None
        return record

    def _execute_selected(
        self, enabled: Mapping[int, Action], selected: Sequence[int]
    ) -> tuple[list[tuple[int, str]], dict[int, dict[str, object]]]:
        """Run the selected processors' actions against the beginning-of-step
        configuration and collect their writes (not yet applied).

        The execution half of a computation step, separated so an alternative
        execution layer (the sharded engine fans it out to worker processes)
        can replace *how* actions run without touching daemon selection,
        write application, or round bookkeeping.  Returns the ``(node, action
        name)`` pairs and the per-node pending writes, both in selection
        order.
        """
        executed: list[tuple[int, str]] = []
        pending_writes: dict[int, dict[str, object]] = {}
        for node in selected:
            action = enabled[node]
            view = ProcessorView(node, self.network, self.configuration)
            action.execute(view)
            pending_writes[node] = view.pending_writes
            executed.append((node, action.name))
        return executed, pending_writes

    def _advance_round(self, executed_nodes: set[int]) -> int | None:
        """Round bookkeeping: a round ends when every processor that was
        enabled at its start has executed or become disabled.  Returns the
        just-completed round index, or ``None``."""
        if self._round_pending is None:
            return None
        self._round_pending -= executed_nodes
        if self._round_pending:
            self._round_pending &= self._enabled_view()[2]
        if not self._round_pending:
            self._round_index += 1
            self._round_pending = None
            return self._round_index
        return None

    # ------------------------------------------------------------------
    # Whole runs
    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int = 100_000,
        stop_predicate: Callable[["Scheduler"], bool] | None = None,
    ) -> RunResult:
        """Execute until termination, ``stop_predicate`` holds, or ``max_steps``.

        The returned :class:`RunResult` also reports the first step/round at
        which the protocol's legitimacy predicate became true and stayed true
        for the rest of the observed execution.
        """
        first_legitimate_step: int | None = None
        first_legitimate_round: int | None = None

        def note_legitimacy() -> None:
            nonlocal first_legitimate_step, first_legitimate_round
            if self.protocol.legitimate(self.network, self.configuration):
                if first_legitimate_step is None:
                    first_legitimate_step = self._step_index
                    first_legitimate_round = self._round_index
            else:
                first_legitimate_step = None
                first_legitimate_round = None

        note_legitimacy()
        converged = bool(stop_predicate and stop_predicate(self))
        terminated = False

        while not converged and self._step_index < max_steps:
            record = self.step()
            if record is None:
                terminated = True
                break
            note_legitimacy()
            if stop_predicate is not None and stop_predicate(self):
                converged = True

        if terminated:
            # A terminated (silent) execution trivially converged if legitimate.
            converged = converged or self.protocol.legitimate(self.network, self.configuration)

        return RunResult(
            steps=self._step_index,
            moves=self.metrics.moves,
            rounds=self._round_index,
            terminated=terminated,
            converged=converged,
            first_legitimate_step=first_legitimate_step,
            first_legitimate_round=first_legitimate_round,
            configuration=self.configuration.copy(),
            metrics=self.metrics,
            trace=self.trace,
        )

    def run_until_legitimate(
        self,
        max_steps: int = 100_000,
        confirm_steps: int = 0,
        raise_on_failure: bool = False,
    ) -> RunResult:
        """Run until the protocol's legitimacy predicate holds.

        ``confirm_steps`` additional steps are executed afterwards while
        checking that legitimacy *keeps* holding (an empirical closure check);
        if it is violated during confirmation the run keeps going until it
        becomes legitimate again or the budget runs out.
        """

        result = self.run(
            max_steps=max_steps,
            stop_predicate=lambda scheduler: scheduler.protocol.legitimate(
                scheduler.network, scheduler.configuration
            ),
        )
        if not result.converged:
            if raise_on_failure:
                raise ConvergenceError(
                    f"protocol {self.protocol.name!r} did not stabilize on {self.network.name} "
                    f"within {max_steps} steps",
                    steps=result.steps,
                )
            return result

        if confirm_steps > 0:
            stabilization_step = result.first_legitimate_step
            stabilization_round = result.first_legitimate_round
            terminated = result.terminated
            confirmed = 0
            while confirmed < confirm_steps and self._step_index < max_steps:
                record = self.step()
                if record is None:
                    terminated = True
                    break
                confirmed += 1
                if not self.protocol.legitimate(self.network, self.configuration):
                    # Closure violated: keep running until legitimate again.
                    inner = self.run(
                        max_steps=max_steps,
                        stop_predicate=lambda scheduler: scheduler.protocol.legitimate(
                            scheduler.network, scheduler.configuration
                        ),
                    )
                    stabilization_step = inner.first_legitimate_step
                    stabilization_round = inner.first_legitimate_round
                    terminated = terminated or inner.terminated
                    confirmed = 0
                    if not inner.converged:
                        if raise_on_failure:
                            raise ConvergenceError(
                                f"protocol {self.protocol.name!r} lost legitimacy and did not recover",
                                steps=self._step_index,
                            )
                        break
            result = RunResult(
                steps=self._step_index,
                moves=self.metrics.moves,
                rounds=self._round_index,
                terminated=terminated,
                converged=self.protocol.legitimate(self.network, self.configuration),
                first_legitimate_step=stabilization_step,
                first_legitimate_round=stabilization_round,
                configuration=self.configuration.copy(),
                metrics=self.metrics,
                trace=self.trace,
            )
        return result

    # ------------------------------------------------------------------
    # State manipulation (fault injection, dynamic networks)
    # ------------------------------------------------------------------
    def set_configuration(self, configuration: Configuration) -> None:
        """Replace the current configuration (e.g. after injecting faults).

        An arbitrary replacement may change any processor's state, so the
        whole enabled-set is invalidated.
        """
        self.configuration = configuration.copy()
        self._round_pending = None
        self._invalidate_enabled()
        self._notify_mutation("set_configuration", configuration=self.configuration)

    def set_daemon(self, daemon: Daemon) -> None:
        """Switch the scheduling adversary mid-run (daemon-switch scenarios).

        The new daemon starts with fresh bookkeeping; steps, rounds, metrics
        and the configuration are untouched.  Enabled-status depends only on
        the configuration, so the enabled-set stays valid.
        """
        daemon.reset()
        self.daemon = daemon
        self._notify_mutation("set_daemon", daemon=daemon.name)

    def set_network(
        self, network: RootedNetwork, reinitialize: Iterable[int] = ()
    ) -> None:
        """Replace the topology mid-run (dynamic-network scenarios).

        The new network must keep the processor count and the root: the
        processors survive, only links change.  Per-node action tables are
        rebuilt (guards capture port orders, which a link change shifts) and
        the processors in ``reinitialize`` -- typically the endpoints of the
        changed link -- have their whole local state redrawn arbitrarily from
        the protocol's domains on the *new* network, modelling the transient
        disruption a topology change inflicts on the processors that feel it.
        """
        if network.n != self.network.n:
            raise SchedulingError(
                f"dynamic network change cannot alter the processor count "
                f"({self.network.n} -> {network.n})"
            )
        if network.root != self.network.root:
            raise SchedulingError(
                f"dynamic network change cannot move the root "
                f"({self.network.root} -> {network.root})"
            )
        self.protocol.validate(network)
        self.network = network
        self._actions = {
            node: tuple(self.protocol.actions(network, node)) for node in network.nodes()
        }
        reinitialized = tuple(reinitialize)
        for node in reinitialized:
            self.configuration.replace_node(
                node, self.protocol.random_state(network, node, self.rng)
            )
        self._round_pending = None
        # New links mean new guard dependencies everywhere the port orders
        # shifted; rebuild the enabled-set from scratch.
        self._invalidate_enabled()
        # The redrawn states came from the rng, so the mutation payload must
        # carry them for a replay to reproduce the change without it.
        self._notify_mutation(
            "set_network",
            network=network,
            reinitialized={
                node: self.configuration.state_of(node) for node in reinitialized
            },
        )

    def freeze(self, nodes: Iterable[int]) -> None:
        """Crash ``nodes``: they stay disabled until :meth:`unfreeze`.

        The enabled-set keeps tracking frozen nodes (their guards are a pure
        function of the configuration, which freezing does not touch); the
        accessors simply stop reporting them, so no invalidation is needed.
        """
        frozen = tuple(nodes)
        for node in frozen:
            if not 0 <= node < self.network.n:
                raise SchedulingError(f"cannot freeze unknown processor {node}")
            self._frozen.add(node)
        self._round_pending = None
        self._invalidate_enabled_view()
        self._notify_mutation("freeze", nodes=tuple(sorted(frozen)))

    def unfreeze(self, nodes: Iterable[int]) -> None:
        """Let crashed ``nodes`` rejoin the computation."""
        thawed = tuple(nodes)
        self._frozen.difference_update(thawed)
        self._round_pending = None
        self._invalidate_enabled_view()
        self._notify_mutation("unfreeze", nodes=tuple(sorted(thawed)))

    def replace_node(self, node: int, values: Mapping[str, object]) -> None:
        """Overwrite one processor's whole local state (crash-rejoin events).

        Delegates to
        :meth:`~repro.runtime.configuration.Configuration.replace_node` -- the
        write is journaled, so the incremental enabled-set folds it in like
        any other dirty-frontier entry -- and notifies observers, which a
        direct ``scheduler.configuration.replace_node`` call would bypass.
        """
        self.configuration.replace_node(node, values)
        self._notify_mutation(
            "replace_node", node=node, state=self.configuration.state_of(node)
        )

    @property
    def frozen_nodes(self) -> frozenset[int]:
        """Processors currently crashed (excluded from daemon selection)."""
        return frozenset(self._frozen)

    @property
    def steps_executed(self) -> int:
        """Number of computation steps executed so far."""
        return self._step_index

    @property
    def rounds_completed(self) -> int:
        """Number of asynchronous rounds completed so far."""
        return self._round_index

    def __repr__(self) -> str:
        return (
            f"Scheduler(protocol={self.protocol.name!r}, network={self.network.name!r}, "
            f"daemon={self.daemon.name!r}, steps={self._step_index})"
        )


__all__ = [
    "MoveRecord",
    "Scheduler",
    "RunResult",
    "StepRecord",
    "first_enabled_action",
]
