"""Execution traces: what happened, at which step, at which processor."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One action execution.

    Attributes
    ----------
    step:
        Index of the computation step (0-based).
    round:
        Index of the asynchronous round the step belongs to (0-based).
    node:
        The processor that executed.
    action:
        The label of the executed action.
    layer:
        The protocol layer the action belongs to.
    changes:
        ``variable -> (old value, new value)`` for every variable the
        statement actually changed (no-op writes are dropped).
    """

    step: int
    round: int
    node: int
    action: str
    layer: str
    changes: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    def format(self) -> str:
        """One-line rendering used by example scripts and failure messages."""
        if self.changes:
            changed = ", ".join(
                f"{name}: {old!r} -> {new!r}" for name, (old, new) in sorted(self.changes.items())
            )
        else:
            changed = "(no state change)"
        return f"step {self.step:4d} round {self.round:3d}  p{self.node:<3d} {self.action:<24s} {changed}"


class Trace:
    """A bounded ring buffer of :class:`TraceEvent` records.

    ``limit`` caps memory use for long runs; when exceeded, the oldest events
    are discarded in O(1) (the buffer is a ``deque(maxlen=limit)``) and
    :attr:`dropped` counts how many were lost.
    """

    def __init__(self, limit: int | None = 100_000) -> None:
        self._events: deque[TraceEvent] = deque(maxlen=limit)
        self._limit = limit
        self._recorded = 0

    @property
    def limit(self) -> int | None:
        """The ring capacity (``None`` means unbounded)."""
        return self._limit

    @property
    def dropped(self) -> int:
        """How many of the recorded events the ring has evicted."""
        return self._recorded - len(self._events)

    def record(self, event: TraceEvent) -> None:
        """Append ``event``; the ring evicts the oldest entry beyond the limit."""
        self._events.append(event)
        self._recorded += 1

    def events(self) -> tuple[TraceEvent, ...]:
        """All retained events in execution order."""
        return tuple(self._events)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> tuple[TraceEvent, ...]:
        """Events satisfying ``predicate``."""
        return tuple(event for event in self._events if predicate(event))

    def for_node(self, node: int) -> tuple[TraceEvent, ...]:
        """Events executed by ``node``."""
        return self.filter(lambda event: event.node == node)

    def for_action(self, action: str) -> tuple[TraceEvent, ...]:
        """Events whose action label equals ``action``."""
        return self.filter(lambda event: event.action == action)

    def for_variable(self, variable: str) -> tuple[TraceEvent, ...]:
        """Events that changed ``variable``."""
        return self.filter(lambda event: variable in event.changes)

    def format(self, last: int | None = None) -> str:
        """Multi-line rendering of the (optionally last ``last``) events."""
        events = list(self._events)
        if last is not None:
            events = events[-last:]
        return "\n".join(event.format() for event in events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"Trace(events={len(self._events)}, dropped={self.dropped})"


__all__ = ["Trace", "TraceEvent"]
