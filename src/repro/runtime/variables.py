"""Declarations of the locally shared variables a protocol owns.

The paper measures protocols by the number of *bits* per processor
(O(Delta * log N) for both orientation algorithms), so every variable carries
a bit-cost function alongside its initial-value and arbitrary-value
constructors.  The arbitrary-value constructor is what models transient
faults: self-stabilization (Definition 2.1.2) demands convergence from *any*
assignment of the variables within their domains.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.graphs.network import RootedNetwork

InitialFn = Callable[[RootedNetwork, int], Any]
RandomFn = Callable[[RootedNetwork, int, random.Random], Any]
BitsFn = Callable[[RootedNetwork, int], int]


def bits_for_values(count: int) -> int:
    """Number of bits required to store one of ``count`` distinct values."""
    if count <= 1:
        return 0
    return int(math.ceil(math.log2(count)))


@dataclass(frozen=True)
class VariableSpec:
    """Description of one locally shared variable.

    Attributes
    ----------
    name:
        Variable identifier; must be unique inside a composed protocol stack.
    initial:
        ``f(network, node)`` returning the clean "designed" initial value.
        Self-stabilizing protocols do not rely on it (they must converge from
        arbitrary values), but it is convenient for isolation tests and for
        non-stabilizing baselines.
    random:
        ``f(network, node, rng)`` returning an arbitrary value from the
        variable's domain; used for fault injection.
    bits:
        ``f(network, node)`` returning the storage cost in bits at ``node``.
    description:
        Free-form documentation string surfaced in space reports.
    kind:
        Domain shape of the variable, used by the struct-of-arrays view
        (:mod:`repro.runtime.arrayview`) to encode values into flat numpy
        arrays: ``"int"`` (plain integer), ``"enum"`` (one of
        :attr:`enum_values`), ``"pointer"`` (a neighbor id or ``None``) or
        ``"map"`` (a per-neighbor ``{neighbor: int}`` map).  The factory
        helpers below fill it in; an empty string means "unknown shape" and
        makes the variable ineligible for array encoding (the vectorized
        engine then falls back to per-node dispatch).
    enum_values:
        For ``kind="enum"``: the ordered value tuple the array encoding
        indexes into.  Empty for every other kind.
    """

    name: str
    initial: InitialFn
    random: RandomFn
    bits: BitsFn
    description: str = ""
    kind: str = ""
    enum_values: tuple = ()

    def space_bits(self, network: RootedNetwork, node: int) -> int:
        """Bits used by this variable at ``node``."""
        return self.bits(network, node)


# ----------------------------------------------------------------------
# Factory helpers for the variable shapes used by the protocols
# ----------------------------------------------------------------------
def int_variable(
    name: str,
    low: int,
    high: Callable[[RootedNetwork, int], int] | int,
    initial: InitialFn | int = 0,
    description: str = "",
) -> VariableSpec:
    """An integer variable ranging over ``low .. high`` (inclusive).

    ``high`` may be a constant or a function of ``(network, node)`` -- e.g.
    node names range over ``0..N-1`` where ``N`` is the network size.
    """

    def high_value(network: RootedNetwork, node: int) -> int:
        return high(network, node) if callable(high) else high

    def initial_value(network: RootedNetwork, node: int) -> int:
        return initial(network, node) if callable(initial) else initial

    def random_value(network: RootedNetwork, node: int, rng: random.Random) -> int:
        return rng.randint(low, max(low, high_value(network, node)))

    def bit_cost(network: RootedNetwork, node: int) -> int:
        return bits_for_values(high_value(network, node) - low + 1)

    return VariableSpec(name, initial_value, random_value, bit_cost, description, kind="int")


def enum_variable(
    name: str,
    values: Sequence[Any],
    initial: Any = None,
    description: str = "",
) -> VariableSpec:
    """A variable taking one of a fixed, small set of symbolic values."""
    values = tuple(values)
    if not values:
        raise ValueError("enum_variable needs at least one value")
    default = values[0] if initial is None else initial

    return VariableSpec(
        name,
        lambda network, node: default,
        lambda network, node, rng: rng.choice(values),
        lambda network, node: bits_for_values(len(values)),
        description,
        kind="enum",
        enum_values=values,
    )


def pointer_variable(
    name: str,
    allow_none: bool = True,
    initial: InitialFn | None = None,
    description: str = "",
) -> VariableSpec:
    """A pointer to one of the node's neighbors (or ``None`` when allowed).

    Used for parent (``A_p``) and descendant (``D_p``) pointers.  Storage cost
    is ``log(Delta_p + 1)`` bits.
    """

    def initial_value(network: RootedNetwork, node: int) -> Any:
        if initial is not None:
            return initial(network, node)
        return None if allow_none else network.neighbors(node)[0]

    def random_value(network: RootedNetwork, node: int, rng: random.Random) -> Any:
        choices: list[Any] = list(network.neighbors(node))
        if allow_none:
            choices.append(None)
        return rng.choice(choices)

    def bit_cost(network: RootedNetwork, node: int) -> int:
        return bits_for_values(network.degree(node) + (1 if allow_none else 0))

    return VariableSpec(
        name, initial_value, random_value, bit_cost, description, kind="pointer"
    )


def map_variable(
    name: str,
    value_low: int,
    value_high: Callable[[RootedNetwork, int], int] | int,
    initial_value: int = 0,
    description: str = "",
) -> VariableSpec:
    """A per-neighbor map ``neighbor -> integer`` (e.g. edge labels ``pi_p``).

    Storage cost is ``Delta_p * log(range)`` bits, which is what drives the
    O(Delta * log N) space bound of both orientation protocols.
    """

    def high_value(network: RootedNetwork, node: int) -> int:
        return value_high(network, node) if callable(value_high) else value_high

    def initial(network: RootedNetwork, node: int) -> dict[int, int]:
        return {neighbor: initial_value for neighbor in network.neighbors(node)}

    def random_value(network: RootedNetwork, node: int, rng: random.Random) -> dict[int, int]:
        high = max(value_low, high_value(network, node))
        return {
            neighbor: rng.randint(value_low, high) for neighbor in network.neighbors(node)
        }

    def bit_cost(network: RootedNetwork, node: int) -> int:
        per_entry = bits_for_values(high_value(network, node) - value_low + 1)
        return network.degree(node) * per_entry

    return VariableSpec(name, initial, random_value, bit_cost, description, kind="map")


__all__ = [
    "VariableSpec",
    "bits_for_values",
    "int_variable",
    "enum_variable",
    "pointer_variable",
    "map_variable",
]
