"""Vectorized synchronous execution: batch kernels over the array view.

Under the synchronous daemon every enabled processor executes in every step
(``SynchronousDaemon.select`` returns the whole enabled set and does not
consume randomness), so guard evaluation and action execution are data
parallel across processors.  :class:`VectorizedScheduler` exploits that: when
a protocol registers :class:`~repro.runtime.actions.BatchAction` kernels
covering every per-node action, the scheduler evaluates all guards as boolean
masks and computes all writes as whole columns on the struct-of-arrays view
(:mod:`repro.runtime.arrayview`) instead of dispatching per processor.

Fidelity is structural, not best-effort: the scheduler only overrides the two
execution seams of the base class (:meth:`Scheduler._enabled_view` and
:meth:`Scheduler._execute_selected`), so daemon selection, composite-atomic
write application, step/round/move records, metrics, observers and
instrumentation all run the unmodified base code -- the vectorized engine is
held to byte-identical :class:`~repro.runtime.scheduler.StepRecord` streams
by the lockstep equivalence suite.

The fast path disengages -- permanently or per step -- whenever its
preconditions fail, falling back to the incremental per-node path:

* numpy missing, or the protocol's variables/values not array-encodable
  (:class:`~repro.runtime.arrayview.ArrayViewUnsupported`) -- permanent;
* kernels not covering every action of every node (e.g. a composed layer
  without kernels) -- permanent;
* a non-synchronous daemon (also mid-run via ``set_daemon``) -- per step;
* guard-locality debug tracking, which needs per-node views -- permanent.

The fallback is sound because coherence never depends on which path ran:
the array view tracks the configuration through a change watcher, and the
scheduler's dirty journal keeps accumulating during fast steps, so the
per-node incremental refresh sees every change when it takes over.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.graphs.network import RootedNetwork
from repro.runtime.actions import BatchAction
from repro.runtime.arrayview import ArrayView, ArrayViewUnsupported, HAVE_NUMPY
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import SynchronousDaemon
from repro.runtime.scheduler import Scheduler


class _KernelAction:
    """Stand-in the fast path hands the base step loop instead of an Action.

    The base class only touches ``.name`` and ``.layer`` of the mapping
    values it gets from ``_enabled_view`` (for step records and move
    attribution), so this is all a kernel needs to impersonate.
    """

    __slots__ = ("name", "layer")

    def __init__(self, name: str, layer: str) -> None:
        self.name = name
        self.layer = layer


class _KernelLookup(Mapping[int, _KernelAction]):
    """Lazy ``node -> _KernelAction`` mapping over the best-kernel array.

    Also the type marker :meth:`VectorizedScheduler._execute_selected` uses
    to recognize that the enabled view came from the fast path.
    """

    __slots__ = ("_best", "_actions")

    def __init__(self, best: Any, actions: "tuple[_KernelAction, ...]") -> None:
        self._best = best
        self._actions = actions

    def __getitem__(self, node: int) -> _KernelAction:
        kernel = int(self._best[node])
        if kernel < 0:
            raise KeyError(node)
        return self._actions[kernel]

    def __iter__(self):
        return iter(int(node) for node in (self._best >= 0).nonzero()[0])

    def __len__(self) -> int:
        return int((self._best >= 0).sum())


class VectorizedScheduler(Scheduler):
    """A :class:`~repro.runtime.scheduler.Scheduler` with a batch fast path.

    Accepts exactly the base constructor arguments; the vectorized machinery
    is set up lazily on the first step so construction stays cheap and a
    protocol without kernels costs nothing extra.

    Attributes
    ----------
    fast_steps:
        Number of steps executed through the batch kernels (tests assert the
        fast path actually engaged; the benchmark reports it).
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.fast_steps = 0
        self._vector_failed = not HAVE_NUMPY or self.check_guard_locality
        self._vector_setup_done = False
        self._view: ArrayView | None = None
        self._kernels: tuple[BatchAction, ...] = ()
        self._kernel_actions: tuple[_KernelAction, ...] = ()
        self._kernel_ranks: Any = None
        self._rank_beyond = 0
        self._vector_best: Any = None
        self._vector_masks: list[Any] = []
        self._absorbing = False

    # ------------------------------------------------------------------
    # Fast-path setup and teardown
    # ------------------------------------------------------------------
    @property
    def vector_active(self) -> bool:
        """Whether the batch fast path can serve steps right now."""
        return self._vector_ready() and isinstance(self.daemon, SynchronousDaemon)

    def _vector_ready(self) -> bool:
        if self._vector_failed:
            return False
        if not self._vector_setup_done:
            self._vector_setup()
        return not self._vector_failed

    def _vector_setup(self) -> None:
        """Build kernels, rank arrays and the array view; on any
        impossibility, mark the fast path permanently off."""
        self._vector_setup_done = True
        import numpy as np

        kernels = tuple(self.protocol.batch_actions(self.network))
        if not kernels:
            self._vector_failed = True
            return
        kernel_of = {
            (kernel.name, kernel.layer): index for index, kernel in enumerate(kernels)
        }
        n = self.network.n
        # rank[k, node]: position of kernel k's twin action in node's action
        # table (the per-node "first enabled action wins" priority), or
        # ``beyond`` where the node has no such action.
        beyond = max(len(actions) for actions in self._actions.values()) + 1
        ranks = np.full((len(kernels), n), beyond, dtype=np.int64)
        for node, actions in self._actions.items():
            for position, action in enumerate(actions):
                index = kernel_of.get((action.name, action.layer))
                if index is None:
                    # An action without a kernel twin: the batch path could
                    # miss enabled processors, so it must not run at all.
                    self._vector_failed = True
                    return
                if ranks[index, node] == beyond:
                    ranks[index, node] = position
        try:
            self._view = ArrayView(self.network, self.protocol, self.configuration)
        except ArrayViewUnsupported:
            self._vector_failed = True
            return
        self._kernels = kernels
        self._kernel_actions = tuple(
            _KernelAction(kernel.name, kernel.layer) for kernel in kernels
        )
        self._kernel_ranks = ranks
        self._rank_beyond = beyond

    def _vector_teardown(self, failed: bool = False) -> None:
        """Drop the vectorized machinery (topology/configuration replaced, or
        a mid-run encode failure proved the protocol unencodable)."""
        if self._view is not None:
            self._view.end_absorb()
            self._view.detach()
            self._view = None
        self._absorbing = False
        self._vector_setup_done = False
        self._kernels = ()
        self._kernel_actions = ()
        self._kernel_ranks = None
        self._vector_best = None
        self._vector_masks = []
        if failed:
            self._vector_failed = True

    # ------------------------------------------------------------------
    # Overridden execution seams
    # ------------------------------------------------------------------
    def _enabled_view(self):
        if self.vector_active:
            try:
                return self._vector_enabled_view()
            except ArrayViewUnsupported:
                # A stored value left the encodable domain (e.g. a scenario
                # injected something exotic): per-node dispatch from here on.
                self._vector_teardown(failed=True)
        return super()._enabled_view()

    def _vector_enabled_view(self):
        view = self._view
        assert view is not None
        if self._absorbing:  # defensive: a nested view computation mid-absorb
            view.end_absorb()
            self._absorbing = False
        view.sync()
        np = view.np
        n = self.network.n
        best_rank = np.full(n, self._rank_beyond, dtype=np.int64)
        best_kernel = np.full(n, -1, dtype=np.int64)
        masks: list[Any] = []
        for index, kernel in enumerate(self._kernels):
            mask = kernel.guard(view)
            masks.append(mask)
            rank = self._kernel_ranks[index]
            better = mask & (rank < best_rank)
            best_rank[better] = rank[better]
            best_kernel[better] = index
        if self._frozen:
            best_kernel[list(self._frozen)] = -1
        order = tuple(np.flatnonzero(best_kernel >= 0).tolist())
        self._vector_best = best_kernel
        self._vector_masks = masks
        return order, _KernelLookup(best_kernel, self._kernel_actions), frozenset(order)

    def _execute_selected(self, enabled, selected):
        if not isinstance(enabled, _KernelLookup):
            return super()._execute_selected(enabled, selected)
        view = self._view
        assert view is not None
        np = view.np
        best = self._vector_best
        sel = np.asarray(selected, dtype=np.int64)
        decoded: dict[int, dict[str, Any]] = {}
        # Every kernel's step must read the beginning-of-step arrays
        # (composite atomicity), so all outputs are computed before any
        # column is mutated.  Kernels return fresh arrays, never the view's
        # own columns, which is what makes the later absorption safe.
        plans: list[tuple[Any, dict[str, Any]]] = []
        for index, kernel in enumerate(self._kernels):
            nodes = sel[best[sel] == index]
            if nodes.size:
                plans.append((nodes, kernel.step(view, self._vector_masks[index])))
        for nodes, columns in plans:
            names = tuple(columns)
            per_name = [view.decode_values(name, columns[name], nodes) for name in names]
            # Keep the arrays coherent by bulk assignment now; the watcher is
            # then silenced for the apply loop (begin_absorb below), which
            # re-applies exactly these values to the dict state.
            view.absorb_writes(columns, nodes)
            for position, node in enumerate(nodes.tolist()):
                decoded[node] = {
                    name: values[position] for name, values in zip(names, per_name)
                }
        actions = self._kernel_actions
        executed = [(node, actions[best[node]].name) for node in selected]
        pending_writes = {node: decoded[node] for node in selected}
        view.begin_absorb()
        self._absorbing = True
        self.fast_steps += 1
        return executed, pending_writes

    def _advance_round(self, executed_nodes):
        # The base step calls this right after the write-application loop and
        # before observers run, which is exactly where the absorb window ends.
        if self._absorbing and self._view is not None:
            self._view.end_absorb()
            self._absorbing = False
        return super()._advance_round(executed_nodes)

    # ------------------------------------------------------------------
    # State manipulation: the view follows the configuration object
    # ------------------------------------------------------------------
    def set_configuration(self, configuration: Configuration) -> None:
        super().set_configuration(configuration)
        # The scheduler now owns a *new* Configuration copy; rebuild the view
        # (and its watcher registration) against it on the next fast step.
        self._vector_teardown()

    def set_network(self, network: RootedNetwork, reinitialize: Iterable[int] = ()) -> None:
        super().set_network(network, reinitialize=reinitialize)
        # New topology: CSR index, kernel closures and rank tables are stale.
        self._vector_teardown()


__all__ = ["VectorizedScheduler"]
