"""Declarative fault-injection and dynamic-network scenarios.

Self-stabilization quantifies over *every* transient fault; this package
makes the recovery claim measurable.  It has four layers, mirroring the
campaign engine's structure:

* :mod:`repro.scenarios.events` -- the event vocabulary: corruption bursts,
  crash/rejoin, link add/remove with endpoint re-randomization, daemon
  switches;
* :mod:`repro.scenarios.scenario` -- :class:`Scenario` /
  :class:`TimedEvent`: named, ordered, delay-separated compositions of
  events, declarative enough to sweep in campaign grids;
* :mod:`repro.scenarios.runner` -- :class:`ScenarioRunner`: executes a
  scenario against any protocol/daemon/topology through the existing
  :class:`~repro.runtime.scheduler.Scheduler` and reports per-event recovery
  metrics (:mod:`repro.analysis.recovery`);
* :mod:`repro.scenarios.library` -- the shipped named scenarios
  (``single_burst``, ``periodic_burst``, ``cascade``, ``churn``) behind a
  name registry.

Campaigns reach all of this through the ``scenario`` task type
(:mod:`repro.campaign.tasks`).
"""

from repro.scenarios.events import (
    CorruptionBurst,
    CrashRejoin,
    DaemonSwitch,
    EventOutcome,
    LinkChange,
    ScenarioEvent,
)
from repro.scenarios.library import (
    build_scenario,
    normalize_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import ORIENTATION_VARIABLES, ScenarioRunner, run_scenario
from repro.scenarios.scenario import Scenario, TimedEvent

__all__ = [
    "ORIENTATION_VARIABLES",
    "CorruptionBurst",
    "CrashRejoin",
    "DaemonSwitch",
    "EventOutcome",
    "LinkChange",
    "Scenario",
    "ScenarioEvent",
    "ScenarioRunner",
    "TimedEvent",
    "build_scenario",
    "normalize_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
