"""The event vocabulary of fault-injection and dynamic-network scenarios.

Each event is a small frozen dataclass -- a declarative description of one
perturbation -- with an :meth:`~ScenarioEvent.apply` method that performs it
against a running :class:`~repro.runtime.scheduler.Scheduler`:

* :class:`CorruptionBurst` -- replace a fraction of the shared variables at a
  fraction of the processors with arbitrary values (the transient fault of
  Definition 2.1.2 made concrete);
* :class:`CrashRejoin` -- crash the root, a leaf, or a random processor for a
  number of steps (it is unschedulable while down) and let it rejoin with an
  arbitrary local state (its memory did not survive);
* :class:`LinkChange` -- add or remove one link, keeping the network
  connected, and redraw the local state of the two endpoints from the
  protocol's domains on the new topology (their port orders, and possibly
  their variable domains, changed under them);
* :class:`DaemonSwitch` -- swap the scheduling adversary mid-run.

Events resolve their concrete targets (which processors, which link) only at
application time, from the run's random stream -- so one scenario object is
reusable across every network, protocol, daemon and seed of a campaign grid.

Every event mutates the run exclusively through the scheduler's journaled
mutation seams -- :meth:`~repro.runtime.scheduler.Scheduler.set_configuration`
and :meth:`~repro.runtime.scheduler.Scheduler.set_network` invalidate the
incremental enabled-set wholesale, while ``freeze``/``unfreeze`` and
:meth:`~repro.runtime.scheduler.Scheduler.replace_node` writes feed its
dirty frontier -- so the incremental scheduler core stays bit-identical
to the full scan under any scenario (the equivalence property test drives
every library scenario through both paths), and every mutation reaches the
observers' ``on_mutation`` hook, which is what makes a recorded scenario
execution replayable.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.graphs.network import RootedNetwork
from repro.runtime.daemon import make_daemon
from repro.runtime.faults import corrupt_configuration
from repro.runtime.scheduler import Scheduler


@dataclass(frozen=True)
class EventOutcome:
    """What applying an event actually did."""

    kind: str
    description: str
    affected_nodes: tuple[int, ...] = ()
    applied: bool = True
    steps_consumed: int = 0


class ScenarioEvent(ABC):
    """One perturbation a scenario can inflict on a running execution."""

    #: Stable identifier used for grouping in recovery aggregates.
    kind: str = "event"

    @abstractmethod
    def apply(self, scheduler: Scheduler, rng: random.Random) -> EventOutcome:
        """Perform the perturbation against ``scheduler``.

        Implementations may drive the scheduler themselves (a crash keeps the
        system running while the processor is down) and must report any steps
        they consumed in the returned outcome.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class CorruptionBurst(ScenarioEvent):
    """Corrupt ``variable_fraction`` of the variables at ``node_fraction`` of
    the processors with arbitrary values from their domains."""

    node_fraction: float = 1.0
    variable_fraction: float = 1.0
    kind = "corruption"

    def apply(self, scheduler: Scheduler, rng: random.Random) -> EventOutcome:
        before = scheduler.configuration
        corrupted = corrupt_configuration(
            before,
            scheduler.protocol,
            scheduler.network,
            node_fraction=self.node_fraction,
            variable_fraction=self.variable_fraction,
            rng=rng,
        )
        affected = tuple(sorted(before.diff(corrupted)))
        scheduler.set_configuration(corrupted)
        return EventOutcome(
            kind=self.kind,
            description=(
                f"corrupt {self.node_fraction:.0%} of processors "
                f"({self.variable_fraction:.0%} of their variables)"
            ),
            affected_nodes=affected,
        )


@dataclass(frozen=True)
class CrashRejoin(ScenarioEvent):
    """Crash one processor for ``downtime_steps`` steps, then rejoin it.

    ``target`` selects the victim: ``"root"``, ``"leaf"`` (a random
    degree-one processor; falls back to a random non-root one on leafless
    networks) or ``"random"`` (any non-root processor; the root on a
    single-processor network).  While down the processor is frozen -- the
    daemon cannot select it, but its neighbors keep reading its last-written
    variables, exactly like a stalled processor in the shared-variable model.
    On rejoin its local state is redrawn arbitrarily: crashes do not preserve
    memory, which is precisely the transient fault the protocols claim to
    absorb.
    """

    target: str = "random"
    downtime_steps: int = 10
    kind = "crash"

    def __post_init__(self) -> None:
        if self.target not in ("root", "leaf", "random"):
            raise ValueError(
                f"unknown crash target {self.target!r}; choose root, leaf or random"
            )
        if self.downtime_steps < 0:
            raise ValueError("downtime_steps must be >= 0")

    def _pick_victim(self, network: RootedNetwork, rng: random.Random) -> int:
        if self.target == "root":
            return network.root
        non_root = [node for node in network.nodes() if node != network.root]
        if not non_root:
            return network.root
        if self.target == "leaf":
            leaves = [node for node in non_root if network.degree(node) == 1]
            if leaves:
                return rng.choice(leaves)
        return rng.choice(non_root)

    def apply(self, scheduler: Scheduler, rng: random.Random) -> EventOutcome:
        victim = self._pick_victim(scheduler.network, rng)
        scheduler.freeze((victim,))
        consumed = 0
        try:
            for _ in range(self.downtime_steps):
                if scheduler.step() is None:
                    break  # everyone else is disabled; the wait is over early
                consumed += 1
        finally:
            scheduler.unfreeze((victim,))
        scheduler.replace_node(
            victim, scheduler.protocol.random_state(scheduler.network, victim, rng)
        )
        return EventOutcome(
            kind=self.kind,
            description=(
                f"crash {self.target} processor {victim} for {consumed} steps, "
                f"rejoin with arbitrary state"
            ),
            affected_nodes=(victim,),
            steps_consumed=consumed,
        )


@dataclass(frozen=True)
class MultiCrash(ScenarioEvent):
    """Crash a whole *set* of processors simultaneously, then rejoin them all.

    The correlated-failure counterpart of :class:`CrashRejoin`: a rack loss,
    a partition-wide power event.  ``fraction`` of the processors (at least
    one; the root only with ``include_root``) freeze in the same instant,
    stay down together for ``downtime_steps`` steps while the survivors keep
    executing against their last-written variables, and rejoin *in one
    event* with arbitrarily redrawn local states -- the multi-node transient
    fault the protocols claim to absorb.

    On the sharded engine the victim set typically spans several blocks:
    freezing is coordinator-side daemon bookkeeping, and every rejoin state
    lands in the journaled configuration, so each redrawn node is routed to
    exactly its owning and ghosting shards like any other dirty-frontier
    entry.
    """

    fraction: float = 0.3
    downtime_steps: int = 10
    include_root: bool = False
    kind = "multi_crash"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        if self.downtime_steps < 0:
            raise ValueError("downtime_steps must be >= 0")

    def _pick_victims(self, network: RootedNetwork, rng: random.Random) -> tuple[int, ...]:
        pool = [
            node
            for node in network.nodes()
            if self.include_root or node != network.root
        ]
        if not pool:
            pool = [network.root]
        count = max(1, round(self.fraction * len(pool)))
        count = min(count, len(pool))
        return tuple(sorted(rng.sample(pool, count)))

    def apply(self, scheduler: Scheduler, rng: random.Random) -> EventOutcome:
        victims = self._pick_victims(scheduler.network, rng)
        scheduler.freeze(victims)
        consumed = 0
        try:
            for _ in range(self.downtime_steps):
                if scheduler.step() is None:
                    break  # every survivor is disabled; the wait is over early
                consumed += 1
        finally:
            scheduler.unfreeze(victims)
        for victim in victims:
            scheduler.replace_node(
                victim, scheduler.protocol.random_state(scheduler.network, victim, rng)
            )
        return EventOutcome(
            kind=self.kind,
            description=(
                f"crash {len(victims)} processors {list(victims)} for {consumed} "
                f"steps, rejoin all with arbitrary state"
            ),
            affected_nodes=victims,
            steps_consumed=consumed,
        )


@dataclass(frozen=True)
class LinkChange(ScenarioEvent):
    """Add or remove one link, keeping the network connected.

    ``mode`` is ``"add"`` (a uniformly chosen missing link) or ``"remove"``
    (a uniformly chosen non-bridge link -- removing a bridge would disconnect
    the network, which the model forbids).  When no legal link exists (adding
    on a clique, removing on a tree) the event reports ``applied=False`` and
    leaves the system untouched.

    The two endpoints of the changed link get fresh arbitrary states drawn on
    the *new* topology: their degree and port order changed, so their old
    pointer/label values may no longer even lie in their domains -- the
    re-randomization is the honest worst case the protocols must absorb.
    """

    mode: str = "remove"
    kind = "link_change"

    def __post_init__(self) -> None:
        if self.mode not in ("add", "remove"):
            raise ValueError(f"unknown link change mode {self.mode!r}; choose add or remove")

    @staticmethod
    def _removable_edges(network: RootedNetwork) -> list[tuple[int, int]]:
        """Links whose removal keeps the network connected (non-bridges)."""
        removable = []
        for u, v in sorted(network.edges()):
            # BFS from u avoiding the edge (u, v): if v is still reachable,
            # the edge lies on a cycle and can go.
            seen = {u}
            frontier = [u]
            while frontier and v not in seen:
                node = frontier.pop()
                for neighbor in network.neighbor_set(node):
                    if (node, neighbor) in ((u, v), (v, u)):
                        continue
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            if v in seen:
                removable.append((u, v))
        return removable

    @staticmethod
    def _missing_edges(network: RootedNetwork) -> list[tuple[int, int]]:
        return [
            (u, v)
            for u in network.nodes()
            for v in range(u + 1, network.n)
            if not network.has_edge(u, v)
        ]

    def apply(self, scheduler: Scheduler, rng: random.Random) -> EventOutcome:
        network = scheduler.network
        if self.mode == "remove":
            candidates = self._removable_edges(network)
        else:
            candidates = self._missing_edges(network)
        if not candidates:
            return EventOutcome(
                kind=self.kind,
                description=f"no link to {self.mode} on {network.name}",
                applied=False,
            )
        u, v = candidates[rng.randrange(len(candidates))]
        edges = set(network.edges())
        if self.mode == "remove":
            edges.discard((u, v))
        else:
            edges.add((u, v))
        # Port orders are part of the protocols' semantics (guards scan
        # neighbors in port order), so every unaffected processor keeps its
        # order verbatim; only the two endpoints see their port list change --
        # a removed neighbor drops out, an added one takes the last port.
        port_orders: dict[int, tuple[int, ...]] = {}
        for node in network.nodes():
            order = network.neighbors(node)
            if self.mode == "remove":
                if node == u:
                    order = tuple(q for q in order if q != v)
                elif node == v:
                    order = tuple(q for q in order if q != u)
            else:
                if node == u:
                    order = order + (v,)
                elif node == v:
                    order = order + (u,)
            port_orders[node] = order
        changed = RootedNetwork(
            network.n,
            edges,
            root=network.root,
            name=f"{network.name}{'-' if self.mode == 'remove' else '+'}({u},{v})",
            port_orders=port_orders,
        )
        scheduler.set_network(changed, reinitialize=(u, v))
        return EventOutcome(
            kind=self.kind,
            description=f"{self.mode} link ({u}, {v}); endpoints re-randomized",
            affected_nodes=(u, v),
        )


@dataclass(frozen=True)
class DaemonSwitch(ScenarioEvent):
    """Swap the scheduling adversary mid-run (e.g. distributed -> adversarial).

    ``daemon`` names the kind to switch to; ``None`` restores the daemon the
    run was configured with -- so a scenario can visit an adversary and hand
    control back without hard-coding (and thereby contaminating) the daemon
    axis of the grid cell under test.
    """

    daemon: str | None = "adversarial"
    kind = "daemon_switch"

    def apply(self, scheduler: Scheduler, rng: random.Random) -> EventOutcome:
        previous = scheduler.daemon.name
        if self.daemon is None:
            scheduler.set_daemon(scheduler.initial_daemon)
        else:
            scheduler.set_daemon(make_daemon(self.daemon))
        return EventOutcome(
            kind=self.kind,
            description=f"switch daemon {previous} -> {scheduler.daemon.name}",
        )


__all__ = [
    "CorruptionBurst",
    "CrashRejoin",
    "DaemonSwitch",
    "EventOutcome",
    "LinkChange",
    "MultiCrash",
    "ScenarioEvent",
]
