"""Named, ready-to-sweep scenarios.

Each entry is a builder registered under a stable name, so campaign grids can
reference scenarios declaratively (``task_type="scenario"``,
``scenarios=("cascade",)``) and the CLI can validate names early.  The four
shipped scenarios cover the recovery story's main axes:

* ``single_burst`` -- the classic EXP-R1 shape: one total corruption burst
  after stabilization;
* ``periodic_burst`` -- three partial bursts with closure windows between
  them (convergence *and* closure, repeatedly);
* ``cascade`` -- escalating bursts while the daemon turns adversarial
  mid-run, the worst case short of continuous faults;
* ``churn`` -- dynamic-network churn: link add/remove with endpoint
  re-randomization plus leaf and root crash/rejoin;
* ``blackout`` -- correlated failures: simultaneous crash/rejoin of growing
  processor sets (:class:`~repro.scenarios.events.MultiCrash`), the root
  included in the second wave.
"""

from __future__ import annotations

from typing import Callable

from repro.scenarios.events import (
    CorruptionBurst,
    CrashRejoin,
    DaemonSwitch,
    LinkChange,
    MultiCrash,
)
from repro.scenarios.scenario import Scenario, TimedEvent

_LIBRARY: dict[str, Callable[[], Scenario]] = {}


def register_scenario(name: str) -> Callable[[Callable[[], Scenario]], Callable[[], Scenario]]:
    """Register a scenario builder under ``name`` (decorator)."""

    def decorate(builder: Callable[[], Scenario]) -> Callable[[], Scenario]:
        if name in _LIBRARY:
            raise ValueError(f"scenario {name!r} is already registered")
        _LIBRARY[name] = builder
        return builder

    return decorate


def scenario_names() -> tuple[str, ...]:
    """The registered scenario names, sorted."""
    return tuple(sorted(_LIBRARY))


def normalize_scenario(name: str) -> str:
    """Validate a scenario name against the library."""
    if name not in _LIBRARY:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(scenario_names())}"
        )
    return name


def build_scenario(name: str) -> Scenario:
    """Build the library scenario registered under ``name``."""
    return _LIBRARY[normalize_scenario(name)]()


@register_scenario("single_burst")
def single_burst() -> Scenario:
    """One total corruption burst -- the sharpest single transient fault."""
    return Scenario.of(
        "single_burst",
        CorruptionBurst(node_fraction=1.0, variable_fraction=1.0),
        description="one total corruption burst after stabilization",
        spacing_steps=10,
    )


@register_scenario("periodic_burst")
def periodic_burst() -> Scenario:
    """Three half-size bursts separated by closure windows."""
    burst = CorruptionBurst(node_fraction=0.5, variable_fraction=0.5)
    return Scenario(
        name="periodic_burst",
        events=(
            TimedEvent(burst, delay_steps=25),
            TimedEvent(burst, delay_steps=25),
            TimedEvent(burst, delay_steps=25),
        ),
        description="three partial bursts with closure windows between them",
    )


@register_scenario("cascade")
def cascade() -> Scenario:
    """Escalating bursts while the daemon turns adversarial mid-run.

    The second switch restores the run's *configured* daemon (``None``), so a
    campaign's daemon axis stays meaningful: only the middle burst runs under
    the adversary, the final one under the cell's own daemon.
    """
    return Scenario(
        name="cascade",
        events=(
            TimedEvent(CorruptionBurst(node_fraction=0.25, variable_fraction=0.5), delay_steps=10),
            TimedEvent(DaemonSwitch(daemon="adversarial")),
            TimedEvent(CorruptionBurst(node_fraction=0.5, variable_fraction=1.0), delay_steps=10),
            TimedEvent(DaemonSwitch(daemon=None)),
            TimedEvent(CorruptionBurst(node_fraction=1.0, variable_fraction=1.0), delay_steps=10),
        ),
        description="escalating corruption under a mid-run adversarial daemon",
    )


@register_scenario("blackout")
def blackout() -> Scenario:
    """Correlated multi-node failures: growing simultaneous crash/rejoin waves.

    A third of the processors go down together, recover, then half of them
    including the root -- the rack-loss shape :class:`MultiCrash` models in a
    single event, so per-event recovery reporting attributes the whole
    correlated failure to one ``multi_crash`` record instead of a chain of
    independent crashes.
    """
    return Scenario(
        name="blackout",
        events=(
            TimedEvent(MultiCrash(fraction=0.34, downtime_steps=12), delay_steps=10),
            TimedEvent(
                MultiCrash(fraction=0.5, downtime_steps=12, include_root=True),
                delay_steps=10,
            ),
        ),
        description="simultaneous crash/rejoin of growing processor sets, root included",
    )


@register_scenario("churn")
def churn() -> Scenario:
    """Dynamic-network churn: link add/remove plus leaf and root crashes."""
    return Scenario(
        name="churn",
        events=(
            TimedEvent(LinkChange(mode="add"), delay_steps=10),
            TimedEvent(CrashRejoin(target="leaf", downtime_steps=15), delay_steps=10),
            TimedEvent(LinkChange(mode="remove"), delay_steps=10),
            TimedEvent(CrashRejoin(target="root", downtime_steps=15), delay_steps=10),
        ),
        description="link add/remove with endpoint re-randomization, leaf and root crash/rejoin",
    )


__all__ = [
    "blackout",
    "build_scenario",
    "cascade",
    "churn",
    "normalize_scenario",
    "periodic_burst",
    "register_scenario",
    "scenario_names",
    "single_burst",
]
