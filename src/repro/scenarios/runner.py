"""Execute scenarios against any protocol/daemon/topology combination.

:class:`ScenarioRunner` wraps the existing
:class:`~repro.runtime.scheduler.Scheduler`: it first lets the protocol
stabilize from an arbitrary configuration, then walks the scenario's timed
events -- run the inter-event window (counting closure violations), apply the
event, measure the disturbance it caused, and time the re-stabilization --
and returns a :class:`~repro.analysis.recovery.ScenarioReport` with one
:class:`~repro.analysis.recovery.EventRecovery` per event.

This subsumes the old hard-coded ``FaultInjector`` step schedule of EXP-R1:
a corruption burst is now just one event kind among crash/rejoin, link
dynamics and daemon switches, and the recovery bookkeeping lives in
:mod:`repro.analysis.recovery` instead of each experiment loop.
"""

from __future__ import annotations

import random

from functools import partial
from typing import Callable, Sequence

from repro.analysis.recovery import EventRecovery, ScenarioReport, disturbed_nodes
from repro.core.specification import VAR_EDGE_LABELS, VAR_NAME
from repro.graphs.network import RootedNetwork
from repro.obs.instrument import Instrumentation
from repro.runtime.daemon import Daemon
from repro.runtime.observers import Observer, dispatch_safely
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.scenarios.scenario import Scenario

#: The variables the orientation specification is stated over; disturbance is
#: measured against these unless the caller watches something else.
ORIENTATION_VARIABLES = (VAR_NAME, VAR_EDGE_LABELS)


class ScenarioRunner:
    """Drives one scenario execution and reports per-event recovery metrics.

    Parameters
    ----------
    network / protocol / daemon / seed:
        The cell under test, exactly as a stabilization run would take them.
    scenario:
        The declarative event schedule to inflict.
    phase_budget:
        Step budget for the initial stabilization and for each recovery
        (default: the same ``500 * (n + m) + 3000`` bound the stabilization
        harness uses).  Every stabilization is *confirmed* over a closure
        window of ``3 * (n + m) + 10`` further steps (again matching the
        harness), so a transiently satisfied predicate is not reported as a
        recovery.
    watch_variables:
        Variable names disturbance is measured over (default: the orientation
        variables ``no_eta`` / ``no_pi``); ``None`` -> every variable.
    observers:
        :class:`~repro.runtime.observers.Observer` instances.  They receive
        the scheduler's step/round notifications, ``on_event`` with each
        event's :class:`~repro.analysis.recovery.EventRecovery` the moment its
        recovery phase ends, and ``on_converged`` with the final
        :class:`~repro.analysis.recovery.ScenarioReport` when the whole
        scenario recovered.
    incremental:
        Forwarded to the :class:`~repro.runtime.scheduler.Scheduler`;
        ``False`` forces the historical full guard scan (differential
        testing of the incremental enabled-set under scenario events).
    scheduler_factory:
        Substitute a whole alternative execution core (overrides
        ``incremental``): the sharded engine passes
        :class:`~repro.shard.ShardedScheduler` here, and because every event
        mutates the run through the scheduler's journaled configuration
        paths, fault injection routes to the owning shard with no
        scenario-side changes.  A factory-built scheduler exposing
        ``close()`` is closed when the run ends.
    instrumentation:
        Forwarded to the scheduler: the whole scenario execution -- initial
        stabilization, event windows, recoveries -- accumulates into one
        :class:`~repro.obs.Instrumentation` registry.
    """

    def __init__(
        self,
        network: RootedNetwork,
        protocol: Protocol,
        scenario: Scenario,
        daemon: Daemon | None = None,
        seed: int | None = None,
        phase_budget: int | None = None,
        watch_variables: tuple[str, ...] | None = ORIENTATION_VARIABLES,
        observers: Sequence[Observer] = (),
        incremental: bool = True,
        scheduler_factory: Callable[..., Scheduler] | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.scenario = scenario
        self.daemon = daemon
        self.seed = seed
        self.phase_budget = (
            phase_budget
            if phase_budget is not None
            else 500 * (network.n + network.num_edges()) + 3_000
        )
        self.confirm_steps = 3 * (network.n + network.num_edges()) + 10
        self.watch_variables = watch_variables
        # A list, not a tuple: failure isolation disables (removes) an
        # observer that raises, here exactly as inside the scheduler.
        self.observers = list(observers)
        self.incremental = incremental
        self.scheduler_factory = scheduler_factory
        self.instrumentation = instrumentation

    def run(self) -> ScenarioReport:
        """Execute the scenario once and return the full recovery report."""
        rng = random.Random(self.seed)
        factory = self.scheduler_factory or partial(
            Scheduler, incremental=self.incremental
        )
        scheduler = factory(
            self.network,
            self.protocol,
            daemon=self.daemon,
            rng=random.Random(rng.randrange(1 << 30)),
            observers=self.observers,
            instrumentation=self.instrumentation,
        )
        try:
            return self._run(scheduler, rng)
        finally:
            closer = getattr(scheduler, "close", None)
            if closer is not None:
                closer()

    def _run(self, scheduler: Scheduler, rng: random.Random) -> ScenarioReport:
        configured_daemon = scheduler.daemon.name
        initial = scheduler.run_until_legitimate(
            max_steps=scheduler.steps_executed + self.phase_budget,
            confirm_steps=self.confirm_steps,
        )
        recoveries: list[EventRecovery] = []
        # Closure is only checkable when the previous phase actually
        # re-stabilized; after a failed recovery the system is already
        # illegitimate and counting those steps would misattribute a
        # convergence failure as a closure failure.
        stabilized = initial.converged

        for index, timed in enumerate(self.scenario.events):
            # Inter-event window: the system should *stay* legitimate (closure).
            violations = 0
            for _ in range(timed.delay_steps):
                if scheduler.step() is None:
                    break
                if stabilized and not scheduler.protocol.legitimate(
                    scheduler.network, scheduler.configuration
                ):
                    violations += 1

            before = scheduler.configuration.copy()
            outcome = timed.event.apply(scheduler, rng)
            disturbed = disturbed_nodes(
                before, scheduler.configuration, self.watch_variables
            )
            broke = not scheduler.protocol.legitimate(
                scheduler.network, scheduler.configuration
            )

            start_steps = scheduler.steps_executed
            start_rounds = scheduler.rounds_completed
            recovery = scheduler.run_until_legitimate(
                max_steps=start_steps + self.phase_budget,
                confirm_steps=self.confirm_steps,
            )
            recovered = recovery.converged
            stabilized = recovered
            record = EventRecovery(
                index=index,
                kind=outcome.kind,
                description=outcome.description,
                applied=outcome.applied,
                disturbed=len(disturbed),
                disturbed_fraction=len(disturbed) / scheduler.network.n,
                broke_legitimacy=broke,
                recovered=recovered,
                recovery_steps=(
                    recovery.first_legitimate_step - start_steps
                    if recovered and recovery.first_legitimate_step is not None
                    else None
                ),
                recovery_rounds=(
                    recovery.first_legitimate_round - start_rounds
                    if recovered and recovery.first_legitimate_round is not None
                    else None
                ),
                closure_violations=violations,
                deadlocked=recovery.terminated and not recovered,
            )
            recoveries.append(record)
            dispatch_safely(self.observers, "on_event", self, record)

        report = ScenarioReport(
            scenario=self.scenario.name,
            protocol=self.protocol.name,
            network=scheduler.network.name,
            n=scheduler.network.n,
            edges=scheduler.network.num_edges(),
            daemon=configured_daemon,
            seed=self.seed if self.seed is not None else -1,
            initial_converged=initial.converged,
            initial_steps=initial.first_legitimate_step,
            initial_rounds=initial.first_legitimate_round,
            events=tuple(recoveries),
            total_steps=scheduler.steps_executed,
            total_rounds=scheduler.rounds_completed,
        )
        if report.converged:
            dispatch_safely(self.observers, "on_converged", self, report)
        return report


def run_scenario(
    network: RootedNetwork,
    protocol: Protocol,
    scenario: Scenario,
    daemon: Daemon | None = None,
    seed: int | None = None,
    **kwargs: object,
) -> ScenarioReport:
    """Convenience wrapper: ``ScenarioRunner(...).run()``."""
    return ScenarioRunner(
        network, protocol, scenario, daemon=daemon, seed=seed, **kwargs
    ).run()


__all__ = ["ORIENTATION_VARIABLES", "ScenarioRunner", "run_scenario"]
