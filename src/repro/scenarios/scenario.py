"""Declarative scenarios: named, ordered compositions of timed events."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenarios.events import ScenarioEvent


@dataclass(frozen=True)
class TimedEvent:
    """One scenario step: wait ``delay_steps``, then fire ``event``.

    The delay is measured from the previous event's recovery (or from the
    initial stabilization); during it the system keeps executing and the
    runner counts *closure violations* -- steps at which legitimacy does not
    hold even though no fault occurred since the last recovery.
    """

    event: ScenarioEvent
    delay_steps: int = 0

    def __post_init__(self) -> None:
        if self.delay_steps < 0:
            raise ValueError("delay_steps must be >= 0")


@dataclass(frozen=True)
class Scenario:
    """A named fault/dynamics schedule, executable against any protocol.

    Scenarios are purely declarative: they name no processors, links or
    networks.  Concrete targets are resolved at run time from the run's
    random stream, so the same scenario object sweeps across every cell of a
    campaign grid.
    """

    name: str
    events: tuple[TimedEvent, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if not self.events:
            raise ValueError(f"scenario {self.name!r} has no events")
        normalized = tuple(
            timed if isinstance(timed, TimedEvent) else TimedEvent(timed)
            for timed in self.events
        )
        object.__setattr__(self, "events", normalized)

    @classmethod
    def of(
        cls,
        name: str,
        *events: ScenarioEvent | TimedEvent,
        description: str = "",
        spacing_steps: int = 0,
    ) -> "Scenario":
        """Build a scenario from bare events, giving each the same delay."""
        return cls(
            name=name,
            events=tuple(
                event
                if isinstance(event, TimedEvent)
                else TimedEvent(event, delay_steps=spacing_steps)
                for event in events
            ),
            description=description,
        )

    def __len__(self) -> int:
        return len(self.events)


__all__ = ["Scenario", "TimedEvent"]
