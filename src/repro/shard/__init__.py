"""Sharded multi-process simulation: partition, workers, coordinator.

The sharded engine splits a network into node blocks
(:func:`~repro.shard.partition.partition_network`), runs each block's guard
evaluation and action execution in a worker
(:class:`~repro.shard.worker.ShardWorker`, forked into its own process by
default) and keeps global semantics -- the seeded cross-shard daemon, the
authoritative configuration, rounds, metrics, observers -- in the
coordinator (:class:`~repro.shard.coordinator.ShardedScheduler`), which is a
drop-in :class:`~repro.runtime.scheduler.Scheduler`.  Between steps only the
dirty frontier crossing shard boundaries is exchanged.

Reachable declaratively as the ``scheduler-sharded`` engine::

    from repro.api import RunSpec, run
    result = run(RunSpec(engine="scheduler-sharded", shards=4))
"""

from repro.shard.coordinator import MODES, ShardedScheduler, default_mode
from repro.shard.partition import (
    DEFAULT_STRATEGY,
    PARTITION_STRATEGIES,
    Partition,
    PartitionError,
    normalize_strategy,
    partition_network,
)
from repro.shard.worker import ShardError, ShardWorker

__all__ = [
    "DEFAULT_STRATEGY",
    "MODES",
    "PARTITION_STRATEGIES",
    "Partition",
    "PartitionError",
    "ShardError",
    "ShardWorker",
    "ShardedScheduler",
    "default_mode",
    "normalize_strategy",
    "partition_network",
]
