"""The sharded simulation engine's coordinator: a drop-in ``Scheduler``.

:class:`ShardedScheduler` partitions the network into node blocks
(:mod:`repro.shard.partition`), hands each block to a
:class:`~repro.shard.worker.ShardWorker` -- in a forked worker process by
default, in-process with ``mode="inline"`` -- and keeps every piece of
*global* step semantics to itself:

* the daemon and its random stream (one seeded cross-shard daemon selecting
  from the globally merged, sorted enabled set -- which is what makes a
  sharded run reproduce the single-process execution bit for bit);
* the authoritative :class:`~repro.runtime.configuration.Configuration`,
  where all writes land and all legitimacy predicates evaluate;
* round bookkeeping, metrics, traces and observers (observers therefore see
  one merged, globally ordered step stream, identical to a single-process
  run's).

What the workers own is the hot loop: guard re-evaluation and action
execution.  Between steps the coordinator exchanges only the *dirty
frontier*: each changed node's state goes to the shard that owns it and to
every shard that ghosts it (a boundary crossing), and each shard answers with
the delta of its block's enabled set.  Interior changes of one shard never
touch another shard's mailbox.

Because every mutation path of the base scheduler funnels through the
journaled configuration (step writes, ``set_configuration``, crash/rejoin
``replace_node``, ``set_network``), scenario fault injection routes to the
owning shard with no extra machinery -- the coordinator simply drains the
journal and ships the states.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random
import time
import weakref
from dataclasses import dataclass
from functools import partial
from typing import Any, Iterable, Mapping, Sequence

from repro.graphs.network import RootedNetwork
from repro.obs.instrument import Instrumentation, PHASE_FRONTIER_EXCHANGE
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import Daemon
from repro.runtime.observers import Observer
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.shard.partition import DEFAULT_STRATEGY, Partition, partition_network
from repro.shard.worker import ShardError, ShardWorker, shard_process_main

#: Execution harnesses for the shard workers.
MODES = ("fork", "inline")


def default_mode() -> str:
    """``"fork"`` where the platform supports it, else ``"inline"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "inline"


@dataclass(frozen=True)
class _RemoteAction:
    """The coordinator's stand-in for a worker-held enabled action.

    Carries exactly what global bookkeeping needs -- the action's name and
    layer for step records -- while execution stays with the worker that owns
    the real :class:`~repro.runtime.actions.Action`.
    """

    name: str
    layer: str


class _InlineShard:
    """A shard handle running its worker synchronously in-process.

    Same messages, same dispatch, no processes -- the portability fallback
    and the harness the equivalence tests grind, so the logic exercised
    inline is the logic that runs forked.
    """

    def __init__(self, factory) -> None:
        self.worker = factory()
        self._result: Any = None

    def send(self, message: tuple) -> None:
        self._result = ("ok", self.worker.dispatch(message))

    def recv(self) -> tuple:
        return self._result

    def close(self) -> None:  # nothing to tear down
        self._result = None


class _ProcessShard:
    """A shard handle talking to a forked worker process over a pipe."""

    def __init__(self, factory) -> None:
        context = multiprocessing.get_context("fork")
        self.connection, child = context.Pipe()
        # daemon=True: a leaked coordinator can never leave orphan workers.
        self.process = context.Process(
            target=shard_process_main, args=(child, factory), daemon=True
        )
        self.process.start()
        child.close()

    def send(self, message: tuple) -> None:
        self.connection.send(message)

    def recv(self) -> tuple:
        try:
            return self.connection.recv()
        except EOFError as exc:
            raise ShardError("shard worker process died without answering") from exc

    def close(self) -> None:
        try:
            self.connection.send(("stop",))
        except (OSError, ValueError):
            pass  # already gone
        self.connection.close()
        self.process.join(timeout=2)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2)


def _close_handles(handles: list) -> None:
    for handle in handles:
        try:
            handle.close()
        except Exception:  # pragma: no cover - teardown must never raise
            pass


class ShardedScheduler(Scheduler):
    """A :class:`~repro.runtime.scheduler.Scheduler` that executes sharded.

    Identical constructor surface plus:

    shards:
        Number of node blocks / worker processes (clamped to ``n``).
    partition:
        Partition strategy name (see
        :data:`repro.shard.partition.PARTITION_STRATEGIES`).
    mode:
        ``"fork"`` (default where available) runs each shard in a forked
        worker process; ``"inline"`` runs the identical shard workers
        synchronously in-process -- zero parallelism, full observability,
        used by tests and as the fallback on fork-less platforms.

    Every observable -- enabled sets, step records, metrics, rounds, final
    configurations, convergence verdicts -- is bit-identical to a
    single-process run with the same arguments; the equivalence property
    suite (``tests/api/test_engine_equivalence.py``) holds it to that across
    every substrate, daemon, and library scenario.  Call :meth:`close` (or
    use the scheduler as a context manager) to reap the worker processes;
    a garbage-collected coordinator reaps them automatically.

    With instrumentation attached, the coordinator attributes its
    enabled-set maintenance to the ``frontier_exchange`` phase (payload
    routing, pipe round-trips, delta folding), counts the pickled frontier
    bytes in each direction, and merges the per-worker summaries that
    piggyback on ``apply`` replies, so a sharded run's ``perf`` reports
    per-shard guard-evaluation skew next to the exchange cost.
    """

    _refresh_phase = PHASE_FRONTIER_EXCHANGE

    def __init__(
        self,
        network: RootedNetwork,
        protocol: Protocol,
        daemon: Daemon | None = None,
        configuration: Configuration | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        record_trace: bool = False,
        trace_limit: int | None = 100_000,
        observers: Sequence[Observer] = (),
        shards: int = 2,
        partition: str = DEFAULT_STRATEGY,
        mode: str | None = None,
        check_guard_locality: bool | None = None,
        instrumentation: Instrumentation | None = None,
        race_checker=None,
    ) -> None:
        super().__init__(
            network,
            protocol,
            daemon=daemon,
            configuration=configuration,
            seed=seed,
            rng=rng,
            record_trace=record_trace,
            trace_limit=trace_limit,
            observers=observers,
            incremental=True,
            check_guard_locality=check_guard_locality,
            instrumentation=instrumentation,
        )
        if mode is None:
            mode = default_mode()
        if mode not in MODES:
            raise ShardError(f"unknown shard mode {mode!r}; choose from {MODES}")
        self.mode = mode
        #: Optional :class:`repro.lint.racecheck.ShardRaceChecker`; when set,
        #: every frontier exchange is followed by a mirror audit and every
        #: execute fan-out by a write-ownership audit.
        self.race_checker = race_checker
        self.partition: Partition = partition_network(network, shards, strategy=partition)
        handle_type = _ProcessShard if mode == "fork" else _InlineShard
        self._shards = []
        for index, block in enumerate(self.partition.blocks):
            factory = partial(
                ShardWorker,
                index,
                network,
                protocol,
                block,
                tuple(self.partition.ghosts(index)),
                self.check_guard_locality,
                self._instr.enabled,
            )
            self._shards.append(handle_type(factory))
        self._closed = False
        self._finalizer = weakref.finalize(self, _close_handles, list(self._shards))
        # super().__init__ left _needs_full_rescan=True, so the first
        # enabled-set access broadcasts the initial configuration ("load").

    # ------------------------------------------------------------------
    # Worker messaging
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shard workers (== the partition's ``k``)."""
        return self.partition.k

    def _command(self, messages: Mapping[int, tuple]) -> dict[int, Any]:
        """Send one message per addressed shard, then collect every answer.

        All sends go out before the first receive, so forked workers run
        their share of the round concurrently; the inline harness answers
        synchronously inside ``send``.
        """
        if self._closed:
            raise ShardError("sharded scheduler already closed")
        for index, message in messages.items():
            self._shards[index].send(message)
        answers: dict[int, Any] = {}
        failure: ShardError | None = None
        # Drain every outstanding reply even after a failure: leaving one
        # queued in a pipe would pair the next command with a stale answer.
        # A failed worker has already exited, so the coordinator is torn
        # down before the error propagates.
        for index in messages:
            try:
                reply = self._shards[index].recv()
            except ShardError as exc:
                failure = failure or exc
                continue
            if reply[0] != "ok":
                failure = failure or ShardError(
                    f"shard {index} failed: {reply[1]}\n--- worker traceback ---\n{reply[2]}"
                )
                continue
            answers[index] = reply[1]
        if failure is not None:
            self.close()
            raise failure
        return answers

    def _states_payload(self, nodes: Iterable[int]) -> dict[int, Mapping[str, Any]]:
        # peek_state (no deep copy): the payload is pickled onto the pipe
        # immediately (fork) or shallow-copied by the worker's replace_node
        # (inline), and stored values are never mutated in place.
        return {node: self.configuration.peek_state(node) for node in nodes}

    def _delta_payload(
        self, nodes: Iterable[int], detail: Mapping[int, frozenset | None]
    ) -> dict[int, tuple[str, Mapping[str, Any]]]:
        """Per-node change payloads: written variables only, full state when
        the whole local state was replaced (so dropped variables propagate)."""
        payload: dict[int, tuple[str, Mapping[str, Any]]] = {}
        for node in nodes:
            names = detail[node]
            state = self.configuration.peek_state(node)
            if names is None:
                payload[node] = ("full", state)
            else:
                payload[node] = (
                    "vars",
                    {name: state[name] for name in names if name in state},
                )
        return payload

    # ------------------------------------------------------------------
    # Scheduler overrides: enabled-set maintenance and step execution
    # ------------------------------------------------------------------
    def _refresh_enabled(self) -> None:
        """Frontier exchange: route journaled changes, fold enabled deltas.

        Full rescans broadcast each shard's whole scope; otherwise each dirty
        node's state travels only to the shards whose scope contains it --
        interior changes stay with their owner, boundary-crossing changes
        additionally refresh the neighbors' ghosts.

        The whole exchange -- payload building, pipe round-trips, delta
        folding -- self-attributes to the ``frontier_exchange`` phase;
        per-worker summaries piggybacked on ``apply`` replies are filed under
        their shard index as they arrive.
        """
        instr = self._instr
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        if self._needs_full_rescan:
            self.configuration.drain_dirty()
            messages = {
                index: ("load", self._states_payload(self.partition.scope(index)))
                for index in range(self.partition.k)
            }
            if timed:
                instr.count("full_rescans")
                instr.count("frontier_messages", len(messages))
                instr.count(
                    "frontier_bytes_sent",
                    sum(len(pickle.dumps(message[1])) for message in messages.values()),
                )
            answers = self._command(messages)
            self._enabled = {}
            for enabled in answers.values():
                for node, (name, layer) in enabled.items():
                    self._enabled[node] = _RemoteAction(name, layer)
            self._needs_full_rescan = False
            self._invalidate_enabled_view()
            if timed:
                instr.count(
                    "frontier_bytes_received",
                    sum(len(pickle.dumps(reply)) for reply in answers.values()),
                )
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            if self.race_checker is not None:
                self.race_checker.audit_mirrors(self)
            return
        detail = self.configuration.drain_dirty_detail()
        if not detail:
            if timed:
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            return
        dirty = {node for node in detail if node in self._actions}
        messages = {}
        for index in range(self.partition.k):
            relevant = dirty & self.partition.scope(index)
            if relevant:
                messages[index] = ("apply", self._delta_payload(relevant, detail))
        if not messages:
            if timed:
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            return
        if timed:
            instr.count("frontier_messages", len(messages))
            instr.count(
                "frontier_bytes_sent",
                sum(len(pickle.dumps(message[1])) for message in messages.values()),
            )
            instr.gauge("dirty_set_size", len(dirty))
        answers = self._command(messages)
        for index, delta in answers.items():
            perf = delta.get("perf")
            if perf is not None:
                instr.record_shard(index, perf)
            for node in delta["clear"]:
                if self._enabled.pop(node, None) is not None:
                    self._invalidate_enabled_view()
            for node, (name, layer) in delta["set"].items():
                if node not in self._enabled:
                    self._invalidate_enabled_view()
                self._enabled[node] = _RemoteAction(name, layer)
        if timed:
            instr.count(
                "frontier_bytes_received",
                sum(len(pickle.dumps(reply)) for reply in answers.values()),
            )
            instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
        if self.race_checker is not None:
            self.race_checker.audit_mirrors(self)

    def _execute_selected(
        self, enabled: Mapping[int, Any], selected: Sequence[int]
    ) -> tuple[list[tuple[int, str]], dict[int, dict[str, object]]]:
        """Fan the selected processors out to their owning shards.

        Each shard executes its share against its beginning-of-step mirror;
        the answers are re-assembled in the daemon's selection order, so the
        step record (and the write-application order) is byte-identical to
        the single-process step.
        """
        by_shard: dict[int, list[int]] = {}
        for node in selected:
            by_shard.setdefault(self.partition.owner_of(node), []).append(node)
        messages = {index: ("execute", nodes) for index, nodes in by_shard.items()}
        answers = self._command(messages)
        if self.race_checker is not None:
            self.race_checker.audit_execution(self, by_shard, answers)
        results: dict[int, tuple[str, dict[str, object]]] = {}
        for answer in answers.values():
            results.update(answer)
        executed = [(node, results[node][0]) for node in selected]
        pending_writes = {node: results[node][1] for node in selected}
        return executed, pending_writes

    def set_network(self, network: RootedNetwork, reinitialize: Iterable[int] = ()) -> None:
        """Dynamic topology change: re-derive ghosts, re-arm the workers.

        The blocks survive (processor count is invariant); only the cut --
        and with it every ghost set -- changes.  The base class queues a full
        rescan, so the next enabled-set access reloads every worker's mirror
        on the new topology.
        """
        super().set_network(network, reinitialize=reinitialize)
        self.partition = self.partition.rebind(network)
        self._command(
            {
                index: ("network", network, tuple(self.partition.ghosts(index)))
                for index in range(self.partition.k)
            }
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop and reap the shard workers (idempotent).

        With instrumentation attached, each worker's final cumulative summary
        is drained first (best effort -- a crashed worker just keeps its last
        piggybacked snapshot), so ``load``/``execute`` time that never rode an
        ``apply`` reply still reaches the per-shard report.
        """
        if self._closed:
            return
        if self._instr.enabled:
            self._collect_worker_perf()
        self._closed = True
        self._finalizer.detach()
        _close_handles(self._shards)

    def _collect_worker_perf(self) -> None:
        for index, shard in enumerate(self._shards):
            try:
                shard.send(("perf",))
                reply = shard.recv()
            except Exception:  # worker already gone; keep the last snapshot
                continue
            if reply and reply[0] == "ok":
                self._instr.record_shard(index, reply[1])

    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedScheduler(protocol={self.protocol.name!r}, "
            f"network={self.network.name!r}, daemon={self.daemon.name!r}, "
            f"shards={self.partition.k}, mode={self.mode!r}, steps={self._step_index})"
        )


__all__ = ["MODES", "ShardedScheduler", "default_mode"]
