"""The sharded simulation engine's coordinator: a drop-in ``Scheduler``.

:class:`ShardedScheduler` partitions the network into node blocks
(:mod:`repro.shard.partition`), hands each block to a
:class:`~repro.shard.worker.ShardWorker` -- in a forked worker process by
default, in-process with ``mode="inline"`` -- and keeps every piece of
*global* step semantics to itself:

* the daemon and its random stream (one seeded cross-shard daemon selecting
  from the globally merged, sorted enabled set -- which is what makes a
  sharded run reproduce the single-process execution bit for bit);
* the authoritative :class:`~repro.runtime.configuration.Configuration`,
  where all writes land and all legitimacy predicates evaluate;
* round bookkeeping, metrics, traces and observers (observers therefore see
  one merged, globally ordered step stream, identical to a single-process
  run's).

What the workers own is the hot loop: guard re-evaluation and action
execution.  Between steps the coordinator exchanges only the *dirty
frontier*: each changed node's state goes to the shard that owns it and to
every shard that ghosts it (a boundary crossing), and each shard answers with
the delta of its block's enabled set.  Interior changes of one shard never
touch another shard's mailbox.

Because every mutation path of the base scheduler funnels through the
journaled configuration (step writes, ``set_configuration``, crash/rejoin
``replace_node``, ``set_network``), scenario fault injection routes to the
owning shard with no extra machinery -- the coordinator simply drains the
journal and ships the states.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random
import time
import weakref
from dataclasses import dataclass
from functools import partial
from typing import Any, Iterable, Mapping, Sequence

from repro.graphs.network import RootedNetwork
from repro.obs.instrument import Instrumentation, PHASE_FRONTIER_EXCHANGE
from repro.runtime.arrayview import (
    ArrayView,
    ArrayViewUnsupported,
    HAVE_NUMPY,
    column_sizes,
    np,
)
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import Daemon, SynchronousDaemon
from repro.runtime.observers import Observer, dispatch_safely
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.shard.partition import DEFAULT_STRATEGY, Partition, partition_network
from repro.shard.worker import ShardError, ShardWorker, shard_process_main

#: Execution harnesses for the shard workers.
MODES = ("fork", "inline")


def default_mode() -> str:
    """``"fork"`` where the platform supports it, else ``"inline"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "inline"


@dataclass(frozen=True)
class _RemoteAction:
    """The coordinator's stand-in for a worker-held enabled action.

    Carries exactly what global bookkeeping needs -- the action's name and
    layer for step records -- while execution stays with the worker that owns
    the real :class:`~repro.runtime.actions.Action`.
    """

    name: str
    layer: str


class _InlineShard:
    """A shard handle running its worker synchronously in-process.

    Same messages, same dispatch, no processes -- the portability fallback
    and the harness the equivalence tests grind, so the logic exercised
    inline is the logic that runs forked.
    """

    def __init__(self, factory) -> None:
        self.worker = factory()
        self._result: Any = None

    def send(self, message: tuple) -> None:
        self._result = ("ok", self.worker.dispatch(message))

    def recv(self) -> tuple:
        return self._result

    def close(self) -> None:  # nothing to tear down
        self._result = None


class _ProcessShard:
    """A shard handle talking to a forked worker process over a pipe."""

    def __init__(self, factory) -> None:
        context = multiprocessing.get_context("fork")
        self.connection, child = context.Pipe()
        # daemon=True: a leaked coordinator can never leave orphan workers.
        self.process = context.Process(
            target=shard_process_main, args=(child, factory), daemon=True
        )
        self.process.start()
        child.close()

    def send(self, message: tuple) -> None:
        self.connection.send(message)

    def recv(self) -> tuple:
        try:
            return self.connection.recv()
        except EOFError as exc:
            raise ShardError("shard worker process died without answering") from exc

    def close(self) -> None:
        try:
            self.connection.send(("stop",))
        except (OSError, ValueError):
            pass  # already gone
        self.connection.close()
        self.process.join(timeout=2)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2)


def _close_handles(handles: list) -> None:
    for handle in handles:
        try:
            handle.close()
        except Exception:  # pragma: no cover - teardown must never raise
            pass


def _release_shm(segment) -> None:
    """Best-effort unlink+close of a shared-memory segment.

    Unlink first -- it only removes the name and always succeeds -- so the
    segment can never leak even when outstanding numpy views keep the mapping
    exported and ``close`` raises ``BufferError``.
    """
    try:
        segment.unlink()
    except Exception:  # pragma: no cover - already unlinked
        pass
    try:
        segment.close()
    except Exception:  # pragma: no cover - exported views still alive
        pass


class ShardedScheduler(Scheduler):
    """A :class:`~repro.runtime.scheduler.Scheduler` that executes sharded.

    Identical constructor surface plus:

    shards:
        Number of node blocks / worker processes (clamped to ``n``).
    partition:
        Partition strategy name (see
        :data:`repro.shard.partition.PARTITION_STRATEGIES`).
    mode:
        ``"fork"`` (default where available) runs each shard in a forked
        worker process; ``"inline"`` runs the identical shard workers
        synchronously in-process -- zero parallelism, full observability,
        used by tests and as the fallback on fork-less platforms.
    fused_rounds:
        On by default.  Under the synchronous daemon the coming selection is
        the whole enabled set, so the per-step ``apply`` + ``execute``
        round-trip pair collapses into one fused ``round`` message whose
        reply carries the speculative execution results, and workers commit
        their own block's writes locally so interior writes never cross the
        pipe again.  ``False`` restores the classic two-trip protocol (the
        benchmark A/Bs the two).  In ``"fork"`` mode with numpy available
        and an array-encodable protocol, frontier deltas additionally travel
        through a ``multiprocessing.shared_memory`` mirror instead of the
        pipes' pickle stream; both paths degrade transparently.

    Every observable -- enabled sets, step records, metrics, rounds, final
    configurations, convergence verdicts -- is bit-identical to a
    single-process run with the same arguments; the equivalence property
    suite (``tests/api/test_engine_equivalence.py``) holds it to that across
    every substrate, daemon, and library scenario.  Call :meth:`close` (or
    use the scheduler as a context manager) to reap the worker processes;
    a garbage-collected coordinator reaps them automatically.

    With instrumentation attached, the coordinator attributes its
    enabled-set maintenance to the ``frontier_exchange`` phase (payload
    routing, pipe round-trips, delta folding), counts the pickled frontier
    bytes in each direction, and merges the per-worker summaries that
    piggyback on ``apply`` replies, so a sharded run's ``perf`` reports
    per-shard guard-evaluation skew next to the exchange cost.
    """

    _refresh_phase = PHASE_FRONTIER_EXCHANGE

    def __init__(
        self,
        network: RootedNetwork,
        protocol: Protocol,
        daemon: Daemon | None = None,
        configuration: Configuration | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        record_trace: bool = False,
        trace_limit: int | None = 100_000,
        observers: Sequence[Observer] = (),
        shards: int = 2,
        partition: str = DEFAULT_STRATEGY,
        mode: str | None = None,
        check_guard_locality: bool | None = None,
        instrumentation: Instrumentation | None = None,
        race_checker=None,
        fused_rounds: bool = True,
    ) -> None:
        super().__init__(
            network,
            protocol,
            daemon=daemon,
            configuration=configuration,
            seed=seed,
            rng=rng,
            record_trace=record_trace,
            trace_limit=trace_limit,
            observers=observers,
            incremental=True,
            check_guard_locality=check_guard_locality,
            instrumentation=instrumentation,
        )
        if mode is None:
            mode = default_mode()
        if mode not in MODES:
            raise ShardError(f"unknown shard mode {mode!r}; choose from {MODES}")
        self.mode = mode
        # Lamport-style causal stamping of the coordinator<->worker message
        # traffic, observable through the ``on_exchange`` observer hook.  The
        # stream is hot-path (every frontier exchange), so it is dispatched
        # only to observers that declare ``wants_exchanges`` (the flight
        # recorder does); with no tap registered, ``_command`` pays one
        # truthiness check.
        self._lamport = 0
        self._worker_clocks: dict[int, int] = {}
        self._exchange_taps: list[Observer] = [
            observer
            for observer in self._observers
            if getattr(observer, "wants_exchanges", False)
        ]
        #: Optional :class:`repro.lint.racecheck.ShardRaceChecker`; when set,
        #: every frontier exchange is followed by a mirror audit and every
        #: execute fan-out by a write-ownership audit.
        self.race_checker = race_checker
        #: Whether synchronous-daemon steps may use the fused single
        #: round-trip ``round`` protocol (benchmarks A/B this; everything
        #: else leaves it on).
        self.fused_rounds = fused_rounds
        self.partition: Partition = partition_network(network, shards, strategy=partition)
        #: ``node -> (action name, pending writes)`` speculatively computed by
        #: the last fused ``round`` exchange; consumed by the next
        #: ``_execute_selected`` instead of a second round-trip.
        self._round_results: dict[int, tuple[str, dict[str, Any]]] | None = None
        #: After a committed fused round: ``node -> writes`` the owning worker
        #: already folded into its own mirror, so the next exchange can skip
        #: shipping those values back to the owner (ghosting shards still get
        #: them).  Values are compared before skipping -- a scenario overwrite
        #: between steps invalidates the shortcut per node.
        self._owner_synced: dict[int, dict[str, Any]] | None = None
        #: Shards holding a pending (locally-committed but not re-evaluated)
        #: frontier; they must receive a message next exchange even when no
        #: deltas route to them.
        self._owners_pending: set[int] = set()
        # Shared-memory mirror (fork mode + numpy + encodable protocol only):
        # frontier deltas become ("shm", names) name lists and the values
        # travel through the segment instead of the pipe's pickle stream.
        # The segment must exist before the workers fork so they inherit the
        # mapping; everything degrades to pickled deltas when unavailable.
        self._shm = None
        self._shm_view: ArrayView | None = None
        self._shm_buffers: dict[str, Any] | None = None
        self._shm_names: frozenset = frozenset()
        shm_buffers = (
            self._create_shm_mirror() if mode == "fork" and HAVE_NUMPY else None
        )
        handle_type = _ProcessShard if mode == "fork" else _InlineShard
        self._shards = []
        for index, block in enumerate(self.partition.blocks):
            factory = partial(
                ShardWorker,
                index,
                network,
                protocol,
                block,
                tuple(self.partition.ghosts(index)),
                self.check_guard_locality,
                self._instr.enabled,
                shm_buffers=shm_buffers,
            )
            self._shards.append(handle_type(factory))
        self._closed = False
        self._finalizer = weakref.finalize(self, _close_handles, list(self._shards))
        # super().__init__ left _needs_full_rescan=True, so the first
        # enabled-set access broadcasts the initial configuration ("load").

    def _create_shm_mirror(self) -> dict[str, Any] | None:
        """Allocate the shared segment and the coordinator-side encoder view.

        Returns the ``{name: int64 array}`` buffer map the worker factories
        capture (inherited through fork, so coordinator and workers alias the
        same pages), or ``None`` when the protocol is not array-encodable or
        the platform refuses a segment -- the engine then simply keeps
        pickling deltas.
        """
        from multiprocessing import shared_memory

        try:
            sizes = column_sizes(self.network, self.protocol)
        except ArrayViewUnsupported:
            return None
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(sum(sizes.values()) * 8, 8)
            )
        except (OSError, ValueError):  # pragma: no cover - platform quirk
            return None
        buffers: dict[str, Any] | None = {}
        offset = 0
        for name in sorted(sizes):
            buffers[name] = np.frombuffer(
                segment.buf, dtype=np.int64, count=sizes[name], offset=offset
            )
            offset += sizes[name] * 8
        try:
            view = ArrayView(
                self.network, self.protocol, self.configuration, buffers=buffers
            )
        except ArrayViewUnsupported:
            buffers = None  # drop the exports so the mapping can close
            _release_shm(segment)
            return None
        self._shm = segment
        self._shm_view = view
        self._shm_buffers = buffers
        self._shm_names = frozenset(buffers)
        self._shm_finalizer = weakref.finalize(self, _release_shm, segment)
        return buffers

    def _disable_shm(self) -> None:
        """Stop producing shared-memory deltas (a value left the encodable
        domain mid-run, or the topology changed the column layout)."""
        if self._shm_view is not None:
            self._shm_view.detach()
            self._shm_view = None

    # ------------------------------------------------------------------
    # Worker messaging
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shard workers (== the partition's ``k``)."""
        return self.partition.k

    def _command(self, messages: Mapping[int, tuple]) -> dict[int, Any]:
        """Send one message per addressed shard, then collect every answer.

        All sends go out before the first receive, so forked workers run
        their share of the round concurrently; the inline harness answers
        synchronously inside ``send``.
        """
        if self._closed:
            raise ShardError("sharded scheduler already closed")
        taps = self._exchange_taps
        sent_stamps: dict[int, int] | None = None
        if taps:
            # Lamport send events: every outbound message ticks the
            # coordinator clock before any reply is received.
            sent_stamps = {}
            for index in messages:
                self._lamport += 1
                sent_stamps[index] = self._lamport
        for index, message in messages.items():
            self._shards[index].send(message)
        answers: dict[int, Any] = {}
        failure: ShardError | None = None
        # Drain every outstanding reply even after a failure: leaving one
        # queued in a pipe would pair the next command with a stale answer.
        # A failed worker has already exited, so the coordinator is torn
        # down before the error propagates.
        for index in messages:
            try:
                reply = self._shards[index].recv()
            except ShardError as exc:
                failure = failure or exc
                continue
            if reply[0] != "ok":
                failure = failure or ShardError(
                    f"shard {index} failed: {reply[1]}\n--- worker traceback ---\n{reply[2]}"
                )
                continue
            answers[index] = reply[1]
        if failure is not None:
            self.close()
            raise failure
        if taps and sent_stamps is not None:
            self._record_exchanges(messages, answers, sent_stamps)
        return answers

    def _record_exchanges(
        self,
        messages: Mapping[int, tuple],
        answers: Mapping[int, Any],
        sent_stamps: Mapping[int, int],
    ) -> None:
        """Stamp and publish one exchange record per coordinator<->worker
        round trip.

        The worker side of the protocol is strictly request/reply, so its
        Lamport events (receive the command, send the answer) are fully
        determined coordinator-side: the per-shard clock merges the send
        stamp, ticks twice, and merges back into the coordinator clock on
        receipt.  Cross-shard ordering is recoverable from the stamps alone
        because every message flows through the coordinator.
        """
        for index, message in messages.items():
            worker_clock = max(self._worker_clocks.get(index, 0), sent_stamps[index]) + 2
            self._worker_clocks[index] = worker_clock
            self._lamport = max(self._lamport, worker_clock) + 1
            payload = message[1] if len(message) > 1 else None
            exchange = {
                "command": message[0],
                "shard": index,
                "sent": len(payload) if hasattr(payload, "__len__") else None,
                "lamport_sent": sent_stamps[index],
                "lamport_worker": worker_clock,
                "lamport_received": self._lamport,
            }
            answer = answers.get(index)
            if hasattr(answer, "__len__"):
                exchange["received"] = len(answer)
            dispatch_safely(self._exchange_taps, "on_exchange", self, exchange)

    def add_observer(self, observer: Observer) -> None:
        """Register ``observer``; exchange-stream taps self-select here too."""
        super().add_observer(observer)
        if getattr(observer, "wants_exchanges", False):
            self._exchange_taps.append(observer)

    def _states_payload(self, nodes: Iterable[int]) -> dict[int, Mapping[str, Any]]:
        # peek_state (no deep copy): the payload is pickled onto the pipe
        # immediately (fork) or shallow-copied by the worker's replace_node
        # (inline), and stored values are never mutated in place.
        return {node: self.configuration.peek_state(node) for node in nodes}

    def _delta_payload(
        self, nodes: Iterable[int], detail: Mapping[int, frozenset | None]
    ) -> dict[int, tuple[str, Mapping[str, Any]]]:
        """Per-node change payloads: written variables only, full state when
        the whole local state was replaced (so dropped variables propagate).

        With the shared-memory mirror live (and freshly synced by the
        caller), a plain variable write ships as ``("shm", names)`` -- the
        worker reads the values out of the segment -- so only the names cross
        the pipe.  Whole-state replacements always go pickled: a dropped
        variable has no array representation.
        """
        payload: dict[int, tuple[str, Any]] = {}
        shm_live = self._shm_view is not None
        for node in nodes:
            names = detail[node]
            state = self.configuration.peek_state(node)
            if names is None:
                payload[node] = ("full", state)
                continue
            present = tuple(name for name in names if name in state)
            if shm_live and all(name in self._shm_names for name in present):
                payload[node] = ("shm", present)
            else:
                payload[node] = ("vars", {name: state[name] for name in present})
        return payload

    # ------------------------------------------------------------------
    # Scheduler overrides: enabled-set maintenance and step execution
    # ------------------------------------------------------------------
    def _refresh_enabled(self) -> None:
        """Frontier exchange: route journaled changes, fold enabled deltas.

        Full rescans broadcast each shard's whole scope; otherwise each dirty
        node's state travels only to the shards whose scope contains it --
        interior changes stay with their owner, boundary-crossing changes
        additionally refresh the neighbors' ghosts.

        The whole exchange -- payload building, pipe round-trips, delta
        folding -- self-attributes to the ``frontier_exchange`` phase;
        per-worker summaries piggybacked on ``apply`` replies are filed under
        their shard index as they arrive.
        """
        instr = self._instr
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        if self._needs_full_rescan:
            self._round_results = None  # mirrors are being reloaded
            self._owner_synced = None
            self._owners_pending = set()
            self.configuration.drain_dirty()
            messages = {
                index: ("load", self._states_payload(self.partition.scope(index)))
                for index in range(self.partition.k)
            }
            if timed:
                instr.count("full_rescans")
                instr.count("frontier_messages", len(messages))
                instr.count(
                    "frontier_bytes_sent",
                    sum(len(pickle.dumps(message[1])) for message in messages.values()),
                )
            answers = self._command(messages)
            self._enabled = {}
            for enabled in answers.values():
                for node, (name, layer) in enabled.items():
                    self._enabled[node] = _RemoteAction(name, layer)
            self._needs_full_rescan = False
            self._invalidate_enabled_view()
            if timed:
                instr.count(
                    "frontier_bytes_received",
                    sum(len(pickle.dumps(reply)) for reply in answers.values()),
                )
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            if self.race_checker is not None:
                self.race_checker.audit_mirrors(self)
            return
        detail = self.configuration.drain_dirty_detail()
        if not detail:
            if timed:
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            return
        if self._round_results is not None:
            # A speculative round was never committed (the configuration was
            # mutated between an enabled-set refresh and the step that would
            # have consumed it): the worker mirrors have run ahead of the
            # authoritative state, so reload them wholesale.
            self._round_results = None
            self._owner_synced = None
            self._owners_pending = set()
            self._needs_full_rescan = True
            if timed:
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            self._refresh_enabled()
            return
        dirty = {node for node in detail if node in self._actions}
        if self._shm_view is not None:
            try:
                # Encode every pending node into the segment *before* the
                # sends: workers read it while handling the command, and the
                # coordinator blocks on their replies, so nothing races.
                self._shm_view.sync()
            except ArrayViewUnsupported:
                self._disable_shm()
        # Under the synchronous daemon the coming selection is known to be
        # the whole enabled set, so fuse apply+execute into one ``round``
        # trip per shard and stash the speculative execution results.  The
        # race checker needs the two-phase shape for its audits, so it keeps
        # the classic path.
        fused = (
            self.fused_rounds
            and isinstance(self.daemon, SynchronousDaemon)
            and self.race_checker is None
        )
        command = "round" if fused else "apply"
        synced = self._owner_synced
        self._owner_synced = None
        pending_owners = self._owners_pending
        self._owners_pending = set()
        frozen = tuple(self._frozen)
        messages: dict[int, tuple] = {}
        for index in range(self.partition.k):
            relevant = dirty & self.partition.scope(index)
            if synced:
                relevant = {
                    node
                    for node in relevant
                    if not self._owner_already_has(index, node, detail, synced)
                }
            if relevant or index in pending_owners:
                payload = self._delta_payload(relevant, detail)
                messages[index] = (
                    (command, payload, frozen) if fused else (command, payload)
                )
        if not messages:
            if timed:
                instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
            return
        if fused:
            # Shards with untouched mirrors still hold enabled nodes that the
            # synchronous step will select; they join the round with an empty
            # delta purely to execute their share.
            for node in self._enabled:
                owner = self.partition.owner_of(node)
                if owner not in messages:
                    messages[owner] = ("round", {}, frozen)
        if timed:
            instr.count("frontier_messages", len(messages))
            instr.count(
                "frontier_bytes_sent",
                sum(len(pickle.dumps(message[1])) for message in messages.values()),
            )
            instr.gauge("dirty_set_size", len(dirty))
        answers = self._command(messages)
        for index, delta in answers.items():
            perf = delta.get("perf")
            if perf is not None:
                instr.record_shard(index, perf)
            for node in delta["clear"]:
                if self._enabled.pop(node, None) is not None:
                    self._invalidate_enabled_view()
            for node, (name, layer) in delta["set"].items():
                if node not in self._enabled:
                    self._invalidate_enabled_view()
                self._enabled[node] = _RemoteAction(name, layer)
        if fused:
            merged: dict[int, tuple[str, dict[str, Any]]] = {}
            for delta in answers.values():
                merged.update(delta.get("executed", {}))
            self._round_results = merged
        if timed:
            instr.count(
                "frontier_bytes_received",
                sum(len(pickle.dumps(reply)) for reply in answers.values()),
            )
            instr.phase_time(PHASE_FRONTIER_EXCHANGE, time.perf_counter() - started)
        if self.race_checker is not None:
            self.race_checker.audit_mirrors(self)

    def _owner_already_has(
        self,
        index: int,
        node: int,
        detail: Mapping[int, "frozenset | None"],
        synced: Mapping[int, Mapping[str, Any]],
    ) -> bool:
        """Whether shard ``index`` -- as ``node``'s owner -- already folded
        this delta by committing its own speculative writes.

        True only when every journaled variable carries exactly the value the
        worker committed; any later overwrite (scenario surgery between
        steps) or a whole-state replacement sends the node normally.
        """
        if self.partition.owner_of(node) != index:
            return False
        writes = synced.get(node)
        names = detail[node]
        if writes is None or names is None:
            return False
        state = self.configuration.peek_state(node)
        return all(
            name in writes and name in state and state[name] == writes[name]
            for name in names
        )

    def _execute_selected(
        self, enabled: Mapping[int, Any], selected: Sequence[int]
    ) -> tuple[list[tuple[int, str]], dict[int, dict[str, object]]]:
        """Fan the selected processors out to their owning shards.

        Each shard executes its share against its beginning-of-step mirror;
        the answers are re-assembled in the daemon's selection order, so the
        step record (and the write-application order) is byte-identical to
        the single-process step.

        When the last frontier exchange was a fused ``round``, the workers
        already executed every enabled node speculatively and the results sit
        in ``_round_results``; the selection is served from that stash --
        valid because the configuration has not changed since the exchange --
        and the second round-trip disappears entirely.
        """
        stash = self._round_results
        if stash is not None:
            self._round_results = None
            if len(stash) == len(selected) and all(node in stash for node in selected):
                executed = [(node, stash[node][0]) for node in selected]
                pending_writes = {node: stash[node][1] for node in selected}
                # Commit: the step will apply exactly these values, which the
                # owning workers already folded into their mirrors.
                self._owner_synced = {
                    node: writes for node, (_name, writes) in stash.items()
                }
                self._owners_pending = {
                    self.partition.owner_of(node) for node in stash
                }
                return executed, pending_writes
            # The selection diverged from the speculation (daemon swapped or
            # nodes frozen mid-step): the workers committed writes this step
            # will not apply, so reload their mirrors from the -- still
            # beginning-of-step -- authoritative configuration and execute
            # the real selection the classic way.
            self._owner_synced = None
            self._owners_pending = set()
            self._needs_full_rescan = True
            self._refresh_enabled()
        by_shard: dict[int, list[int]] = {}
        for node in selected:
            by_shard.setdefault(self.partition.owner_of(node), []).append(node)
        messages = {index: ("execute", nodes) for index, nodes in by_shard.items()}
        answers = self._command(messages)
        if self.race_checker is not None:
            self.race_checker.audit_execution(self, by_shard, answers)
        results: dict[int, tuple[str, dict[str, object]]] = {}
        for answer in answers.values():
            results.update(answer)
        executed = [(node, results[node][0]) for node in selected]
        pending_writes = {node: results[node][1] for node in selected}
        return executed, pending_writes

    def set_network(self, network: RootedNetwork, reinitialize: Iterable[int] = ()) -> None:
        """Dynamic topology change: re-derive ghosts, re-arm the workers.

        The blocks survive (processor count is invariant); only the cut --
        and with it every ghost set -- changes.  The base class queues a full
        rescan, so the next enabled-set access reloads every worker's mirror
        on the new topology.
        """
        super().set_network(network, reinitialize=reinitialize)
        self.partition = self.partition.rebind(network)
        self._round_results = None
        self._owner_synced = None
        self._owners_pending = set()
        # A new topology changes the CSR layout of map columns; rather than
        # renegotiating the segment with live workers, shared-memory deltas
        # simply stop for the rest of the run.
        self._disable_shm()
        self._command(
            {
                index: ("network", network, tuple(self.partition.ghosts(index)))
                for index in range(self.partition.k)
            }
        )

    def set_configuration(self, configuration: Configuration) -> None:
        """Replace the run's configuration (the base queues a full rescan).

        The coordinator now owns a *new* journaled Configuration copy, so the
        shared-memory encoder view is rebuilt against it; the freshly-created
        view marks every node pending, which re-encodes the whole state into
        the segment on the next exchange.
        """
        super().set_configuration(configuration)
        self._round_results = None
        self._owner_synced = None
        self._owners_pending = set()
        if self._shm_view is not None:
            self._shm_view.detach()
            try:
                self._shm_view = ArrayView(
                    self.network,
                    self.protocol,
                    self.configuration,
                    buffers=self._shm_buffers,
                )
            except ArrayViewUnsupported:
                self._shm_view = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop and reap the shard workers (idempotent).

        With instrumentation attached, each worker's final cumulative summary
        is drained first (best effort -- a crashed worker just keeps its last
        piggybacked snapshot), so ``load``/``execute`` time that never rode an
        ``apply`` reply still reaches the per-shard report.
        """
        if self._closed:
            return
        if self._instr.enabled:
            self._collect_worker_perf()
        self._closed = True
        self._finalizer.detach()
        _close_handles(self._shards)
        self._disable_shm()
        self._shm_buffers = None  # release the exports so the mapping closes
        if self._shm is not None:
            self._shm_finalizer.detach()
            _release_shm(self._shm)
            self._shm = None

    def _collect_worker_perf(self) -> None:
        for index, shard in enumerate(self._shards):
            try:
                shard.send(("perf",))
                reply = shard.recv()
            except Exception:  # worker already gone; keep the last snapshot
                continue
            if reply and reply[0] == "ok":
                self._instr.record_shard(index, reply[1])

    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedScheduler(protocol={self.protocol.name!r}, "
            f"network={self.network.name!r}, daemon={self.daemon.name!r}, "
            f"shards={self.partition.k}, mode={self.mode!r}, steps={self._step_index})"
        )


__all__ = ["MODES", "ShardedScheduler", "default_mode"]
