"""Node-block partitioning for the sharded simulation engine.

A :class:`Partition` splits the network's processors into ``k`` disjoint
*blocks*, one per shard.  Each shard simulates its block and keeps read-only
*ghost* copies of the block's cut neighborhood -- exactly the processors whose
variables a block-local guard or statement may read (a processor reads only
its closed neighborhood), so a shard never needs state beyond
``block ∪ ghosts``.

Three deterministic strategies ship:

* ``bfs`` (default) -- chunk the breadth-first visit order from the root into
  ``k`` balanced runs.  BFS order keeps neighborhoods contiguous, which is
  what makes the cut small on the mesh-like and tree-like topologies the
  experiments sweep;
* ``greedy`` -- grow the ``k`` blocks node by node, always extending the
  currently smallest block with the frontier node that has the most
  neighbors already inside it (fewest new cut edges), tie-broken by node id;
* ``contiguous`` -- plain node-id ranges; the baseline the tests compare
  against and the right choice when node ids already encode locality.

All strategies are pure functions of ``(network, k, strategy)``: the same
inputs always produce the same blocks, which the sharded engine's determinism
guarantee rests on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ReproError
from repro.graphs.network import RootedNetwork

#: The partition strategies :func:`partition_network` implements.
PARTITION_STRATEGIES = ("bfs", "greedy", "contiguous")

#: The default strategy (and the one the ``scheduler-sharded`` engine uses
#: when a :class:`~repro.api.spec.RunSpec` does not name one).
DEFAULT_STRATEGY = "bfs"


class PartitionError(ReproError):
    """A partition request that cannot be satisfied."""


def normalize_strategy(name: str) -> str:
    """Validate a partition strategy name."""
    if name not in PARTITION_STRATEGIES:
        raise PartitionError(
            f"unknown partition strategy {name!r}; choose from {sorted(PARTITION_STRATEGIES)}"
        )
    return name


@dataclass(frozen=True)
class Partition:
    """``k`` disjoint node blocks covering a network, with their ghost sets.

    ``blocks[i]`` is shard ``i``'s ascending node tuple; ``ghosts(i)`` is its
    cut neighborhood -- every node outside the block adjacent to a node
    inside it.  ``scope(i) = block ∪ ghosts`` is exactly the state a shard
    needs to evaluate its block's guards and statements.
    """

    network: RootedNetwork
    blocks: tuple[tuple[int, ...], ...]
    strategy: str

    def __post_init__(self) -> None:
        seen: dict[int, int] = {}
        for index, block in enumerate(self.blocks):
            if not block:
                raise PartitionError(f"partition block {index} is empty")
            for node in block:
                if node in seen:
                    raise PartitionError(
                        f"node {node} appears in blocks {seen[node]} and {index}"
                    )
                seen[node] = index
        if len(seen) != self.network.n or any(
            not 0 <= node < self.network.n for node in seen
        ):
            raise PartitionError(
                f"blocks must cover exactly the {self.network.n} network nodes"
            )
        object.__setattr__(self, "_owner", tuple(seen[node] for node in range(self.network.n)))
        ghosts = []
        scopes = []
        for block in self.blocks:
            members = frozenset(block)
            ghost = frozenset(
                neighbor
                for node in block
                for neighbor in self.network.neighbor_set(node)
                if neighbor not in members
            )
            ghosts.append(ghost)
            scopes.append(members | ghost)
        object.__setattr__(self, "_ghosts", tuple(ghosts))
        object.__setattr__(self, "_scopes", tuple(scopes))

    @property
    def k(self) -> int:
        """Number of shards."""
        return len(self.blocks)

    def owner_of(self, node: int) -> int:
        """The shard whose block contains ``node``."""
        return self._owner[node]  # type: ignore[attr-defined]

    def block(self, shard: int) -> tuple[int, ...]:
        """Shard ``shard``'s nodes, ascending."""
        return self.blocks[shard]

    def ghosts(self, shard: int) -> frozenset[int]:
        """The cut neighborhood of shard ``shard``'s block."""
        return self._ghosts[shard]  # type: ignore[attr-defined]

    def scope(self, shard: int) -> frozenset[int]:
        """``block ∪ ghosts``: every node whose state the shard reads."""
        return self._scopes[shard]  # type: ignore[attr-defined]

    def cut_edges(self) -> tuple[tuple[int, int], ...]:
        """Links whose endpoints live in different blocks, sorted."""
        return tuple(
            sorted(
                (u, v)
                for u, v in self.network.edges()
                if self.owner_of(u) != self.owner_of(v)
            )
        )

    def rebind(self, network: RootedNetwork) -> "Partition":
        """The same blocks on a changed network (dynamic-topology scenarios).

        Link changes keep the processor count, so the blocks survive verbatim;
        only the ghost sets (cut neighborhoods) are recomputed.
        """
        if network.n != self.network.n:
            raise PartitionError(
                f"cannot rebind a {self.network.n}-node partition to a "
                f"{network.n}-node network"
            )
        return Partition(network=network, blocks=self.blocks, strategy=self.strategy)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(block)) for block in self.blocks)
        return (
            f"Partition(strategy={self.strategy!r}, k={self.k}, sizes=[{sizes}], "
            f"cut={len(self.cut_edges())})"
        )


def _balanced_chunks(order: list[int], k: int) -> tuple[tuple[int, ...], ...]:
    """Split ``order`` into ``k`` consecutive runs whose sizes differ by <= 1."""
    n = len(order)
    base, remainder = divmod(n, k)
    blocks = []
    start = 0
    for index in range(k):
        size = base + (1 if index < remainder else 0)
        blocks.append(tuple(sorted(order[start : start + size])))
        start += size
    return tuple(blocks)


def _bfs_order(network: RootedNetwork) -> list[int]:
    """Breadth-first visit order from the root, following port orders."""
    seen = {network.root}
    order = [network.root]
    queue = deque((network.root,))
    while queue:
        node = queue.popleft()
        for neighbor in network.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def _greedy_blocks(network: RootedNetwork, k: int) -> tuple[tuple[int, ...], ...]:
    """Balanced greedy growth minimizing the number of new cut edges.

    Seeds are spread along the BFS order (so they start far apart), then the
    currently smallest block repeatedly claims the unassigned node with the
    most neighbors already inside it.  Every choice tie-breaks on the node
    id, keeping the result a pure function of the inputs.
    """
    order = _bfs_order(network)
    seeds = [order[(len(order) * index) // k] for index in range(k)]
    # Spreading by BFS position can collide on tiny networks; fall back to
    # the first unused nodes so every block gets a distinct seed.
    used = set()
    for index, seed in enumerate(seeds):
        if seed in used:
            seeds[index] = next(node for node in order if node not in used)
        used.add(seeds[index])

    owner = {seed: index for index, seed in enumerate(seeds)}
    blocks: list[set[int]] = [{seed} for seed in seeds]
    unassigned = set(network.nodes()) - set(seeds)
    while unassigned:
        shard = min(range(k), key=lambda index: (len(blocks[index]), index))
        candidates = {
            neighbor
            for node in blocks[shard]
            for neighbor in network.neighbor_set(node)
            if neighbor in unassigned
        }
        if not candidates:
            # The block's frontier is exhausted (its region is swallowed by
            # other blocks); claim the lowest unassigned node and keep growing
            # from there.
            chosen = min(unassigned)
        else:
            chosen = max(
                sorted(candidates),
                key=lambda node: sum(
                    1 for neighbor in network.neighbor_set(node) if owner.get(neighbor) == shard
                ),
            )
        owner[chosen] = shard
        blocks[shard].add(chosen)
        unassigned.discard(chosen)
    return tuple(tuple(sorted(block)) for block in blocks)


def partition_network(
    network: RootedNetwork, shards: int, strategy: str = DEFAULT_STRATEGY
) -> Partition:
    """Partition ``network`` into (up to) ``shards`` blocks.

    ``shards`` is clamped to the node count -- a block is never empty, so a
    1000-way partition of a 10-node network degenerates to 10 singleton
    blocks rather than failing.
    """
    if shards < 1:
        raise PartitionError(f"shards must be >= 1 (got {shards})")
    strategy = normalize_strategy(strategy)
    k = min(shards, network.n)
    if strategy == "contiguous":
        blocks = _balanced_chunks(list(network.nodes()), k)
    elif strategy == "bfs":
        blocks = _balanced_chunks(_bfs_order(network), k)
    else:
        blocks = _greedy_blocks(network, k)
    return Partition(network=network, blocks=blocks, strategy=strategy)


__all__ = [
    "DEFAULT_STRATEGY",
    "PARTITION_STRATEGIES",
    "Partition",
    "PartitionError",
    "normalize_strategy",
    "partition_network",
]
