"""The per-shard half of the sharded engine: local guard evaluation and
action execution over one node block.

A :class:`ShardWorker` owns one partition block.  It mirrors the coordinator's
configuration for ``block ∪ ghosts`` (the only state a block-local guard or
statement can read), keeps the block's slice of the incremental enabled-set,
and answers four messages:

* ``load``   -- replace the mirrored states wholesale and rescan every block
  guard (run start, corruption bursts, topology changes);
* ``apply``  -- fold a batch of changed node states in and re-evaluate only
  the dirty frontier that reaches into the block (the changed nodes plus
  their block-side neighbors), answering with the *enabled delta*;
* ``execute`` -- run the cached first-enabled action of the named block nodes
  against the beginning-of-step mirror and return their pending writes
  (writes are never applied locally -- they come back through ``apply``, the
  same routed path every other shard's writes take);
* ``round``  -- ``apply`` and ``execute`` fused into one round-trip: fold the
  deltas, re-evaluate the frontier, then speculatively execute *every*
  non-frozen enabled block node against the updated (beginning-of-step)
  mirror -- and locally commit the resulting writes to the mirror, so the
  coordinator never has to ship a node's own writes back to its owner.
  Sound only under the synchronous daemon, where the coordinator knows the
  whole enabled set will be selected; the coordinator keeps the reply's
  ``executed`` map, serves the selection from it without a second trip, and
  forces a full ``load`` whenever the actual selection diverges from the
  speculation (mid-step daemon swaps, configuration surgery);
* ``network`` -- swap the topology (dynamic-network scenarios): rebuild the
  block's action tables and ghost set; the coordinator follows up with a
  ``load``.

The same object runs in two harnesses: in-process (``mode="inline"``, used by
tests and as the portability fallback) and inside a forked worker process
(:func:`shard_process_main`), so the algorithm under test and the algorithm
in production are literally the same code.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Mapping, Sequence

from repro.errors import ReproError
from repro.graphs.network import RootedNetwork
from repro.obs.instrument import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    PHASE_ACTION_EXEC,
    PHASE_GUARD_EVAL,
)
from repro.runtime.arrayview import ArrayView, ArrayViewUnsupported
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import first_enabled_action


class ShardError(ReproError):
    """A shard worker failed or answered out of protocol."""


class ShardWorker:
    """Executes one partition block's share of every computation step."""

    def __init__(
        self,
        shard_index: int,
        network: RootedNetwork,
        protocol: Protocol,
        block: Sequence[int],
        ghosts: Sequence[int],
        check_guard_locality: bool = False,
        instrument: bool = False,
        shm_buffers: Mapping[str, Any] | None = None,
    ) -> None:
        self.shard_index = shard_index
        self.network = network
        self.protocol = protocol
        self.block = tuple(block)
        self.ghosts = frozenset(ghosts)
        self.check_guard_locality = check_guard_locality
        #: Decode-only array view over the coordinator's shared-memory
        #: mirror.  ``shm_buffers`` maps variable names to int64 arrays that
        #: alias the coordinator's segment (inherited through fork), so a
        #: ``("shm", names)`` delta is decoded locally instead of pickled
        #: across the pipe.  The throwaway Configuration is never read: the
        #: view is used purely through :meth:`ArrayView.decode_node`.
        self._shm_view: ArrayView | None = None
        if shm_buffers is not None:
            try:
                self._shm_view = ArrayView(
                    network, protocol, Configuration(), buffers=shm_buffers
                )
            except ArrayViewUnsupported:
                self._shm_view = None
        #: Local phase timers and counters; cumulative for the worker's
        #: lifetime.  Summaries piggyback on ``apply`` replies and answer the
        #: ``perf`` command, so the coordinator's view is always the latest
        #: totals -- no extra round-trips on the hot path.
        self.instrumentation: Instrumentation = (
            Instrumentation() if instrument else NULL_INSTRUMENTATION
        )
        self._members = frozenset(self.block)
        self._actions = {
            node: tuple(protocol.actions(network, node)) for node in self.block
        }
        self.configuration = Configuration()
        #: node -> currently first-enabled Action, for block nodes only.
        self.enabled: dict[int, Any] = {}
        #: Block nodes whose guards a locally-committed ``round`` left
        #: unevaluated; folded into the next ``apply``'s frontier.
        self._pending_frontier: set[int] = set()

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def load(self, states: Mapping[int, Mapping[str, Any]]) -> dict[int, tuple[str, str]]:
        """Replace the mirrored states and rescan the whole block.

        Returns the full enabled map ``node -> (action name, layer)``.
        """
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        self.configuration = Configuration(states)
        self.enabled = {}
        self._pending_frontier = set()
        for node in self.block:
            action = self._first_enabled(node)
            if action is not None:
                self.enabled[node] = action
        if timed:
            instr.count("guards_evaluated", len(self.block))
            instr.count("full_rescans")
            instr.phase_time(PHASE_GUARD_EVAL, time.perf_counter() - started)
        return {node: (action.name, action.layer) for node, action in self.enabled.items()}

    def apply(
        self, deltas: Mapping[int, tuple[str, Mapping[str, Any]]]
    ) -> dict[str, Any]:
        """Fold changed node states in and re-evaluate the block-side frontier.

        ``deltas`` carries, for every changed node visible to this shard (own
        or ghost), either ``("vars", {name: value})`` -- just the written
        variables, the common case -- ``("shm", names)`` -- the named
        variables are read out of the shared-memory mirror instead of the
        message -- or ``("full", state)`` when the node's whole local state
        was replaced (a variable may have been dropped).
        The re-evaluated frontier is the changed block nodes plus the
        block-side neighbors of every changed node -- the sharded restriction
        of the incremental scheduler's dirty frontier.  Returns the enabled
        delta: ``set`` maps newly enabled (or action-changed) nodes to
        ``(name, layer)``, ``clear`` lists nodes that became disabled.  When
        instrumented, the reply also carries ``perf``: the worker's
        cumulative summary, piggybacked so the coordinator's per-shard view
        costs no extra round-trip.
        """
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        # Start from the frontier a locally-committed round left behind: its
        # writes are already in the mirror but their guards were not
        # re-evaluated (the cross-shard writes they may depend on only arrive
        # with this very delta batch).
        frontier: set[int] = self._pending_frontier
        self._pending_frontier = set()
        for node, (kind, values) in deltas.items():
            if kind == "full":
                self.configuration.replace_node(node, values)
            elif kind == "shm":
                if self._shm_view is None:
                    raise ShardError(
                        f"shard {self.shard_index} received a shared-memory "
                        "delta but has no shared-memory mirror"
                    )
                self.configuration.update_node(
                    node, self._shm_view.decode_node(node, values)
                )
            else:
                self.configuration.update_node(node, values)
            if node in self._members:
                frontier.add(node)
            frontier.update(self.network.neighbor_set(node) & self._members)
        updates: dict[int, tuple[str, str]] = {}
        cleared: list[int] = []
        for node in frontier:
            action = self._first_enabled(node)
            if action is None:
                if self.enabled.pop(node, None) is not None:
                    cleared.append(node)
            else:
                previous = self.enabled.get(node)
                self.enabled[node] = action
                if (
                    previous is None
                    or previous.name != action.name
                    or previous.layer != action.layer
                ):
                    updates[node] = (action.name, action.layer)
        reply: dict[str, Any] = {"set": updates, "clear": cleared}
        if timed:
            instr.count("guards_evaluated", len(frontier))
            instr.gauge("frontier_size", len(frontier))
            instr.gauge("delta_batch_size", len(deltas))
            instr.phase_time(PHASE_GUARD_EVAL, time.perf_counter() - started)
            reply["perf"] = instr.summary()
        return reply

    def execute(self, nodes: Sequence[int]) -> dict[int, tuple[str, dict[str, Any]]]:
        """Run the cached enabled action of each selected block node.

        Every view reads the mirror as it stands -- the beginning-of-step
        configuration, because writes only ever arrive through ``apply`` --
        which is exactly the composite-atomicity semantics of the
        single-process step.
        """
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        out: dict[int, tuple[str, dict[str, Any]]] = {}
        for node in nodes:
            action = self.enabled.get(node)
            if action is None:
                raise ShardError(
                    f"shard {self.shard_index} was asked to execute disabled "
                    f"processor {node}"
                )
            view = ProcessorView(node, self.network, self.configuration)
            action.execute(view)
            out[node] = (action.name, view.pending_writes)
        if timed:
            instr.count("actions_executed", len(out))
            instr.phase_time(PHASE_ACTION_EXEC, time.perf_counter() - started)
        return out

    def round_step(
        self,
        deltas: Mapping[int, tuple[str, Mapping[str, Any]]],
        frozen: Sequence[int] = (),
    ) -> dict[str, Any]:
        """``apply`` and ``execute`` fused into one message (``round``).

        Folds ``deltas`` exactly like :meth:`apply`, then speculatively runs
        the cached enabled action of every non-frozen enabled block node
        against the updated mirror -- which is the beginning-of-step
        configuration for the step about to happen.  The coordinator only
        sends this under the synchronous daemon, where the selection is known
        in advance to be exactly that node set, so nothing is wasted and the
        second (``execute``) round-trip disappears.

        The writes are then committed to the local mirror immediately (all
        executions first, composite atomicity): the coordinator applies the
        identical values to the authoritative configuration, so the next
        round's deltas can skip every node whose own writes were the only
        change -- interior writes stop crossing the pipe altogether.  The
        written nodes and their block-side neighbors are parked in the
        pending frontier; their guards re-evaluate on the next ``apply``,
        when the matching cross-shard boundary writes have arrived.  The
        reply extends the ``apply`` reply with ``executed``:
        ``node -> (action name, pending writes)``.
        """
        reply = self.apply(deltas)
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        skip = frozenset(frozen)
        targets = [
            (node, action) for node, action in self.enabled.items() if node not in skip
        ]
        executed: dict[int, tuple[str, dict[str, Any]]] = {}
        for node, action in targets:
            view = ProcessorView(node, self.network, self.configuration)
            action.execute(view)
            executed[node] = (action.name, view.pending_writes)
        pending = self._pending_frontier
        for node, (_name, writes) in executed.items():
            if writes:
                self.configuration.update_node(node, writes)
                pending.add(node)
                pending.update(self.network.neighbor_set(node) & self._members)
        reply["executed"] = executed
        if timed:
            instr.count("actions_executed", len(executed))
            instr.count("fused_rounds")
            instr.phase_time(PHASE_ACTION_EXEC, time.perf_counter() - started)
            reply["perf"] = instr.summary()
        return reply

    def perf(self) -> dict[str, Any]:
        """The worker's cumulative instrumentation summary (``perf`` command)."""
        return self.instrumentation.summary()

    def mirror(self) -> dict[int, dict[str, Any]]:
        """Snapshot of the worker's mirrored states (``mirror`` command).

        The race checker (:mod:`repro.lint.racecheck`) compares this against
        the coordinator's authoritative journal: any divergence means a
        frontier-exchange gap -- a ghost (or even an own node) this shard
        would read stale.  Shallow per-node copies only; values are never
        mutated in place by either side.
        """
        present = set(self.configuration.nodes())
        out: dict[int, dict[str, Any]] = {}
        for node in list(self.block) + sorted(self.ghosts):
            if node in present:
                out[node] = dict(self.configuration.peek_state(node))
        return out

    def set_network(self, network: RootedNetwork, ghosts: Sequence[int]) -> None:
        """Swap the topology: new action tables, new ghost set.

        The enabled cache and the mirror are left stale on purpose; the
        coordinator always follows a topology change with a full ``load``.
        """
        self.network = network
        self.ghosts = frozenset(ghosts)
        self._actions = {
            node: tuple(self.protocol.actions(network, node)) for node in self.block
        }

    # ------------------------------------------------------------------
    # Dispatch (shared by the inline and the process harness)
    # ------------------------------------------------------------------
    def dispatch(self, message: tuple[str, ...]) -> Any:
        """Route one ``(command, *payload)`` message to its handler."""
        command = message[0]
        if command == "load":
            return self.load(message[1])
        if command == "apply":
            return self.apply(message[1])
        if command == "round":
            return self.round_step(message[1], message[2])
        if command == "execute":
            return self.execute(message[1])
        if command == "network":
            return self.set_network(message[1], message[2])
        if command == "perf":
            return self.perf()
        if command == "mirror":
            return self.mirror()
        raise ShardError(f"unknown shard command {command!r}")

    def _first_enabled(self, node: int):
        return first_enabled_action(
            node,
            self.network,
            self.configuration,
            self._actions[node],
            check_guard_locality=self.check_guard_locality,
        )


def shard_process_main(connection, factory) -> None:
    """The worker-process loop: build the worker, answer messages until stop.

    Runs in a *forked* child, so ``factory`` (and the protocol closures it
    captures) is inherited, never pickled; only the per-message payloads --
    plain node-state dictionaries, node lists, and the occasional network --
    cross the pipe.  A crash is reported back as ``("error", message,
    traceback)`` and ends the process; the coordinator re-raises it as a
    :class:`ShardError`.
    """
    worker = factory()
    try:
        while True:
            try:
                message = connection.recv()
            except EOFError:
                break
            if message[0] == "stop":
                break
            try:
                result = worker.dispatch(message)
            except BaseException as exc:  # surface the failure, then die
                connection.send(
                    ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
                )
                break
            connection.send(("ok", result))
    finally:
        connection.close()


__all__ = ["ShardError", "ShardWorker", "shard_process_main"]
