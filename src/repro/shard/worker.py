"""The per-shard half of the sharded engine: local guard evaluation and
action execution over one node block.

A :class:`ShardWorker` owns one partition block.  It mirrors the coordinator's
configuration for ``block ∪ ghosts`` (the only state a block-local guard or
statement can read), keeps the block's slice of the incremental enabled-set,
and answers four messages:

* ``load``   -- replace the mirrored states wholesale and rescan every block
  guard (run start, corruption bursts, topology changes);
* ``apply``  -- fold a batch of changed node states in and re-evaluate only
  the dirty frontier that reaches into the block (the changed nodes plus
  their block-side neighbors), answering with the *enabled delta*;
* ``execute`` -- run the cached first-enabled action of the named block nodes
  against the beginning-of-step mirror and return their pending writes
  (writes are never applied locally -- they come back through ``apply``, the
  same routed path every other shard's writes take);
* ``network`` -- swap the topology (dynamic-network scenarios): rebuild the
  block's action tables and ghost set; the coordinator follows up with a
  ``load``.

The same object runs in two harnesses: in-process (``mode="inline"``, used by
tests and as the portability fallback) and inside a forked worker process
(:func:`shard_process_main`), so the algorithm under test and the algorithm
in production are literally the same code.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Mapping, Sequence

from repro.errors import ReproError
from repro.graphs.network import RootedNetwork
from repro.obs.instrument import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    PHASE_ACTION_EXEC,
    PHASE_GUARD_EVAL,
)
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import first_enabled_action


class ShardError(ReproError):
    """A shard worker failed or answered out of protocol."""


class ShardWorker:
    """Executes one partition block's share of every computation step."""

    def __init__(
        self,
        shard_index: int,
        network: RootedNetwork,
        protocol: Protocol,
        block: Sequence[int],
        ghosts: Sequence[int],
        check_guard_locality: bool = False,
        instrument: bool = False,
    ) -> None:
        self.shard_index = shard_index
        self.network = network
        self.protocol = protocol
        self.block = tuple(block)
        self.ghosts = frozenset(ghosts)
        self.check_guard_locality = check_guard_locality
        #: Local phase timers and counters; cumulative for the worker's
        #: lifetime.  Summaries piggyback on ``apply`` replies and answer the
        #: ``perf`` command, so the coordinator's view is always the latest
        #: totals -- no extra round-trips on the hot path.
        self.instrumentation: Instrumentation = (
            Instrumentation() if instrument else NULL_INSTRUMENTATION
        )
        self._members = frozenset(self.block)
        self._actions = {
            node: tuple(protocol.actions(network, node)) for node in self.block
        }
        self.configuration = Configuration()
        #: node -> currently first-enabled Action, for block nodes only.
        self.enabled: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def load(self, states: Mapping[int, Mapping[str, Any]]) -> dict[int, tuple[str, str]]:
        """Replace the mirrored states and rescan the whole block.

        Returns the full enabled map ``node -> (action name, layer)``.
        """
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        self.configuration = Configuration(states)
        self.enabled = {}
        for node in self.block:
            action = self._first_enabled(node)
            if action is not None:
                self.enabled[node] = action
        if timed:
            instr.count("guards_evaluated", len(self.block))
            instr.count("full_rescans")
            instr.phase_time(PHASE_GUARD_EVAL, time.perf_counter() - started)
        return {node: (action.name, action.layer) for node, action in self.enabled.items()}

    def apply(
        self, deltas: Mapping[int, tuple[str, Mapping[str, Any]]]
    ) -> dict[str, Any]:
        """Fold changed node states in and re-evaluate the block-side frontier.

        ``deltas`` carries, for every changed node visible to this shard (own
        or ghost), either ``("vars", {name: value})`` -- just the written
        variables, the common case -- or ``("full", state)`` when the node's
        whole local state was replaced (a variable may have been dropped).
        The re-evaluated frontier is the changed block nodes plus the
        block-side neighbors of every changed node -- the sharded restriction
        of the incremental scheduler's dirty frontier.  Returns the enabled
        delta: ``set`` maps newly enabled (or action-changed) nodes to
        ``(name, layer)``, ``clear`` lists nodes that became disabled.  When
        instrumented, the reply also carries ``perf``: the worker's
        cumulative summary, piggybacked so the coordinator's per-shard view
        costs no extra round-trip.
        """
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        frontier: set[int] = set()
        for node, (kind, values) in deltas.items():
            if kind == "full":
                self.configuration.replace_node(node, values)
            else:
                self.configuration.update_node(node, values)
            if node in self._members:
                frontier.add(node)
            frontier.update(self.network.neighbor_set(node) & self._members)
        updates: dict[int, tuple[str, str]] = {}
        cleared: list[int] = []
        for node in frontier:
            action = self._first_enabled(node)
            if action is None:
                if self.enabled.pop(node, None) is not None:
                    cleared.append(node)
            else:
                previous = self.enabled.get(node)
                self.enabled[node] = action
                if (
                    previous is None
                    or previous.name != action.name
                    or previous.layer != action.layer
                ):
                    updates[node] = (action.name, action.layer)
        reply: dict[str, Any] = {"set": updates, "clear": cleared}
        if timed:
            instr.count("guards_evaluated", len(frontier))
            instr.gauge("frontier_size", len(frontier))
            instr.gauge("delta_batch_size", len(deltas))
            instr.phase_time(PHASE_GUARD_EVAL, time.perf_counter() - started)
            reply["perf"] = instr.summary()
        return reply

    def execute(self, nodes: Sequence[int]) -> dict[int, tuple[str, dict[str, Any]]]:
        """Run the cached enabled action of each selected block node.

        Every view reads the mirror as it stands -- the beginning-of-step
        configuration, because writes only ever arrive through ``apply`` --
        which is exactly the composite-atomicity semantics of the
        single-process step.
        """
        instr = self.instrumentation
        timed = instr.enabled
        started = time.perf_counter() if timed else 0.0
        out: dict[int, tuple[str, dict[str, Any]]] = {}
        for node in nodes:
            action = self.enabled.get(node)
            if action is None:
                raise ShardError(
                    f"shard {self.shard_index} was asked to execute disabled "
                    f"processor {node}"
                )
            view = ProcessorView(node, self.network, self.configuration)
            action.execute(view)
            out[node] = (action.name, view.pending_writes)
        if timed:
            instr.count("actions_executed", len(out))
            instr.phase_time(PHASE_ACTION_EXEC, time.perf_counter() - started)
        return out

    def perf(self) -> dict[str, Any]:
        """The worker's cumulative instrumentation summary (``perf`` command)."""
        return self.instrumentation.summary()

    def mirror(self) -> dict[int, dict[str, Any]]:
        """Snapshot of the worker's mirrored states (``mirror`` command).

        The race checker (:mod:`repro.lint.racecheck`) compares this against
        the coordinator's authoritative journal: any divergence means a
        frontier-exchange gap -- a ghost (or even an own node) this shard
        would read stale.  Shallow per-node copies only; values are never
        mutated in place by either side.
        """
        present = set(self.configuration.nodes())
        out: dict[int, dict[str, Any]] = {}
        for node in list(self.block) + sorted(self.ghosts):
            if node in present:
                out[node] = dict(self.configuration.peek_state(node))
        return out

    def set_network(self, network: RootedNetwork, ghosts: Sequence[int]) -> None:
        """Swap the topology: new action tables, new ghost set.

        The enabled cache and the mirror are left stale on purpose; the
        coordinator always follows a topology change with a full ``load``.
        """
        self.network = network
        self.ghosts = frozenset(ghosts)
        self._actions = {
            node: tuple(self.protocol.actions(network, node)) for node in self.block
        }

    # ------------------------------------------------------------------
    # Dispatch (shared by the inline and the process harness)
    # ------------------------------------------------------------------
    def dispatch(self, message: tuple[str, ...]) -> Any:
        """Route one ``(command, *payload)`` message to its handler."""
        command = message[0]
        if command == "load":
            return self.load(message[1])
        if command == "apply":
            return self.apply(message[1])
        if command == "execute":
            return self.execute(message[1])
        if command == "network":
            return self.set_network(message[1], message[2])
        if command == "perf":
            return self.perf()
        if command == "mirror":
            return self.mirror()
        raise ShardError(f"unknown shard command {command!r}")

    def _first_enabled(self, node: int):
        return first_enabled_action(
            node,
            self.network,
            self.configuration,
            self._actions[node],
            check_guard_locality=self.check_guard_locality,
        )


def shard_process_main(connection, factory) -> None:
    """The worker-process loop: build the worker, answer messages until stop.

    Runs in a *forked* child, so ``factory`` (and the protocol closures it
    captures) is inherited, never pickled; only the per-message payloads --
    plain node-state dictionaries, node lists, and the occasional network --
    cross the pipe.  A crash is reported back as ``("error", message,
    traceback)`` and ends the process; the coordinator re-raises it as a
    :class:`ShardError`.
    """
    worker = factory()
    try:
        while True:
            try:
                message = connection.recv()
            except EOFError:
                break
            if message[0] == "stop":
                break
            try:
                result = worker.dispatch(message)
            except BaseException as exc:  # surface the failure, then die
                connection.send(
                    ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
                )
                break
            connection.send(("ok", result))
    finally:
        connection.close()


__all__ = ["ShardError", "ShardWorker", "shard_process_main"]
