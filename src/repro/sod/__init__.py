"""Applications of the chordal sense of direction.

The thesis motivates network orientation by what it buys the layers above
(Sections 1.3-1.4 and Chapter 5): once every processor has a globally
consistent name and chordal edge labels, classic distributed computations get
cheaper because a processor can locally determine *which* processor is on the
other side of each link.  This package implements the applications used by the
message-complexity experiment (EXP-A1) and the routing example:

* :mod:`~repro.sod.traversal` -- depth-first traversal and broadcast of an
  arbitrary network, with and without a sense of direction;
* :mod:`~repro.sod.election` -- leader election on a ring, using the ring
  orientation derived from the chordal labels versus an unoriented ring;
* :mod:`~repro.sod.routing` -- chordal greedy routing (with a tree fallback)
  on an oriented network.
"""

from repro.sod.traversal import (
    dfs_traversal_with_sod,
    dfs_traversal_without_sod,
    broadcast_with_sod,
    broadcast_without_sod,
)
from repro.sod.election import ring_election_oriented, ring_election_unoriented
from repro.sod.routing import ChordalRouter, RouteResult

__all__ = [
    "dfs_traversal_with_sod",
    "dfs_traversal_without_sod",
    "broadcast_with_sod",
    "broadcast_without_sod",
    "ring_election_oriented",
    "ring_election_unoriented",
    "ChordalRouter",
    "RouteResult",
]
