"""Leader election on a ring, with and without an orientation.

The ring-orientation literature the thesis surveys ([19, 23, 9] and Tel's
overview) uses leader election as the standard consumer of an orientation:

* On an *oriented* ring every processor knows which of its two links is
  "clockwise" -- exactly what the chordal labels provide, since the link
  labeled ``N - 1`` leads to the successor on the name cycle (the neighbor
  whose name is one higher).  Chang-Roberts election can then be run
  unidirectionally: a processor forwards only identifiers larger than its own,
  costing between ``n`` and ``O(n^2)`` messages, ``O(n log n)`` on average.
* On an *unoriented* ring a processor cannot tell its two links apart, so the
  simple strategy is to campaign in both directions and absorb smaller
  identifiers; every surviving identifier travels both ways, roughly doubling
  the traffic and pushing the worst case firmly to ``Theta(n^2)``.

Both algorithms are run on the synchronous message-passing simulator; the
identifiers are the (unique) chordal names themselves for the oriented run and
arbitrary unique identifiers for the unoriented run, so the comparison is
purely about what the orientation saves (EXP-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.chordal import ChordalOrientation
from repro.errors import SimulationError
from repro.graphs.network import RootedNetwork
from repro.msgpass.node import Context, NodeProgram
from repro.msgpass.simulator import SynchronousSimulator
from repro.runtime.observers import Observer


@dataclass(frozen=True)
class ElectionOutcome:
    """Result of one election run."""

    messages: int
    rounds: int
    leader_identifier: int


def _require_ring(network: RootedNetwork) -> None:
    if network.num_edges() != network.n or any(network.degree(p) != 2 for p in network.nodes()):
        raise SimulationError("ring election requires a cycle topology")


# ----------------------------------------------------------------------
# Oriented ring: Chang-Roberts over the successor links
# ----------------------------------------------------------------------
class _ChangRoberts(NodeProgram):
    """Unidirectional Chang-Roberts election using the chordal successor link."""

    def __init__(self, orientation: ChordalOrientation) -> None:
        self._orientation = orientation

    def _successor(self, context: Context) -> int:
        # The successor on the virtual name cycle is the neighbor whose name is
        # one higher, i.e. the link labeled (eta_p - eta_q) mod N = N - 1.
        modulus = self._orientation.modulus
        for neighbor in context.neighbors:
            if self._orientation.label(context.node, neighbor) == (modulus - 1) % modulus:
                return neighbor
        # Rings of size 2 degenerate; fall back to the first link.
        return context.neighbors[0]

    def on_start(self, context: Context) -> None:
        identifier = self._orientation.name_of(context.node)
        context.state["id"] = identifier
        context.state["leader"] = None
        context.send(self._successor(context), ("candidate", identifier))

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        kind, value = payload
        own = context.state["id"]
        if kind == "candidate":
            if value > own:
                context.send(self._successor(context), ("candidate", value))
            elif value == own:
                context.state["leader"] = own
                context.send(self._successor(context), ("elected", own))
            # Smaller identifiers are swallowed.
        elif kind == "elected":
            if context.state["leader"] is None:
                context.state["leader"] = value
                context.send(self._successor(context), ("elected", value))
            context.halt()


def ring_election_oriented(
    network: RootedNetwork,
    orientation: ChordalOrientation,
    observers: Sequence[Observer] = (),
) -> ElectionOutcome:
    """Chang-Roberts election on the ring oriented by ``orientation``."""
    _require_ring(network)
    orientation.require_valid(network)
    result = SynchronousSimulator(network, _ChangRoberts(orientation), observers=observers).run()
    leaders = {
        result.state_of(node).get("leader")
        for node in network.nodes()
        if result.state_of(node).get("leader") is not None
    }
    if len(leaders) != 1:
        raise SimulationError(f"oriented election produced leaders {leaders}")
    return ElectionOutcome(
        messages=result.messages_sent, rounds=result.rounds, leader_identifier=leaders.pop()
    )


# ----------------------------------------------------------------------
# Unoriented ring: bidirectional campaign / absorb
# ----------------------------------------------------------------------
class _BidirectionalElection(NodeProgram):
    """Election on an unoriented ring by campaigning in both directions.

    Because a processor cannot tell its two links apart, it campaigns over
    both of them; a candidate identifier is forwarded (away from the link it
    arrived on) whenever it beats the identifier of the processor relaying it,
    and is absorbed otherwise -- i.e. Chang-Roberts run simultaneously in both
    directions.  When a processor receives its own identifier back it declares
    itself leader and announces the result both ways.  Every message of the
    oriented run is thus paid (roughly) twice, which is what the comparison
    quantifies.
    """

    def __init__(self, identifiers: dict[int, int]) -> None:
        self._identifiers = identifiers

    def on_start(self, context: Context) -> None:
        identifier = self._identifiers[context.node]
        context.state["id"] = identifier
        context.state["leader"] = None
        context.send_all(("candidate", identifier))

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        kind, value = payload
        state = context.state
        if kind == "candidate":
            if value == state["id"]:
                if state["leader"] is None:
                    state["leader"] = value
                    context.send_all(("elected", value))
            elif value > state["id"]:
                # Forward away from the sender (the other link of the ring).
                context.send_all(("candidate", value), exclude=sender)
        elif kind == "elected":
            if state["leader"] is None:
                state["leader"] = value
                context.send_all(("elected", value), exclude=sender)
            context.halt()


def ring_election_unoriented(
    network: RootedNetwork,
    identifiers: dict[int, int] | None = None,
    observers: Sequence[Observer] = (),
) -> ElectionOutcome:
    """Bidirectional election on the same ring without using any orientation."""
    _require_ring(network)
    if identifiers is None:
        identifiers = {node: node for node in network.nodes()}
    if len(set(identifiers.values())) != network.n:
        raise SimulationError("election identifiers must be unique")
    result = SynchronousSimulator(
        network, _BidirectionalElection(identifiers), observers=observers
    ).run()
    leaders = {
        result.state_of(node).get("leader")
        for node in network.nodes()
        if result.state_of(node).get("leader") is not None
    }
    if len(leaders) != 1:
        raise SimulationError(f"unoriented election produced leaders {leaders}")
    return ElectionOutcome(
        messages=result.messages_sent, rounds=result.rounds, leader_identifier=leaders.pop()
    )


__all__ = ["ElectionOutcome", "ring_election_oriented", "ring_election_unoriented"]
