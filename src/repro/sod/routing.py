"""Routing on an oriented network using the chordal sense of direction.

Section 1.3 lists routing as the prime consumer of edge labels: "the label of
an edge indicates which direction in the network this edge leads to".  With a
chordal labeling a processor can compute, for every incident link, the *name*
of the processor on the other side, and can therefore forward a packet
addressed to a name without any routing table:

* **greedy chordal step** -- prefer the link whose far-end name is cyclically
  closest to the destination name (the classic routing rule of chordal
  rings); on ring networks, where the chordal naming follows the ring, this
  alone delivers along the shortest forward path;
* **name-guided search with backtracking** -- an arbitrary network is not a
  chordal ring, so greedy progress can stall.  Guaranteed delivery with purely
  local information is obtained by letting the packet perform a depth-first
  search ordered by the greedy preference, carrying the set of names it has
  already visited (which the sense of direction lets every hop interpret).
  The packet therefore never loops and reaches any destination within ``2n``
  hops on a connected network.

The router is deliberately *not* a shortest-path oracle -- it uses only the
information an oriented processor actually has.  Its stretch relative to true
shortest paths is reported by the routing example and exercised in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chordal import ChordalOrientation
from repro.errors import RoutingError
from repro.graphs.network import RootedNetwork
from repro.graphs.properties import bfs_distances


@dataclass(frozen=True)
class RouteResult:
    """A delivered route."""

    source: int
    destination: int
    path: tuple[int, ...]
    greedy_hops: int
    backtrack_hops: int

    @property
    def hops(self) -> int:
        """Total number of links traversed."""
        return len(self.path) - 1


class ChordalRouter:
    """Stateless hop-by-hop router over a valid chordal orientation.

    Parameters
    ----------
    network:
        The oriented network.
    orientation:
        A valid :class:`~repro.core.chordal.ChordalOrientation` of it.
    """

    def __init__(self, network: RootedNetwork, orientation: ChordalOrientation) -> None:
        orientation.require_valid(network)
        self.network = network
        self.orientation = orientation

    # ------------------------------------------------------------------
    # Single forwarding decisions (purely local)
    # ------------------------------------------------------------------
    def preference(self, current: int, neighbor: int, destination_name: int) -> int:
        """Cyclic distance from ``neighbor``'s name to the destination name.

        Smaller is better; ``0`` means the neighbor *is* the destination.
        This is all a processor needs to rank its links, and it is computable
        locally because the neighbor's name follows from the link label.
        """
        name = self.orientation.neighbor_name(current, neighbor)
        return (destination_name - name) % self.orientation.modulus

    def next_hop(
        self, current: int, destination_name: int, excluded: frozenset[int] = frozenset()
    ) -> int | None:
        """The most preferred not-yet-visited neighbor, or ``None`` if all are excluded."""
        candidates = [q for q in self.network.neighbors(current) if q not in excluded]
        if not candidates:
            return None
        return min(candidates, key=lambda q: self.preference(current, q, destination_name))

    # ------------------------------------------------------------------
    # End-to-end routing
    # ------------------------------------------------------------------
    def route(self, source: int, destination: int, max_hops: int | None = None) -> RouteResult:
        """Forward a packet hop by hop from ``source`` to ``destination``.

        The packet performs a greedy-first depth-first search: at every hop it
        moves to the most preferred unvisited neighbor, backtracking when none
        remains.  On a connected network this always delivers within ``2n``
        hops.

        Raises
        ------
        RoutingError
            If the hop budget is exhausted (only possible when ``max_hops`` is
            set below the ``2n`` guarantee).
        """
        if max_hops is None:
            max_hops = 2 * self.network.n + 2
        destination_name = self.orientation.name_of(destination)

        path: list[int] = [source]
        stack: list[int] = [source]
        visited: set[int] = {source}
        greedy_hops = 0
        backtrack_hops = 0

        while stack[-1] != destination:
            if len(path) - 1 >= max_hops:
                raise RoutingError(
                    f"routing from {source} to {destination} exceeded {max_hops} hops"
                )
            current = stack[-1]
            next_node = self.next_hop(current, destination_name, excluded=frozenset(visited))
            if next_node is None:
                stack.pop()
                if not stack:
                    raise RoutingError(
                        f"no route from {source} to {destination}: search exhausted"
                    )
                backtrack_hops += 1
                path.append(stack[-1])
                continue
            current_distance = (destination_name - self.orientation.name_of(current)) % self.orientation.modulus
            next_distance = self.preference(current, next_node, destination_name)
            if next_distance < current_distance:
                greedy_hops += 1
            visited.add(next_node)
            stack.append(next_node)
            path.append(next_node)

        return RouteResult(
            source=source,
            destination=destination,
            path=tuple(path),
            greedy_hops=greedy_hops,
            backtrack_hops=backtrack_hops,
        )

    def route_by_name(self, source: int, destination_name: int, max_hops: int | None = None) -> RouteResult:
        """Route to a *name* (the natural addressing mode once oriented)."""
        return self.route(source, self.orientation.node_named(destination_name), max_hops=max_hops)

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def stretch(self, source: int, destination: int) -> float:
        """Ratio of routed hops to shortest-path hops (1.0 = optimal)."""
        if source == destination:
            return 1.0
        shortest = bfs_distances(self.network, source)[destination]
        return self.route(source, destination).hops / shortest

    def average_stretch(self, sample: list[tuple[int, int]] | None = None) -> float:
        """Mean stretch over all ordered pairs (or an explicit sample of pairs)."""
        pairs = sample
        if pairs is None:
            pairs = [
                (u, v) for u in self.network.nodes() for v in self.network.nodes() if u != v
            ]
        if not pairs:
            return 1.0
        return sum(self.stretch(u, v) for u, v in pairs) / len(pairs)


__all__ = ["ChordalRouter", "RouteResult"]
