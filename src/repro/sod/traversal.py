"""Depth-first traversal and broadcast, with and without a sense of direction.

The classic observation (Santoro 1984; Flocchini, Mans, Santoro 1995 -- the
works the thesis cites as motivation) is that a traversal token in an
*unoriented* network cannot tell whether a neighbor has already been visited:
it must either traverse the link to find out (paying two messages per
non-tree edge) or probe it and wait for a reply.  With a chordal sense of
direction the token can carry the *names* of the visited processors; since a
processor can derive the name behind each of its links from the link label,
it forwards the token only over links leading to unvisited processors, and the
traversal costs ``2(n-1)`` messages instead of ``Theta(m)``.

Both variants are implemented as programs for the synchronous message-passing
simulator, so the message counts reported by EXP-A1 are measured, not assumed.
Broadcast is treated the same way: plain flooding versus flooding in which a
processor uses the sense of direction to skip links whose far end is already
known to have been informed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.chordal import ChordalOrientation
from repro.errors import SimulationError
from repro.graphs.network import RootedNetwork
from repro.msgpass.node import Context, NodeProgram
from repro.msgpass.simulator import SimulationResult, SynchronousSimulator
from repro.runtime.observers import Observer


@dataclass(frozen=True)
class TraversalOutcome:
    """What a traversal/broadcast run produced."""

    messages: int
    rounds: int
    visited: int

    @property
    def complete(self) -> bool:
        """Whether every processor was reached."""
        return self.visited > 0


# ----------------------------------------------------------------------
# Depth-first traversal WITHOUT a sense of direction
# ----------------------------------------------------------------------
class _DFSWithoutSoD(NodeProgram):
    """Classic DFS token traversal: the token must explore every incident link.

    Without a sense of direction a processor cannot tell whether the far end
    of a link has been visited, so it delegates the token over every
    non-parent link once; an already-visited receiver bounces the token
    straight back.  Every non-tree link therefore costs two messages in each
    direction it is probed, giving the classic ``Theta(m)`` message bound the
    sense of direction removes.
    """

    TOKEN = "token"

    def on_start(self, context: Context) -> None:
        state = context.state
        state.setdefault("visited", False)
        state.setdefault("parent", None)
        state.setdefault("delegated", [])  # links the token was sent over
        state.setdefault("pending", None)  # link the token is currently out on
        if context.is_root:
            state["visited"] = True
            self._explore(context)

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        state = context.state
        if not state["visited"]:
            # First visit: adopt the sender as parent and keep exploring.
            state["visited"] = True
            state["parent"] = sender
            self._explore(context)
            return
        if sender == state["pending"]:
            # The token returned from the processor we delegated it to.
            self._explore(context)
            return
        # A probe over a link whose far end (us) is already visited: bounce it
        # back so the sender can try its next link.
        context.send(sender, self.TOKEN)

    def _explore(self, context: Context) -> None:
        state = context.state
        for neighbor in context.neighbors:
            if neighbor == state["parent"] or neighbor in state["delegated"]:
                continue
            state["delegated"].append(neighbor)
            state["pending"] = neighbor
            context.send(neighbor, self.TOKEN)
            return
        state["pending"] = None
        parent = state["parent"]
        if parent is None:
            context.halt()
        else:
            context.send(parent, self.TOKEN)


def dfs_traversal_without_sod(
    network: RootedNetwork, observers: Sequence[Observer] = ()
) -> TraversalOutcome:
    """Run the unoriented DFS traversal and report its message count."""
    result = SynchronousSimulator(network, _DFSWithoutSoD(), observers=observers).run()
    return _outcome(result, network)


# ----------------------------------------------------------------------
# Depth-first traversal WITH a chordal sense of direction
# ----------------------------------------------------------------------
class _DFSWithSoD(NodeProgram):
    """DFS traversal whose token carries the set of visited *names*.

    At each processor the sense of direction turns the visited-name set into a
    visited-link set (the name behind a link is derivable from its label), so
    the token only ever travels over tree links: ``2(n-1)`` messages.
    """

    def __init__(self, orientation: ChordalOrientation) -> None:
        self._orientation = orientation

    def on_start(self, context: Context) -> None:
        context.state.setdefault("parent", None)
        if context.is_root:
            visited = frozenset({self._orientation.name_of(context.node)})
            self._forward(context, visited)

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        kind, visited = payload
        if kind == "token":
            if context.state["parent"] is None and not context.is_root:
                context.state["parent"] = sender
            visited = visited | {self._orientation.name_of(context.node)}
        self._forward(context, visited)

    def _forward(self, context: Context, visited: frozenset[int]) -> None:
        for neighbor in context.neighbors:
            neighbor_name = self._orientation.neighbor_name(context.node, neighbor)
            if neighbor_name not in visited:
                context.send(neighbor, ("token", visited))
                return
        parent = context.state["parent"]
        if parent is not None:
            context.send(parent, ("return", visited))
        else:
            context.halt()


def dfs_traversal_with_sod(
    network: RootedNetwork,
    orientation: ChordalOrientation,
    observers: Sequence[Observer] = (),
) -> TraversalOutcome:
    """Run the sense-of-direction DFS traversal and report its message count."""
    orientation.require_valid(network)
    result = SynchronousSimulator(network, _DFSWithSoD(orientation), observers=observers).run()
    return _outcome(result, network)


# ----------------------------------------------------------------------
# Broadcast
# ----------------------------------------------------------------------
class _FloodingBroadcast(NodeProgram):
    """Plain flooding: forward the first copy to every neighbor but the sender."""

    def on_start(self, context: Context) -> None:
        context.state.setdefault("informed", False)
        if context.is_root:
            context.state["informed"] = True
            context.send_all("data")

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        if context.state.get("informed"):
            return
        context.state["informed"] = True
        context.send_all("data", exclude=sender)


class _SoDBroadcast(NodeProgram):
    """Flooding that skips links whose far end is already known to be informed.

    Each message carries the set of names its sender knows to have been
    informed; the receiver extends the set with itself and only forwards over
    links whose derived far-end name is not in the set.  The sense of
    direction is what makes "the far end of this link" a well-defined name.
    """

    def __init__(self, orientation: ChordalOrientation) -> None:
        self._orientation = orientation

    def on_start(self, context: Context) -> None:
        context.state.setdefault("informed", False)
        if context.is_root:
            context.state["informed"] = True
            own = self._orientation.name_of(context.node)
            known = frozenset(
                {own} | {self._orientation.neighbor_name(context.node, q) for q in context.neighbors}
            )
            for neighbor in context.neighbors:
                context.send(neighbor, known)

    def on_message(self, context: Context, sender: int, payload: Any) -> None:
        if context.state.get("informed"):
            return
        context.state["informed"] = True
        known: frozenset[int] = payload | {self._orientation.name_of(context.node)}
        targets = []
        for neighbor in context.neighbors:
            name = self._orientation.neighbor_name(context.node, neighbor)
            if name not in known:
                targets.append((neighbor, name))
        known = known | {name for _, name in targets}
        for neighbor, _ in targets:
            context.send(neighbor, known)


def broadcast_without_sod(
    network: RootedNetwork, observers: Sequence[Observer] = ()
) -> TraversalOutcome:
    """Flooding broadcast from the root; ~2m - (n-1) messages."""
    result = SynchronousSimulator(network, _FloodingBroadcast(), observers=observers).run()
    return _broadcast_outcome(result, network)


def broadcast_with_sod(
    network: RootedNetwork,
    orientation: ChordalOrientation,
    observers: Sequence[Observer] = (),
) -> TraversalOutcome:
    """Sense-of-direction broadcast from the root; close to n - 1 messages on dense networks."""
    orientation.require_valid(network)
    result = SynchronousSimulator(network, _SoDBroadcast(orientation), observers=observers).run()
    return _broadcast_outcome(result, network)


# ----------------------------------------------------------------------
# Shared post-processing
# ----------------------------------------------------------------------
def _outcome(result: SimulationResult, network: RootedNetwork) -> TraversalOutcome:
    visited = sum(
        1
        for node in network.nodes()
        if result.state_of(node).get("visited") or result.state_of(node).get("parent") is not None
        or network.is_root(node)
    )
    if visited != network.n:
        raise SimulationError(f"traversal reached only {visited} of {network.n} processors")
    return TraversalOutcome(messages=result.messages_sent, rounds=result.rounds, visited=visited)


def _broadcast_outcome(result: SimulationResult, network: RootedNetwork) -> TraversalOutcome:
    informed = sum(1 for node in network.nodes() if result.state_of(node).get("informed"))
    if informed != network.n:
        raise SimulationError(f"broadcast reached only {informed} of {network.n} processors")
    return TraversalOutcome(messages=result.messages_sent, rounds=result.rounds, visited=informed)


__all__ = [
    "TraversalOutcome",
    "dfs_traversal_without_sod",
    "dfs_traversal_with_sod",
    "broadcast_without_sod",
    "broadcast_with_sod",
]
