"""Underlying self-stabilizing protocols the orientation layers build on.

The thesis *assumes* these layers exist (citing Datta et al. for depth-first
token circulation and the classic literature for spanning-tree construction);
this package implements them so the reproduction is self-contained:

* :mod:`~repro.substrates.token_circulation` -- deterministic depth-first
  token circulation on an arbitrary rooted network, with local error detection
  and top-down cleaning so that it recovers from arbitrary states.  DFTNO is
  layered on it.
* :mod:`~repro.substrates.spanning_tree` -- a BFS spanning tree built by
  distance relaxation (Dolev-Israeli-Moran / Chen-Yu-Huang style) and a DFS
  spanning tree extracted from the token circulation.  STNO is layered on
  either.
* :mod:`~repro.substrates.dijkstra_ring` -- Dijkstra's K-state token ring, the
  canonical self-stabilizing protocol referenced in the introduction; used to
  validate the runtime and in examples.
* :mod:`~repro.substrates.pif` -- propagation of information with feedback on
  a rooted tree, another classic wave substrate mentioned in the related work.
"""

from repro.substrates.token_circulation import DepthFirstTokenCirculation, dfs_preorder
from repro.substrates.spanning_tree import (
    SpanningTreeProtocol,
    BFSSpanningTree,
    DFSSpanningTree,
    tree_parents_from_configuration,
)
from repro.substrates.dijkstra_ring import DijkstraTokenRing
from repro.substrates.pif import PIFWave

__all__ = [
    "DepthFirstTokenCirculation",
    "dfs_preorder",
    "SpanningTreeProtocol",
    "BFSSpanningTree",
    "DFSSpanningTree",
    "tree_parents_from_configuration",
    "DijkstraTokenRing",
    "PIFWave",
]
