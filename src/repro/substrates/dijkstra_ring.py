"""Dijkstra's K-state self-stabilizing token ring.

The introduction of the thesis traces self-stabilization back to Dijkstra's
1974 token-ring mutual-exclusion protocol [11]; this module implements it both
as a validation workload for the runtime (its behaviour is fully understood:
from any configuration it converges to exactly one privilege circulating
forever, provided ``K >= n``) and as a teaching example in the documentation.

The ring is taken from the ``RootedNetwork`` it runs on (which must be a
cycle); processor ``i`` reads the counter of its predecessor in the ring.  The
distinguished root plays Dijkstra's "bottom" machine.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProtocolError
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action, BatchAction
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, int_variable

VAR_COUNTER = "dk_x"


def ring_order(network: RootedNetwork) -> list[int]:
    """The processors of a cycle network in ring order, starting at the root.

    Raises
    ------
    ProtocolError
        If the network is not a simple cycle.
    """
    if any(network.degree(node) != 2 for node in network.nodes()) or network.num_edges() != network.n:
        raise ProtocolError("Dijkstra's token ring requires a cycle topology")
    order = [network.root]
    previous = None
    current = network.root
    while len(order) < network.n:
        candidates = [q for q in network.neighbors(current) if q != previous]
        previous, current = current, candidates[0]
        order.append(current)
    return order


class DijkstraTokenRing(Protocol):
    """Dijkstra's first (K-state) self-stabilizing mutual exclusion protocol.

    Parameters
    ----------
    k:
        Number of counter states.  ``None`` chooses ``n + 1`` at run time,
        which satisfies Dijkstra's ``K >= n`` requirement on any ring.
    """

    name = "dijkstra-ring"

    ACTION_ROOT = "DK-Root"
    ACTION_COPY = "DK-Copy"

    def __init__(self, k: int | None = None) -> None:
        self._k = k

    def _states(self, network: RootedNetwork) -> int:
        return self._k if self._k is not None else network.n + 1

    def _predecessor(self, network: RootedNetwork, node: int) -> int:
        order = ring_order(network)
        index = order.index(node)
        return order[index - 1]

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        k = self._states(network)
        return [
            int_variable(VAR_COUNTER, 0, k - 1, initial=0, description="Dijkstra counter in 0..K-1")
        ]

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        k = self._states(network)
        predecessor = self._predecessor(network, node)

        if network.is_root(node):

            def root_guard(view: ProcessorView) -> bool:
                return view.read(VAR_COUNTER) == view.read_neighbor(predecessor, VAR_COUNTER)

            def root_step(view: ProcessorView) -> None:
                view.write(VAR_COUNTER, (view.read(VAR_COUNTER) + 1) % k)

            return [Action(self.ACTION_ROOT, root_guard, root_step, layer=self.name)]

        def copy_guard(view: ProcessorView) -> bool:
            return view.read(VAR_COUNTER) != view.read_neighbor(predecessor, VAR_COUNTER)

        def copy_step(view: ProcessorView) -> None:
            view.write(VAR_COUNTER, view.read_neighbor(predecessor, VAR_COUNTER))

        return [Action(self.ACTION_COPY, copy_guard, copy_step, layer=self.name)]

    def batch_actions(self, network: RootedNetwork) -> Sequence[BatchAction]:
        """Whole-array twins of ``DK-Root``/``DK-Copy`` for the vectorized core.

        The ring predecessor of every processor is a fixed permutation, so a
        round is one fancy-indexed gather: ``counter[pred]``.
        """
        k = self._states(network)
        order = ring_order(network)
        root = network.root
        predecessor_of = [0] * network.n
        for index, node in enumerate(order):
            predecessor_of[node] = order[index - 1]
        cache: dict[str, object] = {}

        def _pred(view):
            pred = cache.get("pred")
            if pred is None:
                pred = view.np.asarray(predecessor_of, dtype=view.np.int64)
                cache["pred"] = pred
            return pred

        def root_guard(view):
            np = view.np
            counter = view.array(VAR_COUNTER)
            mask = np.zeros(view.network.n, dtype=bool)
            mask[root] = counter[root] == counter[predecessor_of[root]]
            return mask

        def root_step(view, mask):
            counter = view.array(VAR_COUNTER)
            return {VAR_COUNTER: (counter + 1) % k}

        def copy_guard(view):
            counter = view.array(VAR_COUNTER)
            mask = counter != counter[_pred(view)]
            mask[root] = False
            return mask

        def copy_step(view, mask):
            counter = view.array(VAR_COUNTER)
            return {VAR_COUNTER: counter[_pred(view)]}

        return [
            BatchAction(
                self.ACTION_ROOT,
                root_guard,
                root_step,
                layer=self.name,
                reads=(VAR_COUNTER,),
                writes=(VAR_COUNTER,),
            ),
            BatchAction(
                self.ACTION_COPY,
                copy_guard,
                copy_step,
                layer=self.name,
                reads=(VAR_COUNTER,),
                writes=(VAR_COUNTER,),
            ),
        ]

    def privileged(self, network: RootedNetwork, configuration: Configuration) -> list[int]:
        """Processors currently holding a privilege (an enabled guard)."""
        order = ring_order(network)
        privileged = []
        for index, node in enumerate(order):
            predecessor = order[index - 1]
            same = configuration.get(node, VAR_COUNTER) == configuration.get(predecessor, VAR_COUNTER)
            if network.is_root(node):
                if same:
                    privileged.append(node)
            elif not same:
                privileged.append(node)
        return privileged

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Mutual exclusion: exactly one privilege in the ring."""
        return len(self.privileged(network, configuration)) == 1


__all__ = ["DijkstraTokenRing", "ring_order", "VAR_COUNTER"]
