"""Propagation of Information with Feedback (PIF) on a rooted tree.

The related-work chapter lists PIF waves among the classic building blocks
that have been self-stabilized.  We include a compact implementation for two
reasons: it exercises the runtime with a protocol whose rounds-based analysis
is textbook material (a full wave takes Theta(h) rounds, the same quantity
STNO's bound is stated in), and it doubles as the broadcast-with-acknowledgement
baseline in the sense-of-direction message-complexity discussion.

The protocol runs on a *tree* network (or on the tree edges selected by a
spanning-tree substrate, supplied as an explicit parent map).  States:

* ``C`` (clean)     -- idle;
* ``B`` (broadcast) -- the wave is travelling down;
* ``F`` (feedback)  -- the subtree below has acknowledged.

Error states (a child in ``B`` whose parent is ``C``, etc.) collapse back to
``C`` by local checking, so the wave sequence is self-stabilizing.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ProtocolError
from repro.graphs.network import RootedNetwork
from repro.graphs.properties import is_tree
from repro.runtime.actions import Action
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, enum_variable

CLEAN = "C"
BROADCAST = "B"
FEEDBACK = "F"

VAR_PHASE = "pif_phase"


class PIFWave(Protocol):
    """Self-stabilizing broadcast-with-feedback waves on a rooted tree.

    Parameters
    ----------
    parents:
        Optional explicit parent map (e.g. extracted from a spanning-tree
        substrate).  When omitted, the network itself must be a tree and the
        parent of a processor is its neighbor on the unique path to the root.
    """

    name = "pif"

    ACTION_ERROR = "PIF-Error"
    ACTION_BROADCAST = "PIF-Broadcast"
    ACTION_FEEDBACK = "PIF-Feedback"
    ACTION_CLEAN = "PIF-Clean"
    ACTION_ROOT_START = "PIF-RootStart"
    ACTION_ROOT_RESET = "PIF-RootReset"

    def __init__(self, parents: Mapping[int, int | None] | None = None) -> None:
        self._explicit_parents = dict(parents) if parents is not None else None

    # ------------------------------------------------------------------
    def _parents(self, network: RootedNetwork) -> dict[int, int | None]:
        if self._explicit_parents is not None:
            return dict(self._explicit_parents)
        if not is_tree(network):
            raise ProtocolError(
                "PIFWave needs a tree network or an explicit spanning-tree parent map"
            )
        parents: dict[int, int | None] = {network.root: None}
        stack = [network.root]
        seen = {network.root}
        while stack:
            node = stack.pop()
            for neighbor in network.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = node
                    stack.append(neighbor)
        return parents

    def _children(self, network: RootedNetwork, node: int) -> tuple[int, ...]:
        parents = self._parents(network)
        return tuple(q for q in network.neighbors(node) if parents.get(q) == node)

    # ------------------------------------------------------------------
    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return [
            enum_variable(
                VAR_PHASE,
                (CLEAN, BROADCAST, FEEDBACK),
                initial=CLEAN,
                description="PIF wave phase",
            )
        ]

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        parents = self._parents(network)
        children = self._children(network, node)
        parent = parents.get(node)

        def phase(view: ProcessorView) -> str:
            return view.read(VAR_PHASE)

        def children_phases(view: ProcessorView) -> list[str]:
            return [view.read_neighbor(child, VAR_PHASE) for child in children]

        if network.is_root(node):

            def start_guard(view: ProcessorView) -> bool:
                return phase(view) == CLEAN and all(p == CLEAN for p in children_phases(view))

            def start(view: ProcessorView) -> None:
                view.write(VAR_PHASE, BROADCAST)

            def reset_guard(view: ProcessorView) -> bool:
                return phase(view) == BROADCAST and all(
                    p == FEEDBACK for p in children_phases(view)
                )

            def reset(view: ProcessorView) -> None:
                view.write(VAR_PHASE, CLEAN)

            def root_error_guard(view: ProcessorView) -> bool:
                return phase(view) == FEEDBACK

            def root_error(view: ProcessorView) -> None:
                view.write(VAR_PHASE, CLEAN)

            return [
                Action(self.ACTION_ERROR, root_error_guard, root_error, layer=self.name, priority=0),
                Action(self.ACTION_ROOT_RESET, reset_guard, reset, layer=self.name, priority=1),
                Action(self.ACTION_ROOT_START, start_guard, start, layer=self.name, priority=2),
            ]

        def parent_phase(view: ProcessorView) -> str:
            return view.read_neighbor(parent, VAR_PHASE)

        def error_guard(view: ProcessorView) -> bool:
            # A non-clean processor whose parent is clean is a leftover of a
            # corrupted wave and collapses.
            return phase(view) != CLEAN and parent_phase(view) == CLEAN

        def error(view: ProcessorView) -> None:
            view.write(VAR_PHASE, CLEAN)

        def broadcast_guard(view: ProcessorView) -> bool:
            return phase(view) == CLEAN and parent_phase(view) == BROADCAST

        def broadcast(view: ProcessorView) -> None:
            view.write(VAR_PHASE, BROADCAST)

        def feedback_guard(view: ProcessorView) -> bool:
            return (
                phase(view) == BROADCAST
                and parent_phase(view) == BROADCAST
                and all(p == FEEDBACK for p in children_phases(view))
            )

        def feedback(view: ProcessorView) -> None:
            view.write(VAR_PHASE, FEEDBACK)

        def clean_guard(view: ProcessorView) -> bool:
            return phase(view) == FEEDBACK and parent_phase(view) == CLEAN

        return [
            Action(self.ACTION_ERROR, error_guard, error, layer=self.name, priority=0),
            Action(self.ACTION_CLEAN, clean_guard, error, layer=self.name, priority=1),
            Action(self.ACTION_BROADCAST, broadcast_guard, broadcast, layer=self.name, priority=2),
            Action(self.ACTION_FEEDBACK, feedback_guard, feedback, layer=self.name, priority=3),
        ]

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Wave consistency: exactly the configurations normal waves visit.

        A configuration is legitimate iff

        * the root is not in feedback (it resets to clean instead),
        * every broadcasting non-root processor has a *broadcasting* parent
          (broadcasts enter a subtree only through its top), and
        * every child of a feedback processor is itself in feedback (a
          processor acknowledges only after its whole subtree has).

        These are invariants of normal operation -- closed under every
        action, from any daemon's scheduling -- which is what lets recovery
        measurements demand the predicate hold over a whole closure window.
        The scenario-driven corruption hunt caught the previous phrasing
        being too strict *and* too loose: it flagged the legal top-down
        cleaning phase (feedback below clean) as illegitimate, so confirmed
        re-stabilization could never be observed, while accepting a stale
        broadcast sitting below a feedback processor.
        """
        parents = self._parents(network)
        for node in network.nodes():
            own = configuration.get(node, VAR_PHASE)
            parent = parents.get(node)
            if parent is None:
                if own == FEEDBACK:
                    return False
                continue
            above = configuration.get(parent, VAR_PHASE)
            if own == BROADCAST and above != BROADCAST:
                return False
            if above == FEEDBACK and own != FEEDBACK:
                return False
        return True


__all__ = ["PIFWave", "CLEAN", "BROADCAST", "FEEDBACK", "VAR_PHASE"]
