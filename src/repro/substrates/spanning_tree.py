"""Self-stabilizing spanning-tree construction (substrate for STNO).

STNO (Chapter 4) assumes "an underlying protocol [that] maintains a spanning
tree of the rooted network", classifying processors as root, internal or leaf
nodes and exposing, at every processor, its parent ``A_p`` and its children
``D_p``.  The thesis points at the classic constructions ([1, 2, 8, 12]); this
module provides two of them:

* :class:`BFSSpanningTree` -- breadth-first tree by distance relaxation
  (Dolev-Israeli-Moran / Chen-Yu-Huang style): every non-root processor keeps
  ``dist = 1 + min(dist of neighbors)`` and points its parent at the first
  neighbor (port order) realizing the minimum; the root pins ``dist = 0``.
  Silent, stabilizes in O(diameter) rounds under any weakly fair daemon, uses
  O(log N + log Delta) bits per processor.
* :class:`DFSSpanningTree` -- the depth-first tree induced by the
  deterministic token circulation of
  :mod:`~repro.substrates.token_circulation`: every time a processor is
  forwarded the token it records the sender as its tree parent.  After the
  token layer stabilizes the recorded tree is exactly the DFS tree of the
  deterministic traversal, which is what the conclusion of the thesis uses to
  argue that STNO run over a DFS tree names processors like DFTNO does
  (experiment EXP-A2).

Both expose the common :class:`SpanningTreeProtocol` interface (the name of
the parent-pointer variable plus helpers to extract parents/children), which
is all STNO needs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ProtocolError
from repro.graphs.network import RootedNetwork
from repro.graphs.properties import bfs_distances
from repro.runtime.actions import Action, BatchAction
from repro.runtime.composition import HookedComposition, HookingLayer
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, int_variable, pointer_variable
from repro.substrates import token_circulation as tc
from repro.substrates.token_circulation import DepthFirstTokenCirculation, dfs_preorder

# Variable names.
VAR_BFS_DIST = "bt_dist"
VAR_BFS_PARENT = "bt_par"
VAR_DFS_PARENT = "dfst_par"


class SpanningTreeProtocol(Protocol):
    """Common interface of spanning-tree substrates.

    Attribute :attr:`parent_variable` names the locally shared variable that
    holds each processor's tree parent (``None`` at the root); everything STNO
    needs (children sets ``D_p``, the whole parent map, the tree height) is
    derived from it.
    """

    #: Name of the parent-pointer variable maintained by the protocol.
    parent_variable: str = VAR_BFS_PARENT

    # -- view-level helpers (used inside guards/statements) -------------
    def parent(self, view: ProcessorView) -> int | None:
        """The processor's current tree parent ``A_p`` (``None`` at the root)."""
        return view.read(self.parent_variable)

    def children(self, view: ProcessorView) -> tuple[int, ...]:
        """The processor's current tree children ``D_p`` in port order."""
        return tuple(
            q
            for q in view.neighbors
            if view.try_read_neighbor(q, self.parent_variable) == view.node
        )

    # -- configuration-level helpers (used by legitimacy checks/reports) -
    def parents(self, network: RootedNetwork, configuration: Configuration) -> dict[int, int | None]:
        """The full parent map recorded in ``configuration``."""
        return {
            node: configuration.get(node, self.parent_variable) for node in network.nodes()
        }

    def children_map(
        self, network: RootedNetwork, configuration: Configuration
    ) -> dict[int, tuple[int, ...]]:
        """Children (port order) of every processor as recorded in ``configuration``."""
        parents = self.parents(network, configuration)
        result: dict[int, tuple[int, ...]] = {}
        for node in network.nodes():
            result[node] = tuple(
                q for q in network.neighbors(node) if parents.get(q) == node
            )
        return result

    def is_spanning_tree(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Whether the recorded parent pointers form a spanning tree rooted at ``r``."""
        parents = self.parents(network, configuration)
        if parents.get(network.root) is not None:
            return False
        reached = 0
        for node in network.nodes():
            seen: set[int] = set()
            current: int | None = node
            while current is not None and current != network.root:
                if current in seen:
                    return False
                seen.add(current)
                parent = parents.get(current)
                if parent is None or parent not in network.neighbor_set(current):
                    return False
                current = parent
            reached += 1
        return reached == network.n


def tree_parents_from_configuration(
    protocol: SpanningTreeProtocol, network: RootedNetwork, configuration: Configuration
) -> dict[int, int | None]:
    """Convenience alias for ``protocol.parents(network, configuration)``."""
    return protocol.parents(network, configuration)


class BFSSpanningTree(SpanningTreeProtocol):
    """Breadth-first spanning tree by self-stabilizing distance relaxation."""

    name = "bfstree"
    parent_variable = VAR_BFS_PARENT

    ACTION_ROOT = "ST-Root"
    ACTION_RELAX = "ST-Relax"

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        max_dist = max(network.n - 1, 0)
        return [
            int_variable(
                VAR_BFS_DIST,
                0,
                max_dist,
                initial=lambda net, p: 0,
                description="believed hop distance to the root",
            ),
            pointer_variable(
                VAR_BFS_PARENT,
                allow_none=True,
                description="tree parent A_p (neighbor one hop closer to the root)",
            ),
        ]

    # ------------------------------------------------------------------
    def _desired(self, view: ProcessorView) -> tuple[int, int | None]:
        """The (distance, parent) pair the relaxation rule prescribes."""
        max_dist = view.network.n - 1
        best_dist = None
        best_parent = None
        for q in view.neighbors:
            dist_q = view.read_neighbor(q, VAR_BFS_DIST)
            if best_dist is None or dist_q < best_dist:
                best_dist = dist_q
                best_parent = q
        if best_dist is None:  # isolated root-only network
            return 0, None
        return min(best_dist + 1, max_dist), best_parent

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        if network.is_root(node):

            def root_guard(view: ProcessorView) -> bool:
                return view.read(VAR_BFS_DIST) != 0 or view.read(VAR_BFS_PARENT) is not None

            def root_set(view: ProcessorView) -> None:
                view.write(VAR_BFS_DIST, 0)
                view.write(VAR_BFS_PARENT, None)

            return [Action(self.ACTION_ROOT, root_guard, root_set, layer=self.name)]

        def relax_guard(view: ProcessorView) -> bool:
            dist, parent = self._desired(view)
            return view.read(VAR_BFS_DIST) != dist or view.read(VAR_BFS_PARENT) != parent

        def relax(view: ProcessorView) -> None:
            dist, parent = self._desired(view)
            view.write(VAR_BFS_DIST, dist)
            view.write(VAR_BFS_PARENT, parent)

        return [Action(self.ACTION_RELAX, relax_guard, relax, layer=self.name)]

    def batch_actions(self, network: RootedNetwork) -> Sequence[BatchAction]:
        """Whole-array twins of ``ST-Root``/``ST-Relax`` for the vectorized core.

        The relaxation is a segment reduction over the CSR neighbor index:
        per-node minimum neighbor distance via ``minimum.reduceat``, and the
        *first port-order* neighbor realizing it (matching :meth:`_desired`'s
        strict ``<`` scan) via a masked positional ``minimum.reduceat``.
        """
        root = network.root
        max_dist = max(network.n - 1, 0)

        def _desired_columns(view):
            np = view.np
            index = view.index
            dist = view.array(VAR_BFS_DIST)
            if index.indices.size == 0:  # single-node network: nothing to relax
                return dist.copy(), view.array(VAR_BFS_PARENT).copy()
            neighbor_dists = dist[index.indices]
            starts = index.indptr[:-1]
            best = np.minimum.reduceat(neighbor_dists, starts)
            beyond = index.indices.size  # sentinel larger than any position
            positions = np.arange(beyond, dtype=np.int64)
            candidates = np.where(
                neighbor_dists == np.repeat(best, index.degrees), positions, beyond
            )
            first = np.minimum.reduceat(candidates, starts)
            return np.minimum(best + 1, max_dist), index.indices[first]

        def root_guard(view):
            np = view.np
            dist = view.array(VAR_BFS_DIST)
            parent = view.array(VAR_BFS_PARENT)
            mask = np.zeros(view.network.n, dtype=bool)
            mask[root] = (dist[root] != 0) | (parent[root] != -1)
            return mask

        def root_step(view, mask):
            np = view.np
            n = view.network.n
            return {
                VAR_BFS_DIST: np.zeros(n, dtype=np.int64),
                VAR_BFS_PARENT: np.full(n, -1, dtype=np.int64),
            }

        def relax_guard(view):
            dist = view.array(VAR_BFS_DIST)
            parent = view.array(VAR_BFS_PARENT)
            desired_dist, desired_parent = _desired_columns(view)
            mask = (dist != desired_dist) | (parent != desired_parent)
            mask[root] = False
            return mask

        def relax_step(view, mask):
            desired_dist, desired_parent = _desired_columns(view)
            return {VAR_BFS_DIST: desired_dist, VAR_BFS_PARENT: desired_parent}

        footprint = (VAR_BFS_DIST, VAR_BFS_PARENT)
        return [
            BatchAction(
                self.ACTION_ROOT,
                root_guard,
                root_step,
                layer=self.name,
                reads=footprint,
                writes=footprint,
            ),
            BatchAction(
                self.ACTION_RELAX,
                relax_guard,
                relax_step,
                layer=self.name,
                reads=footprint,
                writes=footprint,
            ),
        ]

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """True distances everywhere and every parent one hop closer to the root."""
        truth = bfs_distances(network)
        for node in network.nodes():
            if configuration.get(node, VAR_BFS_DIST) != truth[node]:
                return False
            parent = configuration.get(node, VAR_BFS_PARENT)
            if node == network.root:
                if parent is not None:
                    return False
                continue
            if parent is None or parent not in network.neighbor_set(node):
                return False
            if truth[parent] != truth[node] - 1:
                return False
        return True


def dfs_tree_parents(network: RootedNetwork) -> dict[int, int | None]:
    """Reference DFS-tree parents of the deterministic port-order traversal."""
    parents: dict[int, int | None] = {network.root: None}
    order = dfs_preorder(network)
    position = {node: index for index, node in enumerate(order)}
    visited: set[int] = {network.root}
    stack = [network.root]
    while stack:
        node = stack[-1]
        next_child = None
        for neighbor in network.neighbors(node):
            if neighbor not in visited:
                next_child = neighbor
                break
        if next_child is None:
            stack.pop()
        else:
            visited.add(next_child)
            parents[next_child] = node
            stack.append(next_child)
    # ``position`` is only used to assert internal consistency in debug runs.
    assert len(position) == network.n
    return parents


class _DFSTreeOverlay(HookingLayer):
    """Records the token's traversal parents into a stable tree variable."""

    name = "dfstree-overlay"

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return [
            pointer_variable(
                VAR_DFS_PARENT,
                allow_none=True,
                description="DFS tree parent recorded at the last token visit",
            )
        ]

    def hooks(self, network: RootedNetwork, node: int) -> Mapping[str, object]:
        if network.is_root(node):

            def record_root(view: ProcessorView) -> None:
                view.write(VAR_DFS_PARENT, None)

            return {DepthFirstTokenCirculation.ACTION_ROOT_START: record_root}

        def record_parent(view: ProcessorView) -> None:
            view.write(VAR_DFS_PARENT, view.read(tc.VAR_PARENT))

        return {DepthFirstTokenCirculation.ACTION_FORWARD: record_parent}

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        return []

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        reference = dfs_tree_parents(network)
        return all(
            configuration.get(node, VAR_DFS_PARENT) == reference[node] for node in network.nodes()
        )


class DFSSpanningTree(SpanningTreeProtocol):
    """The DFS spanning tree maintained by the token-circulation substrate.

    Composes :class:`~repro.substrates.token_circulation.DepthFirstTokenCirculation`
    with a small overlay that freezes the traversal parents into the variable
    ``dfst_par``.  Unlike the BFS tree this layer is not silent (the token
    keeps circulating), but after stabilization the recorded parents are the
    constant DFS tree of the deterministic traversal, which is exactly the
    kind of tree the conclusion of the thesis discusses.
    """

    name = "dfstree"
    parent_variable = VAR_DFS_PARENT

    def __init__(self) -> None:
        self._token = DepthFirstTokenCirculation()
        self._overlay = _DFSTreeOverlay()
        self._composed = HookedComposition(self._token, self._overlay, name=self.name)

    @property
    def token_layer(self) -> DepthFirstTokenCirculation:
        """The underlying token-circulation protocol."""
        return self._token

    def layers(self) -> tuple[Protocol, ...]:
        return self._composed.layers()

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return self._composed.variables(network, node)

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        return self._composed.actions(network, node)

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        return self._composed.legitimate(network, configuration)

    def validate(self, network: RootedNetwork) -> None:
        self._composed.validate(network)

    def reference_parents(self, network: RootedNetwork) -> dict[int, int | None]:
        """The DFS tree the protocol converges to on ``network``."""
        return dfs_tree_parents(network)


__all__ = [
    "SpanningTreeProtocol",
    "BFSSpanningTree",
    "DFSSpanningTree",
    "dfs_tree_parents",
    "tree_parents_from_configuration",
    "VAR_BFS_DIST",
    "VAR_BFS_PARENT",
    "VAR_DFS_PARENT",
]
