"""Self-stabilizing depth-first token circulation on an arbitrary rooted network.

DFTNO (Chapter 3) assumes an underlying protocol in the style of Datta,
Johnen, Petit and Villain [10]: a single token circulates forever in a
*deterministic* depth-first order, every processor receives it exactly once
per round after stabilization, and the layer above can observe

* ``Forward(p)`` -- the step at which ``p`` receives the token for the first
  time in the current round (from its parent ``A_p``), and
* ``Backtrack(p)`` -- the steps at which the token returns to ``p`` from a
  descendant ``D_p``.

This module implements such a layer from scratch.

Design
------
Each wave (round of token circulation) is a depth-first traversal identified
by a parity bit.  Every processor stores:

* ``tc_st``   -- ``ACTIVE`` while the processor is on the DFS stack (the
  deepest active processor holds the token), ``WAIT`` otherwise;
* ``tc_wave`` -- the parity of the last wave the processor joined.  A
  processor is *unvisited* for a traversal of parity ``w`` exactly when it is
  waiting with ``tc_wave != w``; finishing a wave therefore needs no explicit
  cleaning phase -- the next wave simply uses the opposite parity;
* ``tc_par`` / ``tc_child`` -- the ancestor the token arrived from (``A_p``)
  and the descendant currently delegated to (``D_p``);
* ``tc_lvl``  -- the processor's depth on the current stack, used for local
  error detection.

The root starts a wave by flipping its parity and becoming active; an active
processor delegates the token to its first unvisited neighbor in port order
(the determinism DFTNO relies on) and returns to ``WAIT`` (backtracks) when
none remains.  When the root returns to ``WAIT`` the wave is over and the next
one may start immediately.

Self-stabilization is by local checking: an active non-root processor whose
parent pointer, parent's child pointer, wave parity or level (``lvl =
lvl_parent + 1 <= n - 1``) are inconsistent -- or whose *delegated child* is
active under a different parent (a delegation that was never accepted, the
signature of a corrupted child pointer aiming back into the stack) -- resets
to ``WAIT``.  Spurious active segments therefore erode from their top (a
parent cycle can never have consistent strictly increasing levels, and a
child-pointer cycle always contains a never-accepted delegation), and can
only recruit boundedly many processors before hitting the level bound; once they are gone, every wave
started by the root visits every processor exactly once and the composed
system satisfies the interface the thesis assumes of [10].  The construction
matches the *interface and complexity class* of [10] (O(log N) bits per
processor), not its exact rule set, which the thesis does not reproduce
either; the substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, enum_variable, int_variable, pointer_variable

# Traversal states.
WAIT = "wait"
ACTIVE = "active"

# Variable names (prefixed to keep composed namespaces disjoint).
VAR_STATE = "tc_st"
VAR_WAVE = "tc_wave"
VAR_PARENT = "tc_par"
VAR_CHILD = "tc_child"
VAR_LEVEL = "tc_lvl"


def dfs_preorder(network: RootedNetwork) -> list[int]:
    """The deterministic DFS preorder the token follows (root first, port order).

    This is the reference order used by correctness checks and by the
    DFTNO <-> STNO equivalence experiment: after stabilization, the token
    visits processors exactly in this order every round, and DFTNO names the
    ``i``-th processor of this list ``i``.
    """
    root = network.root
    visited: set[int] = {root}
    order: list[int] = [root]
    # Explicit stack mirroring the token's behaviour: the holder repeatedly
    # delegates to its first *currently* unvisited neighbor in port order and
    # backtracks when none remains.
    stack: list[int] = [root]
    while stack:
        node = stack[-1]
        next_child = None
        for neighbor in network.neighbors(node):
            if neighbor not in visited:
                next_child = neighbor
                break
        if next_child is None:
            stack.pop()
        else:
            visited.add(next_child)
            order.append(next_child)
            stack.append(next_child)
    return order


class DepthFirstTokenCirculation(Protocol):
    """Deterministic, self-stabilizing DFS token circulation (see module docstring).

    Action labels exposed for composition hooks (used by DFTNO):

    * :attr:`ACTION_ROOT_START` -- the root creates the token (the root's
      ``Forward``);
    * :attr:`ACTION_FORWARD` -- a non-root processor receives the token for
      the first time in the wave (``Forward(p)``);
    * :attr:`ACTION_DELEGATE` / :attr:`ACTION_ROOT_DELEGATE` -- the holder
      passes the token to its next unvisited neighbor; when the previous
      delegation just completed this is the moment the token *backtracked* to
      the processor (``Backtrack(p)``);
    * :attr:`ACTION_FINISH` / :attr:`ACTION_ROOT_FINISH` -- no unvisited
      neighbor remains; the processor backtracks the token to its parent (the
      root instead ends the wave).
    """

    name = "dftc"

    ACTION_ROOT_NORMALIZE = "TC-RootNormalize"
    ACTION_ROOT_START = "TC-RootStart"
    ACTION_ROOT_DELEGATE = "TC-RootDelegate"
    ACTION_ROOT_FINISH = "TC-RootFinish"
    ACTION_ROOT_ERROR = "TC-RootError"
    ACTION_ERROR = "TC-Error"
    ACTION_FORWARD = "TC-Forward"
    ACTION_DELEGATE = "TC-Delegate"
    ACTION_FINISH = "TC-Finish"

    #: Action labels that correspond to the paper's ``Forward(p)`` predicate.
    FORWARD_ACTIONS = (ACTION_ROOT_START, ACTION_FORWARD)
    #: Action labels after which the token has just returned from a descendant.
    BACKTRACK_ACTIONS = (
        ACTION_ROOT_DELEGATE,
        ACTION_ROOT_FINISH,
        ACTION_DELEGATE,
        ACTION_FINISH,
    )

    # ------------------------------------------------------------------
    # Variable declarations
    # ------------------------------------------------------------------
    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        max_level = max(network.n - 1, 0)
        return [
            enum_variable(
                VAR_STATE,
                (WAIT, ACTIVE),
                initial=WAIT,
                description="ACTIVE while on the DFS stack of the current wave",
            ),
            enum_variable(
                VAR_WAVE,
                (0, 1),
                initial=0,
                description="parity of the last wave this processor joined",
            ),
            pointer_variable(
                VAR_PARENT,
                allow_none=True,
                description="ancestor A_p: the neighbor the token arrived from",
            ),
            pointer_variable(
                VAR_CHILD,
                allow_none=True,
                description="descendant D_p: the neighbor currently delegated to",
            ),
            int_variable(
                VAR_LEVEL,
                0,
                max_level,
                initial=0,
                description="depth on the current DFS stack (error detection)",
            ),
        ]

    # ------------------------------------------------------------------
    # Local predicates
    # ------------------------------------------------------------------
    @staticmethod
    def _unvisited_neighbors(view: ProcessorView) -> list[int]:
        """Neighbors not yet visited by the wave this processor belongs to."""
        wave = view.read(VAR_WAVE)
        unvisited = []
        for q in view.neighbors:
            if view.read_neighbor(q, VAR_STATE) == WAIT and view.read_neighbor(q, VAR_WAVE) != wave:
                unvisited.append(q)
        return unvisited

    @staticmethod
    def _child_settled(view: ProcessorView) -> bool:
        """The current delegation, if any, has completed (child visited and waiting)."""
        child = view.read(VAR_CHILD)
        if child is None:
            return True
        if child not in view.network.neighbor_set(view.node):
            return True
        return (
            view.read_neighbor(child, VAR_STATE) == WAIT
            and view.read_neighbor(child, VAR_WAVE) == view.read(VAR_WAVE)
        )

    def _valid_active(self, view: ProcessorView) -> bool:
        """Consistency of an ACTIVE non-root processor with its parent and child."""
        parent = view.read(VAR_PARENT)
        if parent is None or parent not in view.network.neighbor_set(view.node):
            return False
        level = view.read(VAR_LEVEL)
        if level > view.network.n - 1:
            return False
        if view.read_neighbor(parent, VAR_STATE) != ACTIVE:
            return False
        if view.read_neighbor(parent, VAR_CHILD) != view.node:
            return False
        if view.read_neighbor(parent, VAR_WAVE) != view.read(VAR_WAVE):
            return False
        if level != view.read_neighbor(parent, VAR_LEVEL) + 1:
            return False
        return self._valid_delegation(view)

    @staticmethod
    def _valid_delegation(view: ProcessorView) -> bool:
        """The current delegation, if accepted, was accepted *from us*.

        A processor only ever delegates to an unvisited (waiting) neighbor,
        and a neighbor that accepts becomes active with its parent pointer set
        to the delegator.  A child that is active under a *different* parent
        can therefore never settle for us -- it is the local signature of a
        corrupted child pointer aiming back into the active stack (e.g. a
        child/parent 2-cycle), which would otherwise deadlock the wave.
        """
        child = view.read(VAR_CHILD)
        if child is None or child not in view.network.neighbor_set(view.node):
            return True
        if view.read_neighbor(child, VAR_STATE) != ACTIVE:
            return True
        return view.read_neighbor(child, VAR_PARENT) == view.node

    @staticmethod
    def holds_token(view: ProcessorView) -> bool:
        """Whether the processor currently holds the circulating token.

        A processor holds the token when it is on the DFS stack and is not
        waiting on an active descendant; DFTNO uses the negation of this as
        part of its edge-relabeling guard (the paper's ``~Forward /\\
        ~Backtrack``).
        """
        if view.read(VAR_STATE) != ACTIVE:
            return False
        child = view.read(VAR_CHILD)
        if child is None or child not in view.network.neighbor_set(view.node):
            return True
        return view.read_neighbor(child, VAR_STATE) != ACTIVE

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _delegate(self, view: ProcessorView) -> None:
        unvisited = self._unvisited_neighbors(view)
        if unvisited:
            view.write(VAR_CHILD, unvisited[0])

    @staticmethod
    def _retire(view: ProcessorView) -> None:
        view.write(VAR_STATE, WAIT)
        view.write(VAR_CHILD, None)

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------
    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        if network.is_root(node):
            return self._root_actions()
        return self._non_root_actions()

    def _root_actions(self) -> list[Action]:
        def normalize_guard(view: ProcessorView) -> bool:
            return view.read(VAR_PARENT) is not None or view.read(VAR_LEVEL) != 0

        def normalize(view: ProcessorView) -> None:
            view.write(VAR_PARENT, None)
            view.write(VAR_LEVEL, 0)

        def start_guard(view: ProcessorView) -> bool:
            return view.read(VAR_STATE) == WAIT

        def start(view: ProcessorView) -> None:
            view.write(VAR_STATE, ACTIVE)
            view.write(VAR_WAVE, 1 - view.read(VAR_WAVE))
            view.write(VAR_CHILD, None)
            view.write(VAR_PARENT, None)
            view.write(VAR_LEVEL, 0)

        def delegation_error_guard(view: ProcessorView) -> bool:
            return view.read(VAR_STATE) == ACTIVE and not self._valid_delegation(view)

        def delegation_error(view: ProcessorView) -> None:
            # The root never abandons its wave; it only forgets the bogus
            # delegation and re-delegates (or finishes) normally.
            view.write(VAR_CHILD, None)

        def delegate_guard(view: ProcessorView) -> bool:
            return (
                view.read(VAR_STATE) == ACTIVE
                and self._child_settled(view)
                and bool(self._unvisited_neighbors(view))
            )

        def finish_guard(view: ProcessorView) -> bool:
            return (
                view.read(VAR_STATE) == ACTIVE
                and self._child_settled(view)
                and not self._unvisited_neighbors(view)
            )

        return [
            Action(self.ACTION_ROOT_NORMALIZE, normalize_guard, normalize, layer=self.name, priority=0),
            Action(self.ACTION_ROOT_ERROR, delegation_error_guard, delegation_error, layer=self.name, priority=1),
            Action(self.ACTION_ROOT_DELEGATE, delegate_guard, self._delegate, layer=self.name, priority=2),
            Action(self.ACTION_ROOT_FINISH, finish_guard, self._retire, layer=self.name, priority=3),
            Action(self.ACTION_ROOT_START, start_guard, start, layer=self.name, priority=4),
        ]

    def _non_root_actions(self) -> list[Action]:
        def error_guard(view: ProcessorView) -> bool:
            return view.read(VAR_STATE) == ACTIVE and not self._valid_active(view)

        def error_reset(view: ProcessorView) -> None:
            self._retire(view)

        def forward_guard(view: ProcessorView) -> bool:
            if view.read(VAR_STATE) != WAIT:
                return False
            return self._forwarding_parent(view) is not None

        def forward(view: ProcessorView) -> None:
            parent = self._forwarding_parent(view)
            if parent is None:  # pragma: no cover - guarded by forward_guard
                return
            view.write(VAR_STATE, ACTIVE)
            view.write(VAR_WAVE, view.read_neighbor(parent, VAR_WAVE))
            view.write(VAR_PARENT, parent)
            view.write(VAR_CHILD, None)
            view.write(VAR_LEVEL, view.read_neighbor(parent, VAR_LEVEL) + 1)

        def delegate_guard(view: ProcessorView) -> bool:
            return (
                view.read(VAR_STATE) == ACTIVE
                and self._valid_active(view)
                and self._child_settled(view)
                and bool(self._unvisited_neighbors(view))
            )

        def finish_guard(view: ProcessorView) -> bool:
            return (
                view.read(VAR_STATE) == ACTIVE
                and self._valid_active(view)
                and self._child_settled(view)
                and not self._unvisited_neighbors(view)
            )

        return [
            Action(self.ACTION_ERROR, error_guard, error_reset, layer=self.name, priority=0),
            Action(self.ACTION_FORWARD, forward_guard, forward, layer=self.name, priority=1),
            Action(self.ACTION_DELEGATE, delegate_guard, self._delegate, layer=self.name, priority=2),
            Action(self.ACTION_FINISH, finish_guard, self._retire, layer=self.name, priority=3),
        ]

    def _forwarding_parent(self, view: ProcessorView) -> int | None:
        """The first neighbor (port order) currently delegating the token to us."""
        max_level = view.network.n - 1
        own_wave = view.read(VAR_WAVE)
        for q in view.neighbors:
            if (
                view.read_neighbor(q, VAR_STATE) == ACTIVE
                and view.read_neighbor(q, VAR_CHILD) == view.node
                and view.read_neighbor(q, VAR_WAVE) != own_wave
                and view.read_neighbor(q, VAR_LEVEL) + 1 <= max_level
            ):
                return q
        return None

    # ------------------------------------------------------------------
    # Legitimacy
    # ------------------------------------------------------------------
    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        """Structural legitimacy of the token layer (``L_TC`` in the thesis).

        The root carries no parent pointer and level 0, every active non-root
        processor is consistently stacked under an active parent of the same
        wave (hence the active processors form a single DFS stack starting at
        the root), every accepted delegation was accepted from its delegator
        (no child pointer aims back into the stack), and there is at most one
        token holder.
        """
        root = network.root
        if configuration.get(root, VAR_PARENT) is not None:
            return False
        if configuration.get(root, VAR_LEVEL) != 0:
            return False

        any_active_non_root = False
        for node in network.nodes():
            if configuration.get(node, VAR_LEVEL) > network.n - 1:
                return False
            if configuration.get(node, VAR_STATE) == ACTIVE:
                child = configuration.get(node, VAR_CHILD)
                if (
                    child is not None
                    and child in network.neighbor_set(node)
                    and configuration.get(child, VAR_STATE) == ACTIVE
                    and configuration.get(child, VAR_PARENT) != node
                ):
                    return False
            if node == root:
                continue
            if configuration.get(node, VAR_STATE) != ACTIVE:
                continue
            any_active_non_root = True
            parent = configuration.get(node, VAR_PARENT)
            if parent is None or parent not in network.neighbor_set(node):
                return False
            if configuration.get(parent, VAR_STATE) != ACTIVE:
                return False
            if configuration.get(parent, VAR_CHILD) != node:
                return False
            if configuration.get(parent, VAR_WAVE) != configuration.get(node, VAR_WAVE):
                return False
            if configuration.get(node, VAR_LEVEL) != configuration.get(parent, VAR_LEVEL) + 1:
                return False

        if any_active_non_root and configuration.get(root, VAR_STATE) != ACTIVE:
            return False
        return len(self.token_holders(network, configuration)) <= 1

    # ------------------------------------------------------------------
    # Introspection helpers used by experiments and by DFTNO
    # ------------------------------------------------------------------
    @staticmethod
    def token_holders(network: RootedNetwork, configuration: Configuration) -> list[int]:
        """Processors currently holding the token (exactly one once legitimate and active)."""
        holders = []
        for node in network.nodes():
            if configuration.get(node, VAR_STATE) != ACTIVE:
                continue
            child = configuration.get(node, VAR_CHILD)
            if child is None or child not in network.neighbor_set(node):
                holders.append(node)
            elif configuration.get(child, VAR_STATE) != ACTIVE:
                holders.append(node)
        return holders

    @staticmethod
    def traversal_parents(
        network: RootedNetwork, configuration: Configuration
    ) -> dict[int, int | None]:
        """Current parent pointers ``A_p`` (the DFS tree being traced out)."""
        return {node: configuration.get(node, VAR_PARENT) for node in network.nodes()}


__all__ = [
    "DepthFirstTokenCirculation",
    "dfs_preorder",
    "WAIT",
    "ACTIVE",
    "VAR_STATE",
    "VAR_WAVE",
    "VAR_PARENT",
    "VAR_CHILD",
    "VAR_LEVEL",
]
